"""Overload and chaos testbeds for the robustness features.

* :func:`run_overload_experiment` — drives one broker past saturation
  with open-loop Poisson traffic and compares the bounded-queue
  backpressure configuration against the unprotected baseline (the
  paper's binary forward-or-drop testbed: FCFS, unbounded backlog).
  The claim under test: with QoS-aware shedding, premium goodput at
  2× saturation stays within a few percent of the uncontended run,
  while the unprotected broker's premium latency collapses.
* :func:`run_chaos_experiment` — a seeded chaos soak: two replica
  brokers under a :class:`~repro.core.lifecycle.BrokerSupervisor`
  while a :class:`~repro.net.faults.FaultInjector` replays broker
  crash/restart cycles, link flaps, and open-loop load spikes on top
  of a steady closed-loop workload. The run ends with a set of
  machine-checked :class:`InvariantCheck` verdicts (no request lost
  without a reply, post-crash accounting consistent, queue bound
  respected, availability floor met).
* :func:`run_shard_chaos_experiment` — the shard-tier soak: one
  service fronted by N shards × R replica brokers
  (:mod:`repro.core.sharding`) while a leader-killer process crashes
  the *current leader* of a rotating shard every ``leader_kill_every``
  seconds. Clients address the service through the
  :class:`~repro.core.sharding.ShardDirectory` and must ride each
  bully election; the verdicts add leadership convergence to the
  no-lost-request / post-crash / availability checks.
* :func:`run_autoscale_experiment` — the elastic-pool headline: a
  10× diurnal swing plus a throttled tenant's flash crowds against a
  :class:`~repro.core.autoscale.BrokerPool` driven by an
  :class:`~repro.core.autoscale.Autoscaler` (telemetry-fed,
  SLO-vetoed). Verdicts: premium p99 held, pool efficiency vs static
  provisioning, throttle containment, and no lost request across
  every graceful drain.
* :func:`run_scale_chaos_experiment` — the scale-chaos soak: a square
  wave forces the pool through dozens of scale-in drains while a
  sniper process crashes brokers *mid-drain*; the drain protocol must
  resume after each resurrection and still never lose a request.

All are plain functions returning result dataclasses; the ``repro
chaos`` / ``repro autoscale`` CLIs and the matching benchmarks render
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.adapters import HttpAdapter
from ..core.autoscale import (
    Autoscaler,
    AutoscalerPolicy,
    BrokerPool,
    TenantThrottle,
)
from ..core.broker import ServiceBroker
from ..core.cache import ResultCache
from ..core.client import BrokerClient
from ..core.faulttolerance import RetryPolicy
from ..core.lifecycle import BrokerSupervisor, RecoveryJournal
from ..core.peering import ShardPeerGroup
from ..core.pipeline import (
    BackpressureStage,
    ThrottleStage,
    distributed_stage_plan,
    fault_tolerant_stage_plan,
    overload_protected_stage_plan,
    sharded_stage_plan,
)
from ..core.protocol import ReplyStatus
from ..core.qos import QoSPolicy
from ..core.sharding import ShardDirectory, ShardGroup
from ..errors import BrokerError, BrokerTimeout
from ..http.messages import HttpResponse
from ..http.server import BackendWebServer
from ..metrics import MetricsRegistry, SummaryStats
from ..net.faults import BrokerCrash, FaultInjector, FaultPlan, LinkDown
from ..net.link import Link
from ..net.network import Network
from ..sim.core import Simulation
from .clients import (
    ClosedLoopClient,
    DiurnalLoadGenerator,
    FlashCrowdGenerator,
    OpenLoopGenerator,
)

__all__ = [
    "OverloadResult",
    "run_overload_experiment",
    "InvariantCheck",
    "ChaosResult",
    "run_chaos_experiment",
    "ShardChaosResult",
    "run_shard_chaos_experiment",
    "AutoscaleResult",
    "run_autoscale_experiment",
    "ScaleChaosResult",
    "run_scale_chaos_experiment",
]


# ---------------------------------------------------------------------------
# Overload / backpressure ablation
# ---------------------------------------------------------------------------


@dataclass
class OverloadResult:
    """One overload run: per-class goodput and latency under saturation."""

    saturation: float
    bounded: bool
    capacity: Optional[int]
    shed_policy: str
    duration: float
    #: Offered Poisson rate per QoS class (requests/second).
    offered: Dict[int, float] = field(default_factory=dict)
    issued: Dict[int, int] = field(default_factory=dict)
    ok: Dict[int, int] = field(default_factory=dict)
    degraded: Dict[int, int] = field(default_factory=dict)
    dropped: Dict[int, int] = field(default_factory=dict)
    #: OK replies delivered inside the issue window, per second.
    goodput: Dict[int, float] = field(default_factory=dict)
    #: Latency of OK replies only (sheds answer instantly and would
    #: otherwise flatter the protected configuration).
    latency: Dict[int, SummaryStats] = field(default_factory=dict)
    shed: int = 0
    peak_depth: int = 0
    backpressure_engaged: int = 0

    @property
    def premium_goodput(self) -> float:
        """Class-1 goodput (the paper's premium customers)."""
        return self.goodput.get(1, 0.0)

    def premium_p99(self) -> float:
        """99th-percentile latency of class-1 OK replies."""
        stats = self.latency.get(1)
        return stats.percentile(99.0) if stats is not None else float("nan")


def run_overload_experiment(
    saturation: float = 2.5,
    bounded: bool = True,
    capacity: int = 40,
    shed_policy: str = "drop-lowest",
    premium_rate: float = 8.0,
    duration: float = 30.0,
    drain: float = 90.0,
    service_time: float = 0.1,
    backend_capacity: int = 4,
    seed: int = 0,
) -> OverloadResult:
    """Offer ``saturation × μ`` Poisson traffic to one broker.

    The backend serves ``μ = backend_capacity / service_time`` requests
    per second. Class 1 (premium) is offered at the fixed
    *premium_rate* regardless of *saturation*; classes 2 and 3 split
    the remainder — so across runs the premium demand is identical and
    only the background pressure changes.

    With ``bounded=True`` the broker runs
    :func:`~repro.core.pipeline.overload_protected_stage_plan`:
    priority queueing plus a *capacity*-bounded queue shedding per
    *shed_policy*. With ``bounded=False`` it runs the unprotected
    baseline — the paper's binary forward-or-drop testbed (§III): FCFS
    service order and an unbounded backlog, so every admitted request
    waits behind the entire queue.

    Requests are uncacheable and carry no timeout: every request gets
    exactly one terminal reply (OK, or an immediate shed/busy DROPPED),
    which keeps the goodput accounting exact. *drain* extends the run
    after arrivals stop so the unbounded backlog can empty.
    """
    if saturation <= 0:
        raise ValueError(f"saturation must be > 0: {saturation!r}")
    if premium_rate <= 0:
        raise ValueError(f"premium_rate must be > 0: {premium_rate!r}")
    sim = Simulation(seed=seed)
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")
    backend_node = net.node("backend1")
    server = BackendWebServer(
        sim, backend_node, max_clients=backend_capacity, name="backend1"
    )

    def item_cgi(server, request):
        yield server.sim.timeout(service_time * server.service_time_scale)
        return HttpResponse.text(f"item={request.param('id', '?')}")

    server.add_cgi("/item", item_cgi)

    qos = QoSPolicy(levels=3, threshold=10_000)  # isolate the queue bound
    if bounded:
        stages = overload_protected_stage_plan(capacity, shed_policy=shed_policy)
        priority_queueing = True
    else:
        stages = distributed_stage_plan()
        priority_queueing = False
    broker = ServiceBroker(
        sim,
        web_node,
        service="items",
        adapters=[HttpAdapter(sim, web_node, server.address, name=server.name)],
        qos=qos,
        pool_size=backend_capacity,
        priority_queueing=priority_queueing,
        name="overload-broker",
        stages=stages,
    )
    broker_client = BrokerClient(sim, web_node, {"items": broker.address})

    mu = backend_capacity / service_time
    total = saturation * mu
    background = max(total - premium_rate, 0.0) / 2.0
    offered = {1: premium_rate, 2: background, 3: background}

    samples: Dict[int, List[Tuple[float, str, float, float]]] = {
        level: [] for level in offered
    }

    def make_factory(level: int):
        def one_request(_generator, index):
            issued = sim.now
            reply = yield from broker_client.call(
                "items",
                "get",
                ("/item", {"id": index}),
                qos_level=level,
                cacheable=False,
            )
            samples[level].append(
                (issued, reply.status.value, sim.now, sim.now - issued)
            )

        return one_request

    for level, rate in offered.items():
        if rate <= 0:
            continue
        OpenLoopGenerator(
            sim,
            name=f"overload.qos{level}",
            request_factory=make_factory(level),
            rate=rate,
            rng_stream=f"overload.arrivals.qos{level}",
        ).start(until=duration)

    sim.run(until=duration)
    sim.run(until=duration + drain)  # let the backlog empty

    result = OverloadResult(
        saturation=saturation,
        bounded=bounded,
        capacity=capacity if bounded else None,
        shed_policy=shed_policy if bounded else "none",
        duration=duration,
    )
    result.offered = offered
    for level, entries in samples.items():
        stats = SummaryStats()
        in_window = 0
        counts = {"ok": 0, "degraded": 0, "dropped": 0}
        for _issued, status, completed, elapsed in entries:
            if status == ReplyStatus.OK.value:
                counts["ok"] += 1
                stats.add(elapsed)
                if completed <= duration:
                    in_window += 1
            elif status == ReplyStatus.DEGRADED.value:
                counts["degraded"] += 1
            else:
                counts["dropped"] += 1
        result.issued[level] = len(entries)
        result.ok[level] = counts["ok"]
        result.degraded[level] = counts["degraded"]
        result.dropped[level] = counts["dropped"]
        result.goodput[level] = in_window / duration
        result.latency[level] = stats
    result.shed = broker.queue.shed_count
    result.peak_depth = broker.queue.peak_depth
    result.backpressure_engaged = int(
        broker.metrics.counter("broker.backpressure.engaged")
    )
    return result


# ---------------------------------------------------------------------------
# Chaos soak
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InvariantCheck:
    """One machine-checked invariant verdict from a chaos run."""

    name: str
    passed: bool
    detail: str


@dataclass
class ChaosResult:
    """Everything a chaos soak observed, plus its invariant verdicts."""

    duration: float
    seed: int
    capacity: int
    shed_policy: str
    mtbf: float
    mttr: float
    # Steady (closed-loop) workload outcome counts.
    requests: int = 0
    ok: int = 0
    degraded: int = 0
    dropped: int = 0
    timeouts: int = 0
    errors: int = 0
    #: Requests answered by the replica broker after the first choice
    #: failed (timeout or DROPPED).
    failovers: int = 0
    latency: SummaryStats = field(default_factory=SummaryStats)
    # Spike (open-loop burst) outcome counts.
    spike_requests: int = 0
    spike_ok: int = 0
    spike_degraded: int = 0
    spike_dropped: int = 0
    spike_timeouts: int = 0
    # Lifecycle accounting.
    crashes: int = 0
    restarts: int = 0
    detected: int = 0
    recoveries: int = 0
    failed_fast: int = 0
    replayed: int = 0
    restart_shed: int = 0
    shed_total: int = 0
    link_faults: int = 0
    #: Per-broker deepest backlog ever observed.
    peak_depths: Dict[str, int] = field(default_factory=dict)
    #: Per-broker end-of-run residue (queue depth, outstanding, journal).
    residue: Dict[str, Dict[str, int]] = field(default_factory=dict)
    invariants: List[InvariantCheck] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Answered fraction of the steady workload (OK + DEGRADED)."""
        if not self.requests:
            return 1.0
        return (self.ok + self.degraded) / self.requests

    @property
    def all_invariants_hold(self) -> bool:
        """True when every invariant check passed."""
        return all(check.passed for check in self.invariants)

    def to_summary(self) -> Dict[str, object]:
        """A JSON-safe summary (the CI artifact / ``--summary-out``)."""
        return {
            "duration": self.duration,
            "seed": self.seed,
            "capacity": self.capacity,
            "shed_policy": self.shed_policy,
            "mtbf": self.mtbf,
            "mttr": self.mttr,
            "requests": self.requests,
            "ok": self.ok,
            "degraded": self.degraded,
            "dropped": self.dropped,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "failovers": self.failovers,
            "availability": round(self.availability, 6),
            "latency_p50": round(self.latency.percentile(50.0), 6)
            if self.latency.count
            else None,
            "latency_p99": round(self.latency.percentile(99.0), 6)
            if self.latency.count
            else None,
            "spike_requests": self.spike_requests,
            "spike_ok": self.spike_ok,
            "spike_degraded": self.spike_degraded,
            "spike_dropped": self.spike_dropped,
            "spike_timeouts": self.spike_timeouts,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "detected": self.detected,
            "recoveries": self.recoveries,
            "failed_fast": self.failed_fast,
            "replayed": self.replayed,
            "restart_shed": self.restart_shed,
            "shed_total": self.shed_total,
            "link_faults": self.link_faults,
            "peak_depths": dict(self.peak_depths),
            "residue": {name: dict(info) for name, info in self.residue.items()},
            "invariants": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.invariants
            ],
        }


def _hardened_stages(capacity: int, shed_policy: str) -> list:
    """The fault-tolerant plan with backpressure before the boundary."""
    plan = fault_tolerant_stage_plan(
        retry=RetryPolicy(max_attempts=3, base_delay=0.05, jitter=0.5),
        failure_threshold=3,
        reset_timeout=0.5,
    )
    boundary = next(index for index, stage in enumerate(plan) if stage.boundary)
    plan.insert(boundary, BackpressureStage(capacity, shed_policy=shed_policy))
    return plan


def run_chaos_experiment(
    duration: float = 300.0,
    mtbf: float = 25.0,
    mttr: float = 2.0,
    capacity: int = 48,
    shed_policy: str = "drop-lowest",
    recovery_policy: str = "replay",
    n_clients: int = 10,
    think_time: float = 0.05,
    attempt_timeout: float = 1.0,
    spike_every: float = 90.0,
    spike_duration: float = 8.0,
    spike_rate: float = 100.0,
    blip_mttr: float = 0.08,
    key_pool: int = 512,
    cache_ttl: float = 0.5,
    service_time: float = 0.1,
    backend_capacity: int = 5,
    availability_floor: float = 0.99,
    fast_threshold: float = 0.5,
    seed: int = 0,
    telemetry=None,
) -> ChaosResult:
    """A seeded chaos soak over two replica brokers.

    Topology: two brokers (``chaos-a``/``chaos-b``, services
    ``items-a``/``items-b``) each front the same two backend web
    servers, run the fault-tolerant stage plan hardened with a
    *capacity*-bounded :class:`~repro.core.pipeline.BackpressureStage`,
    and are watched by a :class:`~repro.core.lifecycle.BrokerSupervisor`
    (heartbeats + per-broker :class:`~repro.core.lifecycle.RecoveryJournal`
    with *recovery_policy*).

    Chaos, all on dedicated RNG substreams so runs are reproducible:

    * broker crash/restart cycles — ``Exp(1/mtbf)`` time-to-failure,
      fixed *mttr*, independent schedules per broker (broker B fails
      at ~1.8× A's MTBF so double-failures stay rare but possible);
    * crash *blips* — two extra crashes of broker B healing in
      *blip_mttr* seconds, faster than heartbeat detection, so the
      journal's **replay** recovery path runs (slow crashes are always
      consumed by the supervisor's fail-fast first);
    * link flaps — short :class:`~repro.net.faults.LinkDown` windows
      between the web host and the second backend;
    * load spikes — open-loop class-3 bursts of *spike_rate*/s for
      *spike_duration* seconds every *spike_every* seconds.

    The steady workload is *n_clients* closed-loop clients cycling
    through the three QoS classes over a *key_pool* of cacheable items;
    each request tries one broker (alternating per client) and fails
    over to the replica on timeout or a DROPPED reply.

    After a generous drain the run is scored against four invariants
    (see :class:`InvariantCheck` entries on the result): every request
    answered and all journals/queues/ledgers empty; post-crash
    accounting consistent (restarts match crashes, recovery paths sum);
    queue bound never exceeded; steady-workload availability at or
    above *availability_floor*.
    """
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1: {n_clients!r}")
    sim = Simulation(seed=seed)
    metrics = MetricsRegistry()
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")

    backends: List[BackendWebServer] = []
    for index in range(1, 3):
        node = net.node(f"backend{index}")
        server = BackendWebServer(
            sim, node, max_clients=backend_capacity, name=f"backend{index}"
        )

        def item_cgi(server, request):
            yield server.sim.timeout(service_time * server.service_time_scale)
            return HttpResponse.text(f"item={request.param('id', '?')}")

        server.add_cgi("/item", item_cgi)
        backends.append(server)

    qos = QoSPolicy(
        levels=3,
        threshold=10_000,  # backpressure, not admission, does the shedding
        deadlines={1: 1.0, 2: 1.5, 3: 2.0},
    )
    brokers: Dict[str, ServiceBroker] = {}
    services: List[str] = []
    for index, suffix in enumerate("ab"):
        service = f"items-{suffix}"
        brokers[f"chaos-{suffix}"] = ServiceBroker(
            sim,
            web_node,
            service=service,
            adapters=[
                HttpAdapter(sim, web_node, server.address, name=server.name)
                for server in backends
            ],
            port=7000 + index,
            qos=qos,
            cache=ResultCache(
                capacity=4 * key_pool, ttl=cache_ttl, clock=lambda: sim.now
            ),
            pool_size=backend_capacity,
            dispatchers=backend_capacity * len(backends),
            metrics=metrics,
            name=f"chaos-{suffix}",
            stages=_hardened_stages(capacity, shed_policy),
        )
        services.append(service)

    supervisor = BrokerSupervisor(sim, web_node, metrics=metrics)
    watches = {
        name: supervisor.watch(
            broker,
            journal=RecoveryJournal(sim, policy=recovery_policy, metrics=metrics),
        )
        for name, broker in brokers.items()
    }

    broker_client = BrokerClient(
        sim,
        web_node,
        {broker.service: broker.address for broker in brokers.values()},
    )

    # Chaos schedule: two independent crash cycles plus link flaps.
    plan = FaultPlan.broker_crash_cycle(
        "chaos-a", mtbf=mtbf, mttr=mttr, until=duration,
        rng=sim.rng("chaos.crash.a"),
    )
    for fault in FaultPlan.broker_crash_cycle(
        "chaos-b", mtbf=mtbf * 1.8, mttr=mttr, until=duration,
        rng=sim.rng("chaos.crash.b"),
    ):
        plan.add(fault)
    if blip_mttr > 0:
        # Instant-restart crashes: the broker is back before the
        # supervisor's miss timeout, so restart() itself replays the
        # journaled work instead of the supervisor failing it fast.
        for fraction in (0.35, 0.75):
            plan.add(
                BrokerCrash(
                    target="chaos-b",
                    at=duration * fraction,
                    duration=blip_mttr,
                )
            )
    link_faults = 0
    flap_at = duration * 0.2
    while flap_at < duration:
        plan.add(LinkDown(a="web", b="backend2", at=flap_at, duration=0.5))
        link_faults += 1
        flap_at += duration * 0.3
    injector = FaultInjector(
        sim, plan, network=net, targets=dict(brokers), metrics=metrics
    )
    injector.start()

    # Always-on workload outcome counters. Pure counting with no
    # scheduling or RNG impact, so seeded outputs are unchanged; the
    # telemetry scraper reads these for the chaos SLOs ("workload.done"
    # counts every terminal outcome including spike traffic, which the
    # availability-floor invariant deliberately excludes). The sample
    # lists below stay the source of truth for the result dataclass.
    _ok = ReplyStatus.OK.value
    _degraded = ReplyStatus.DEGRADED.value
    _dropped = ReplyStatus.DROPPED.value

    def count_outcome(status: str, elapsed: Optional[float]) -> None:
        metrics.increment("workload.done")
        if status == _ok:
            metrics.increment("workload.ok")
        elif status == _degraded:
            metrics.increment("workload.degraded")
        elif status == _dropped:
            metrics.increment("workload.dropped")
        elif status == "timeout":
            metrics.increment("workload.timeout")
        else:
            metrics.increment("workload.error")
        if status in (_ok, _degraded):
            metrics.increment("workload.answered")
            if elapsed is not None and elapsed <= fast_threshold:
                metrics.increment("workload.fast")

    # Steady closed-loop workload with one-hop failover.
    samples: List[Tuple[float, str, float, bool]] = []
    key_rng = sim.rng("chaos.keys")
    stagger_rng = sim.rng("chaos.stagger")
    for index in range(n_clients):
        net.node(f"client{index}")  # a distinct host per client
        level = (index % qos.levels) + 1
        order = (
            (services[0], services[1])
            if index % 2 == 0
            else (services[1], services[0])
        )

        def one_request(_client, _iteration, _level=level, _order=order):
            issued = sim.now
            item = key_rng.randrange(key_pool)
            status = "error"
            failed_over = False
            for attempt, service in enumerate(_order):
                try:
                    reply = yield from broker_client.call(
                        service,
                        "get",
                        ("/item", {"id": item}),
                        qos_level=_level,
                        timeout=attempt_timeout,
                    )
                except BrokerTimeout:
                    status = "timeout"
                    continue
                status = reply.status.value
                if reply.status in (ReplyStatus.OK, ReplyStatus.DEGRADED):
                    failed_over = attempt > 0
                    break
            elapsed = sim.now - issued
            samples.append((issued, status, elapsed, failed_over))
            count_outcome(status, elapsed)

        ClosedLoopClient(
            sim,
            name=f"chaos{index}",
            request_factory=one_request,
            think_time=think_time,
            start_delay=stagger_rng.uniform(0.0, 1.0),
        ).start(until=duration)

    # Load spikes: open-loop class-3 bursts, alternating target broker.
    spike_samples: List[str] = []
    spike_rng = sim.rng("chaos.spike.keys")

    def spike_request(_generator, index):
        issued = sim.now
        service = services[index % len(services)]
        item = spike_rng.randrange(key_pool)
        try:
            reply = yield from broker_client.call(
                service,
                "get",
                ("/item", {"id": item}),
                qos_level=qos.levels,
                timeout=attempt_timeout,
            )
        except BrokerTimeout:
            spike_samples.append("timeout")
            count_outcome("timeout", None)
            return
        spike_samples.append(reply.status.value)
        count_outcome(reply.status.value, sim.now - issued)

    def spike_driver():
        spike_at = spike_every / 2.0
        count = 0
        while spike_at < duration:
            yield spike_at - sim.now
            count += 1
            end = min(spike_at + spike_duration, duration)
            sim.trace("chaos", "spike", at=sim.now, until=end, rate=spike_rate)
            OpenLoopGenerator(
                sim,
                name=f"chaos.spike{count}",
                request_factory=spike_request,
                rate=spike_rate,
                rng_stream=f"chaos.spike{count}",
            ).start(until=end)
            spike_at += spike_every

    if spike_rate > 0 and spike_every > 0:
        sim.process(spike_driver(), name="chaos:spikes")

    if telemetry is not None:
        # Purely observational (no RNG, no messages): the soak below is
        # identical with or without the scraper.
        telemetry.attach(sim)
        telemetry.watch_registry(metrics, prefix="workload.")
        telemetry.watch_registry(metrics, prefix="broker.")
        telemetry.watch_registry(metrics, prefix="lifecycle.")
        for broker in brokers.values():
            telemetry.watch_broker(broker)
        telemetry.start(until=duration)

    sim.run(until=duration)
    # Drain: open fault windows heal, restarts replay, replies land.
    sim.run(until=duration + mttr + 30.0)

    result = ChaosResult(
        duration=duration,
        seed=seed,
        capacity=capacity,
        shed_policy=shed_policy,
        mtbf=mtbf,
        mttr=mttr,
    )
    for _issued, status, elapsed, failed_over in samples:
        result.requests += 1
        result.latency.add(elapsed)
        if failed_over:
            result.failovers += 1
        if status == ReplyStatus.OK.value:
            result.ok += 1
        elif status == ReplyStatus.DEGRADED.value:
            result.degraded += 1
        elif status == ReplyStatus.DROPPED.value:
            result.dropped += 1
        elif status == "timeout":
            result.timeouts += 1
        else:
            result.errors += 1
    for status in spike_samples:
        result.spike_requests += 1
        if status == ReplyStatus.OK.value:
            result.spike_ok += 1
        elif status == ReplyStatus.DEGRADED.value:
            result.spike_degraded += 1
        elif status == "timeout":
            result.spike_timeouts += 1
        else:
            result.spike_dropped += 1

    counter = metrics.counter
    result.crashes = int(counter("broker.crashes"))
    result.restarts = int(counter("broker.restarts"))
    result.detected = sum(watch.detected for watch in watches.values())
    result.recoveries = sum(watch.recoveries for watch in watches.values())
    result.failed_fast = int(counter("lifecycle.failed_fast"))
    result.replayed = int(counter("lifecycle.replayed"))
    result.restart_shed = int(counter("lifecycle.restart_shed"))
    result.shed_total = int(counter("broker.shed"))
    result.link_faults = link_faults
    for name, broker in brokers.items():
        result.peak_depths[name] = broker.queue.peak_depth
        journal = broker.journal
        result.residue[name] = {
            "queue_depth": len(broker.queue),
            "outstanding": broker.admission.outstanding,
            "journal_pending": journal.pending_count if journal else 0,
        }

    # -- invariants --------------------------------------------------------
    lost = [
        (name, info)
        for name, info in result.residue.items()
        if info["queue_depth"] or info["outstanding"] or info["journal_pending"]
    ]
    answered = (
        result.ok
        + result.degraded
        + result.dropped
        + result.timeouts
        + result.errors
    )
    result.invariants.append(
        InvariantCheck(
            name="no-lost-request",
            passed=not lost and answered == result.requests,
            detail=(
                f"{result.requests} requests all terminal; residue "
                + (
                    "clean"
                    if not lost
                    else "; ".join(f"{name}: {info}" for name, info in lost)
                )
            ),
        )
    )
    dead = [name for name, broker in brokers.items() if not broker.alive]
    accounting_ok = (
        result.restarts == result.crashes
        and not dead
        and all(watch.up for watch in watches.values())
    )
    result.invariants.append(
        InvariantCheck(
            name="post-crash-consistency",
            passed=accounting_ok,
            detail=(
                f"crashes={result.crashes} restarts={result.restarts} "
                f"failed_fast={result.failed_fast} replayed={result.replayed} "
                f"restart_shed={result.restart_shed}"
                + (f"; still dead: {dead}" if dead else "")
            ),
        )
    )
    over = {
        name: depth
        for name, depth in result.peak_depths.items()
        if depth > capacity
    }
    result.invariants.append(
        InvariantCheck(
            name="queue-bound",
            passed=not over,
            detail=(
                f"peak depths {result.peak_depths} vs capacity {capacity}"
            ),
        )
    )
    result.invariants.append(
        InvariantCheck(
            name="availability-floor",
            passed=result.availability >= availability_floor,
            detail=(
                f"availability {result.availability:.4f} "
                f"(floor {availability_floor:.4f}; "
                f"ok={result.ok} degraded={result.degraded} "
                f"dropped={result.dropped} timeouts={result.timeouts})"
            ),
        )
    )
    return result


# ---------------------------------------------------------------------------
# Shard-leader chaos soak
# ---------------------------------------------------------------------------


@dataclass
class ShardChaosResult(ChaosResult):
    """A :class:`ChaosResult` plus the shard tier's own accounting."""

    shards: int = 0
    replicas: int = 0
    #: Leader crashes the killer process actually landed.
    leader_kills: int = 0
    #: Bully elections run across all shard groups.
    elections: int = 0
    #: ``RouteAdvert`` messages applied at receiving brokers.
    route_adverts: int = 0
    #: ``JournalSync`` messages applied at receiving replicas.
    journal_syncs: int = 0
    #: Reporting-role moves the load listener observed.
    leader_failovers: int = 0
    #: Requests relayed broker→broker by the ShardRouteStage.
    forwards: int = 0

    def to_summary(self) -> Dict[str, object]:
        """The base summary extended with the shard-tier fields."""
        summary = super().to_summary()
        summary.update(
            {
                "shards": self.shards,
                "replicas": self.replicas,
                "leader_kills": self.leader_kills,
                "elections": self.elections,
                "route_adverts": self.route_adverts,
                "journal_syncs": self.journal_syncs,
                "leader_failovers": self.leader_failovers,
                "forwards": self.forwards,
            }
        )
        return summary


def run_shard_chaos_experiment(
    duration: float = 300.0,
    shards: int = 8,
    replicas: int = 2,
    leader_kill_every: float = 25.0,
    mttr: float = 2.0,
    n_clients: int = 10,
    think_time: float = 0.05,
    attempt_timeout: float = 0.75,
    max_tries: int = 3,
    key_pool: int = 512,
    service_time: float = 0.1,
    backend_capacity: int = 5,
    report_interval: float = 0.1,
    availability_floor: float = 0.99,
    seed: int = 0,
) -> ShardChaosResult:
    """A seeded soak that assassinates shard leaders on a fixed cadence.

    Topology: one service (``items``) fronted by *shards* ×
    *replicas* brokers. Each shard owns its own backend web server (its
    partition); every broker runs the distributed plan with a
    :class:`~repro.core.pipeline.ShardRouteStage`, is watched by a
    :class:`~repro.core.lifecycle.BrokerSupervisor` with a
    :class:`~repro.core.lifecycle.RecoveryJournal`, and joins its
    shard's :class:`~repro.core.peering.ShardPeerGroup` (so journal
    transitions replicate intra-shard and elections broadcast
    ``RouteAdvert`` gossip service-wide). Every replica also streams
    leader-only :class:`~repro.core.centralized.ShardLoadReport`
    updates to a :class:`~repro.core.centralized.LoadListener`, so the
    run observes the reporting role failing over with each election.

    The killer process crashes the *current leader* of a rotating
    shard every *leader_kill_every* seconds and restarts the corpse
    after *mttr* — by which time a bully election has promoted the
    next replica, so the returning broker re-takes the shard (a
    takeover election) and the cycle repeats on another shard.

    Clients resolve through the :class:`~repro.core.sharding.ShardDirectory`
    (service addressing) and retry up to *max_tries* times on a
    timeout or a DROPPED reply; each retry re-resolves the leader, so
    surviving an assassination is exactly one retry against the fresh
    replica. Verdicts: no-lost-request, post-crash-consistency,
    availability-floor (as the plain soak) plus leadership-convergence
    — every shard ends the run with a live, routable leader and at
    least one election per landed kill.
    """
    if shards < 1 or replicas < 1:
        raise ValueError(
            f"shards and replicas must be >= 1: {shards!r}x{replicas!r}"
        )
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1: {n_clients!r}")
    sim = Simulation(seed=seed)
    metrics = MetricsRegistry()
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")

    qos = QoSPolicy(
        levels=3,
        threshold=10_000,  # elections, not admission, are under test
        deadlines={1: 1.0, 2: 1.5, 3: 2.0},
    )
    directory = ShardDirectory(metrics=metrics)
    supervisor = BrokerSupervisor(sim, web_node, metrics=metrics)
    from ..core.centralized import LoadListener

    listener = LoadListener(
        sim, web_node, process_time=0.0005, metrics=metrics
    )

    groups: List[ShardGroup] = []
    brokers: Dict[str, ServiceBroker] = {}
    peers: List[ShardPeerGroup] = []
    watches = {}
    next_port = 7201
    for shard in range(shards):
        backend_name = f"shardbackend{shard}"
        backend = BackendWebServer(
            sim,
            net.node(backend_name),
            max_clients=backend_capacity,
            name=backend_name,
        )

        def item_cgi(server, request):
            yield server.sim.timeout(service_time * server.service_time_scale)
            return HttpResponse.text(f"item={request.param('id', '?')}")

        backend.add_cgi("/item", item_cgi)
        group = ShardGroup("items", shard, metrics=metrics)
        peer = ShardPeerGroup(group)
        for replica in range(replicas):
            broker = ServiceBroker(
                sim,
                web_node,
                service="items",
                port=next_port,
                adapters=[
                    HttpAdapter(sim, web_node, backend.address, name=backend_name)
                ],
                qos=qos,
                pool_size=backend_capacity,
                dispatchers=backend_capacity,
                metrics=metrics,
                name=f"shard{shard}r{replica}",
                stages=sharded_stage_plan(directory, shard=shard),
            )
            next_port += 1
            # Supervise first (installs the journal), then join the
            # shard mesh (wires the journal's replication hooks) and
            # the group (elects); the supervisor listener keeps
            # elections in step with heartbeat detections.
            watches[broker.name] = supervisor.watch(
                broker, journal=RecoveryJournal(sim, metrics=metrics)
            )
            peer.join(broker)
            group.add(broker)
            broker.report_load_to(listener.address, interval=report_interval)
        supervisor.add_listener(group.on_supervisor_event)
        groups.append(group)
        peers.append(peer)
        brokers.update((b.name, b) for b in group.members)
    roster = list(brokers.values())
    for peer in peers:
        peer.set_roster(roster)
    directory.register("items", groups, seed=seed)

    broker_client = BrokerClient(sim, web_node, {})
    broker_client.use_directory(directory)

    # The assassin: crash the current leader of a rotating shard.
    kills = {"count": 0}

    def resurrect(victim: ServiceBroker):
        yield mttr
        if not victim.alive:
            victim.restart()

    def leader_killer():
        target = 0
        while True:
            yield leader_kill_every
            if sim.now >= duration:
                return
            group = groups[target % len(groups)]
            target += 1
            victim = group.route()
            if victim is None:
                continue
            kills["count"] += 1
            sim.trace(
                "chaos", "leader-kill",
                shard=group.index, broker=victim.name, kill=kills["count"],
            )
            victim.crash()
            sim.process(resurrect(victim), name=f"resurrect:{victim.name}")

    sim.process(leader_killer(), name="chaos:leader-killer")

    # Steady closed-loop workload through the directory, with retries.
    samples: List[Tuple[float, str, float, bool]] = []
    key_rng = sim.rng("chaos.shard.keys")
    stagger_rng = sim.rng("chaos.shard.stagger")
    for index in range(n_clients):
        net.node(f"client{index}")
        level = (index % qos.levels) + 1

        def one_request(_client, _iteration, _level=level):
            issued = sim.now
            item = key_rng.randrange(key_pool)
            status = "error"
            retried = False
            for attempt in range(max_tries):
                try:
                    reply = yield from broker_client.call(
                        "items",
                        "get",
                        ("/item", {"id": item}),
                        qos_level=_level,
                        cacheable=False,
                        cache_key=f"item{item}",
                        timeout=attempt_timeout,
                    )
                except BrokerTimeout:
                    status = "timeout"
                    retried = attempt + 1 < max_tries
                    continue
                status = reply.status.value
                if reply.status in (ReplyStatus.OK, ReplyStatus.DEGRADED):
                    retried = attempt > 0
                    break
                retried = attempt + 1 < max_tries
            samples.append((issued, status, sim.now - issued, retried))

        ClosedLoopClient(
            sim,
            name=f"shardchaos{index}",
            request_factory=one_request,
            think_time=think_time,
            start_delay=stagger_rng.uniform(0.0, 1.0),
        ).start(until=duration)

    sim.run(until=duration)
    # Drain: the last corpse restarts, retries land, replies settle.
    sim.run(until=duration + mttr + 30.0)

    result = ShardChaosResult(
        duration=duration,
        seed=seed,
        capacity=0,
        shed_policy="none",
        mtbf=leader_kill_every,
        mttr=mttr,
        shards=shards,
        replicas=replicas,
    )
    for _issued, status, elapsed, retried in samples:
        result.requests += 1
        result.latency.add(elapsed)
        if retried:
            result.failovers += 1
        if status == ReplyStatus.OK.value:
            result.ok += 1
        elif status == ReplyStatus.DEGRADED.value:
            result.degraded += 1
        elif status == ReplyStatus.DROPPED.value:
            result.dropped += 1
        elif status == "timeout":
            result.timeouts += 1
        else:
            result.errors += 1

    counter = metrics.counter
    result.leader_kills = kills["count"]
    result.crashes = int(counter("broker.crashes"))
    result.restarts = int(counter("broker.restarts"))
    result.detected = sum(watch.detected for watch in watches.values())
    result.recoveries = sum(watch.recoveries for watch in watches.values())
    result.failed_fast = int(counter("lifecycle.failed_fast"))
    result.replayed = int(counter("lifecycle.replayed"))
    result.restart_shed = int(counter("lifecycle.restart_shed"))
    result.shed_total = int(counter("broker.shed"))
    result.elections = sum(group.elections for group in groups)
    result.route_adverts = int(counter("peering.route_adverts_applied"))
    result.journal_syncs = int(counter("peering.journal_syncs_applied"))
    result.leader_failovers = listener.leader_failovers
    result.forwards = int(counter("broker.shard.forwarded"))
    for name, broker in brokers.items():
        result.peak_depths[name] = broker.queue.peak_depth
        journal = broker.journal
        result.residue[name] = {
            "queue_depth": len(broker.queue),
            "outstanding": broker.admission.outstanding,
            "journal_pending": journal.pending_count if journal else 0,
        }

    # -- invariants --------------------------------------------------------
    lost = [
        (name, info)
        for name, info in result.residue.items()
        if info["queue_depth"] or info["outstanding"] or info["journal_pending"]
    ]
    answered = (
        result.ok
        + result.degraded
        + result.dropped
        + result.timeouts
        + result.errors
    )
    result.invariants.append(
        InvariantCheck(
            name="no-lost-request",
            passed=not lost and answered == result.requests,
            detail=(
                f"{result.requests} requests all terminal; residue "
                + (
                    "clean"
                    if not lost
                    else "; ".join(f"{name}: {info}" for name, info in lost)
                )
            ),
        )
    )
    dead = [name for name, broker in brokers.items() if not broker.alive]
    accounting_ok = (
        result.restarts == result.crashes
        and not dead
        and all(watch.up for watch in watches.values())
    )
    result.invariants.append(
        InvariantCheck(
            name="post-crash-consistency",
            passed=accounting_ok,
            detail=(
                f"crashes={result.crashes} restarts={result.restarts} "
                f"failed_fast={result.failed_fast} replayed={result.replayed}"
                + (f"; still dead: {dead}" if dead else "")
            ),
        )
    )
    leaderless = [
        group.name for group in groups if group.route() is None
    ]
    convergence_ok = (
        not leaderless
        and result.elections >= result.leader_kills
    )
    result.invariants.append(
        InvariantCheck(
            name="leadership-convergence",
            passed=convergence_ok,
            detail=(
                f"kills={result.leader_kills} elections={result.elections} "
                f"adverts={result.route_adverts} "
                f"reporting_failovers={result.leader_failovers}"
                + (f"; leaderless: {leaderless}" if leaderless else "")
            ),
        )
    )
    result.invariants.append(
        InvariantCheck(
            name="availability-floor",
            passed=result.availability >= availability_floor,
            detail=(
                f"availability {result.availability:.4f} "
                f"(floor {availability_floor:.4f}; "
                f"ok={result.ok} degraded={result.degraded} "
                f"dropped={result.dropped} timeouts={result.timeouts}; "
                f"retried={result.failovers})"
            ),
        )
    )
    return result


# ---------------------------------------------------------------------------
# Elastic autoscaling: headline experiment and scale-chaos soak
# ---------------------------------------------------------------------------


def _elastic_pool(
    sim: Simulation,
    net: Network,
    metrics: MetricsRegistry,
    *,
    capacity: int,
    shed_policy: str,
    service_time: float,
    backend_capacity: int,
    throttle: Optional[TenantThrottle] = None,
    report_interval: float = 0.25,
    drain_grace: float = 2.0,
    base_port: int = 7300,
    prefix: str = "scale",
    seed: int = 0,
):
    """Build the elastic-unit topology the autoscale experiments share.

    One *unit* = one broker plus its own dedicated backend web server
    (so backend capacity scales with the pool), running the hardened
    stage plan — with a :class:`~repro.core.pipeline.ThrottleStage`
    inserted before admission when *throttle* is given. Every unit is
    supervised (heartbeats + recovery journal), reports load to a
    :class:`~repro.core.centralized.LoadListener`, and joins a single
    :class:`~repro.core.sharding.ShardGroup` so drains exercise the
    full hand-off protocol (leadership, listener purge, supervision
    release). Returns ``(pool, supervisor, listener, group, watches)``.
    """
    from ..core.centralized import LoadListener

    web_node = net.nodes["web"] if "web" in net.nodes else net.node("web")
    qos = QoSPolicy(
        levels=3,
        threshold=10_000,  # scaling, not admission, is under test
        deadlines={1: 1.0, 2: 1.5, 3: 2.0},
    )
    supervisor = BrokerSupervisor(sim, web_node, metrics=metrics)
    listener = LoadListener(sim, web_node, process_time=0.0005, metrics=metrics)
    group = ShardGroup(prefix, 0, metrics=metrics)
    supervisor.add_listener(group.on_supervisor_event)
    watches: Dict[str, object] = {}

    def factory(pool: BrokerPool, index: int) -> ServiceBroker:
        backend_name = f"{prefix}backend{index}"
        backend = BackendWebServer(
            sim,
            net.node(backend_name),
            max_clients=backend_capacity,
            name=backend_name,
        )

        def item_cgi(server, request):
            yield server.sim.timeout(service_time * server.service_time_scale)
            return HttpResponse.text(f"item={request.param('id', '?')}")

        backend.add_cgi("/item", item_cgi)
        stages = _hardened_stages(capacity, shed_policy)
        if throttle is not None:
            # After validate+arrival, before admission: a refused
            # request never touches the ledger or the journal.
            stages.insert(2, ThrottleStage(throttle))
        broker = ServiceBroker(
            sim,
            web_node,
            service=f"items-{index}",
            port=base_port + index,
            adapters=[
                HttpAdapter(sim, web_node, backend.address, name=backend_name)
            ],
            qos=qos,
            pool_size=backend_capacity,
            dispatchers=backend_capacity,
            metrics=metrics,
            name=f"{prefix}{index}",
            stages=stages,
        )
        watches[broker.name] = supervisor.watch(
            broker, journal=RecoveryJournal(sim, metrics=metrics)
        )
        broker.report_load_to(listener.address, interval=report_interval)
        return broker

    pool = BrokerPool(
        sim,
        factory,
        supervisor=supervisor,
        group=group,
        listener=listener,
        seed=seed,
        drain_grace=drain_grace,
        metrics=metrics,
    )
    return pool, supervisor, listener, group, watches


def _workload_counters(metrics: MetricsRegistry):
    """Pre-resolved ``workload.*`` handles for the outcome closure."""
    names = (
        "done", "ok", "degraded", "throttled", "dropped",
        "timeout", "error", "answered", "fast",
    )
    return {name: metrics.handle(f"workload.{name}") for name in names}


@dataclass
class AutoscaleResult:
    """One elastic-pool run: workload outcome, pool economy, verdicts."""

    duration: float
    seed: int
    base_rate: float
    peak_rate: float
    period: float
    target: float
    # Workload outcome counts (terminal statuses; throttled = deliberate
    # per-tenant refusals, distinct from capacity drops).
    requests: int = 0
    ok: int = 0
    degraded: int = 0
    throttled: int = 0
    dropped: int = 0
    timeouts: int = 0
    errors: int = 0
    #: Latency of answered (OK/DEGRADED) replies per QoS class.
    latency: Dict[int, SummaryStats] = field(default_factory=dict)
    #: Per-tenant outcome counts: requests / answered / throttled.
    tenants: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # Pool economy.
    provisioned: int = 0
    scale_outs: int = 0
    scale_ins: int = 0
    drains_completed: int = 0
    handoffs: int = 0
    drain_refused: int = 0
    steady_size: int = 0
    mean_size: float = 0.0
    peak_size: int = 0
    min_size: int = 0
    alerts: int = 0
    blocked_by_alert: int = 0
    blocked_by_cooldown: int = 0
    #: ``(time, size, signal, action)`` control-loop timeline.
    timeline: List[Tuple[float, int, float, str]] = field(default_factory=list)
    #: Per-unit end-of-run residue over every unit ever provisioned.
    residue: Dict[str, Dict[str, int]] = field(default_factory=dict)
    invariants: List[InvariantCheck] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Answered fraction of non-throttled traffic (OK + DEGRADED)."""
        offered = self.requests - self.throttled
        if offered <= 0:
            return 1.0
        return (self.ok + self.degraded) / offered

    def premium_p99(self) -> float:
        """99th-percentile latency of answered class-1 replies."""
        stats = self.latency.get(1)
        if stats is None or not stats.count:
            return float("nan")
        return stats.percentile(99.0)

    @property
    def all_invariants_hold(self) -> bool:
        """True when every invariant check passed."""
        return all(check.passed for check in self.invariants)

    def to_summary(self) -> Dict[str, object]:
        """A JSON-safe summary (the CI artifact / ``--summary-out``)."""
        premium = self.premium_p99()
        step = max(1, math.ceil(len(self.timeline) / 48))
        return {
            "duration": self.duration,
            "seed": self.seed,
            "base_rate": self.base_rate,
            "peak_rate": self.peak_rate,
            "period": self.period,
            "target": self.target,
            "requests": self.requests,
            "ok": self.ok,
            "degraded": self.degraded,
            "throttled": self.throttled,
            "dropped": self.dropped,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "availability": round(self.availability, 6),
            "premium_p99": None if math.isnan(premium) else round(premium, 6),
            "tenants": {name: dict(info) for name, info in self.tenants.items()},
            "provisioned": self.provisioned,
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "drains_completed": self.drains_completed,
            "handoffs": self.handoffs,
            "drain_refused": self.drain_refused,
            "steady_size": self.steady_size,
            "mean_size": round(self.mean_size, 3),
            "peak_size": self.peak_size,
            "min_size": self.min_size,
            "alerts": self.alerts,
            "blocked_by_alert": self.blocked_by_alert,
            "blocked_by_cooldown": self.blocked_by_cooldown,
            "timeline": [
                [round(t, 1), size, round(signal, 2), action]
                for t, size, signal, action in self.timeline[::step]
            ],
            "residue": {name: dict(info) for name, info in self.residue.items()},
            "invariants": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.invariants
            ],
        }


def run_autoscale_experiment(
    duration: float = 240.0,
    base_rate: float = 8.0,
    swing: float = 10.0,
    period: float = 120.0,
    target: float = 3.0,
    hysteresis: float = 0.3,
    scale_out_cooldown: float = 2.0,
    scale_in_cooldown: float = 10.0,
    max_step: int = 2,
    min_size: int = 1,
    max_size: int = 6,
    initial_size: int = 2,
    interval: float = 1.0,
    scrape_interval: float = 0.5,
    capacity: int = 48,
    shed_policy: str = "drop-lowest",
    service_time: float = 0.1,
    backend_capacity: int = 4,
    drain_grace: float = 2.0,
    throttle_rate: float = 200.0,
    throttle_burst: float = 400.0,
    burst_rate: float = 2.0,
    burst_allowance: Tuple[float, float] = (4.0, 8.0),
    burst_multiplier: float = 20.0,
    attempt_timeout: float = 2.0,
    max_tries: int = 3,
    key_pool: int = 512,
    fast_threshold: float = 0.5,
    premium_p99_slo: float = 1.0,
    efficiency_factor: float = 1.5,
    headroom: float = 0.75,
    seed: int = 0,
) -> AutoscaleResult:
    """The elastic-pool headline: a 10× diurnal swing, autoscaled.

    Load is a :class:`~repro.workload.clients.DiurnalLoadGenerator`
    sweeping ``base_rate .. base_rate*swing`` once per *period*, mixed
    across three QoS classes (class 1 = tenant ``premium``), plus a
    :class:`~repro.workload.clients.FlashCrowdGenerator` for tenant
    ``burst`` whose crowds multiply its trickle by *burst_multiplier* —
    and whose token bucket (*burst_allowance*) is sized so the crowd is
    *refused*, not absorbed.

    The pool is an elastic set of broker+backend units behind an
    :class:`~repro.core.autoscale.Autoscaler` reading per-broker load
    series from a :class:`~repro.obs.telemetry.TelemetryScraper` and
    honouring :class:`~repro.obs.slo.SloEngine` burn alerts
    (:func:`~repro.obs.slo.autoscale_slos` — throttle refusals do not
    burn). Scale-in runs the graceful drain protocol end to end.

    Verdicts: premium p99 within *premium_p99_slo*; time-mean pool size
    within ``efficiency_factor ×`` the steady-state unit count (the
    units needed for the *time-average* offered rate at *headroom*
    utilisation — static provisioning would need the peak count
    instead); the burst tenant throttled while premium never is; the
    pool actually tracked the swing; and no request lost across every
    drain.
    """
    if swing <= 1.0:
        raise ValueError(f"swing must be > 1: {swing!r}")
    peak_rate = base_rate * swing
    sim = Simulation(seed=seed)
    metrics = MetricsRegistry()
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")

    throttle = TenantThrottle(
        throttle_rate, throttle_burst, overrides={"burst": burst_allowance}
    )
    pool, supervisor, listener, group, watches = _elastic_pool(
        sim,
        net,
        metrics,
        capacity=capacity,
        shed_policy=shed_policy,
        service_time=service_time,
        backend_capacity=backend_capacity,
        throttle=throttle,
        drain_grace=drain_grace,
        seed=seed,
    )

    from ..obs.slo import SloEngine, autoscale_slos
    from ..obs.telemetry import TelemetryScraper

    scraper = TelemetryScraper(interval=scrape_interval).attach(sim)
    scraper.watch_registry(metrics, prefix="workload.")
    scraper.watch_registry(metrics, prefix="autoscaler.")
    engine = SloEngine(autoscale_slos())
    scraper.use_slo(engine)

    broker_client = BrokerClient(sim, web_node, {})

    def on_provision(broker: ServiceBroker) -> None:
        broker_client.add_route(broker.service, broker.address)
        scraper.watch_broker(broker)

    pool.on_provision = on_provision
    pool.scale_to(max(min_size, initial_size))

    policy = AutoscalerPolicy(
        target=target,
        hysteresis=hysteresis,
        scale_out_cooldown=scale_out_cooldown,
        scale_in_cooldown=scale_in_cooldown,
        max_step=max_step,
        min_size=min_size,
        max_size=max_size,
    )
    autoscaler = Autoscaler(
        sim, pool, policy, scraper=scraper, engine=engine,
        interval=interval, metrics=metrics,
    )
    for gauge_name, fn in autoscaler.gauges().items():
        scraper.add_gauge(gauge_name, fn)
    scraper.start(until=duration)
    autoscaler.start(until=duration)

    # -- workload ----------------------------------------------------------
    workload = _workload_counters(metrics)
    samples: List[Tuple[float, int, str, str, float, str]] = []
    key_rng = sim.rng("autoscale.keys")

    def make_factory(level: int, tenant: str):
        def one_request(_generator, index):
            issued = sim.now
            item = key_rng.randrange(key_pool)
            status = "error"
            error = ""
            for attempt in range(max_tries):
                try:
                    broker = pool.route(f"item{item}")
                except BrokerError:
                    status = "error"
                    error = "no-pool"
                    break
                try:
                    reply = yield from broker_client.call(
                        broker.service,
                        "get",
                        ("/item", {"id": item, "tenant": tenant}),
                        qos_level=level,
                        cacheable=False,
                        timeout=attempt_timeout,
                    )
                except BrokerTimeout:
                    status = "timeout"
                    error = ""
                    continue
                status = reply.status.value
                error = reply.error or ""
                if reply.status in (ReplyStatus.OK, ReplyStatus.DEGRADED):
                    break
                if error == "throttled":
                    break  # deliberate refusal; a retry is refused too
            elapsed = sim.now - issued
            samples.append((issued, level, tenant, status, elapsed, error))
            workload["done"].inc()
            if status == ReplyStatus.OK.value:
                workload["ok"].inc()
            elif status == ReplyStatus.DEGRADED.value:
                workload["degraded"].inc()
            elif status == ReplyStatus.DROPPED.value and error == "throttled":
                workload["throttled"].inc()
            elif status == ReplyStatus.DROPPED.value:
                workload["dropped"].inc()
            elif status == "timeout":
                workload["timeout"].inc()
            else:
                workload["error"].inc()
            if status in (ReplyStatus.OK.value, ReplyStatus.DEGRADED.value):
                workload["answered"].inc()
                if elapsed <= fast_threshold:
                    workload["fast"].inc()

        return one_request

    # The diurnal curve carries all three QoS classes; a third of its
    # volume per class, premium traffic billed to tenant "premium".
    for level in (1, 2, 3):
        tenant = "premium" if level == 1 else "standard"
        DiurnalLoadGenerator(
            sim,
            name=f"diurnal.qos{level}",
            request_factory=make_factory(level, tenant),
            base_rate=base_rate / 3.0,
            peak_rate=peak_rate / 3.0,
            period=period,
            rng_stream=f"autoscale.diurnal.qos{level}",
        ).start(until=duration)
    crowds = [
        (period / 3.0 + cycle * period, period / 12.0, burst_multiplier)
        for cycle in range(int(duration / period) + 1)
    ]
    FlashCrowdGenerator(
        sim,
        name="burst",
        request_factory=make_factory(3, "burst"),
        base_rate=burst_rate,
        crowds=crowds,
        rng_stream="autoscale.burst",
    ).start(until=duration)

    sim.run(until=duration)
    # Overtime: in-flight replies land, started drains complete.
    sim.run(until=duration + drain_grace * 3 + 30.0)

    # -- result ------------------------------------------------------------
    unit_rate = backend_capacity / service_time
    mean_rate = (base_rate + peak_rate) / 2.0 + burst_rate
    steady_size = max(min_size, math.ceil(mean_rate / (unit_rate * headroom)))
    result = AutoscaleResult(
        duration=duration,
        seed=seed,
        base_rate=base_rate,
        peak_rate=peak_rate,
        period=period,
        target=target,
        steady_size=steady_size,
    )
    for _issued, level, tenant, status, elapsed, _error in samples:
        result.requests += 1
        per_tenant = result.tenants.setdefault(
            tenant, {"requests": 0, "answered": 0, "throttled": 0}
        )
        per_tenant["requests"] += 1
        if status == ReplyStatus.OK.value:
            result.ok += 1
        elif status == ReplyStatus.DEGRADED.value:
            result.degraded += 1
        elif status == ReplyStatus.DROPPED.value and _error == "throttled":
            result.throttled += 1
            per_tenant["throttled"] += 1
        elif status == ReplyStatus.DROPPED.value:
            result.dropped += 1
        elif status == "timeout":
            result.timeouts += 1
        else:
            result.errors += 1
        if status in (ReplyStatus.OK.value, ReplyStatus.DEGRADED.value):
            per_tenant["answered"] += 1
            result.latency.setdefault(level, SummaryStats()).add(elapsed)

    counter = metrics.counter
    result.provisioned = int(counter("autoscaler.provisioned"))
    result.scale_outs = pool.scale_out_events
    result.scale_ins = pool.scale_in_events
    result.drains_completed = pool.drains_completed
    result.handoffs = pool.handoffs
    result.drain_refused = int(counter("broker.drain.refused"))
    result.alerts = len(engine.alerts)
    result.blocked_by_alert = int(counter("autoscaler.blocked_alert"))
    result.blocked_by_cooldown = int(counter("autoscaler.blocked_cooldown"))
    result.timeline = list(autoscaler.history)
    sizes = [size for _t, size, _signal, _action in result.timeline]
    if sizes:
        result.mean_size = sum(sizes) / len(sizes)
        result.peak_size = max(sizes)
        result.min_size = min(sizes)
    for broker in pool.every:
        journal = broker.journal
        result.residue[broker.name] = {
            "queue_depth": len(broker.queue),
            "outstanding": broker.admission.outstanding,
            "journal_pending": journal.pending_count if journal else 0,
        }

    # -- invariants --------------------------------------------------------
    premium = result.premium_p99()
    result.invariants.append(
        InvariantCheck(
            name="premium-p99",
            passed=not math.isnan(premium) and premium <= premium_p99_slo,
            detail=(
                f"premium p99 {premium:.3f}s (SLO {premium_p99_slo:.3f}s; "
                f"{result.latency.get(1).count if 1 in result.latency else 0} "
                f"answered premium replies)"
            ),
        )
    )
    bound = efficiency_factor * steady_size
    result.invariants.append(
        InvariantCheck(
            name="pool-efficiency",
            passed=bool(sizes) and result.mean_size <= bound,
            detail=(
                f"mean size {result.mean_size:.2f} <= {bound:.2f} "
                f"({efficiency_factor}x steady {steady_size}; "
                f"peak {result.peak_size}, static peak provisioning needs "
                f"{math.ceil(peak_rate / (unit_rate * headroom))})"
            ),
        )
    )
    tracked = (
        result.scale_outs >= 1
        and result.scale_ins >= 1
        and result.peak_size > result.min_size
    )
    result.invariants.append(
        InvariantCheck(
            name="elasticity",
            passed=tracked,
            detail=(
                f"scale_outs={result.scale_outs} scale_ins={result.scale_ins} "
                f"size range [{result.min_size}, {result.peak_size}]"
            ),
        )
    )
    burst_throttled = result.tenants.get("burst", {}).get("throttled", 0)
    premium_throttled = result.tenants.get("premium", {}).get("throttled", 0)
    result.invariants.append(
        InvariantCheck(
            name="throttle-containment",
            passed=burst_throttled > 0 and premium_throttled == 0,
            detail=(
                f"burst throttled {burst_throttled} of "
                f"{result.tenants.get('burst', {}).get('requests', 0)}; "
                f"premium throttled {premium_throttled}"
            ),
        )
    )
    lost = [
        (name, info)
        for name, info in result.residue.items()
        if info["queue_depth"] or info["outstanding"] or info["journal_pending"]
    ]
    answered = (
        result.ok + result.degraded + result.throttled
        + result.dropped + result.timeouts + result.errors
    )
    result.invariants.append(
        InvariantCheck(
            name="no-lost-request",
            passed=not lost and answered == result.requests,
            detail=(
                f"{result.requests} requests all terminal across "
                f"{len(pool.every)} units ({len(pool.retired)} retired); "
                + (
                    "residue clean"
                    if not lost
                    else "; ".join(f"{name}: {info}" for name, info in lost)
                )
            ),
        )
    )
    return result


@dataclass
class ScaleChaosResult:
    """One scale-chaos soak: drains under fire, plus its verdicts."""

    duration: float
    seed: int
    wave_period: float
    base_rate: float
    high_rate: float
    mttr: float
    # Workload outcome counts.
    requests: int = 0
    ok: int = 0
    degraded: int = 0
    dropped: int = 0
    timeouts: int = 0
    errors: int = 0
    latency: SummaryStats = field(default_factory=SummaryStats)
    # Pool and chaos accounting.
    provisioned: int = 0
    scale_outs: int = 0
    scale_ins: int = 0
    drains_completed: int = 0
    handoffs: int = 0
    drain_refused: int = 0
    drain_interrupted: int = 0
    mid_drain_kills: int = 0
    crashes: int = 0
    restarts: int = 0
    failed_fast: int = 0
    replayed: int = 0
    peak_size: int = 0
    min_size: int = 0
    #: Per-unit end-of-run residue over every unit ever provisioned.
    residue: Dict[str, Dict[str, int]] = field(default_factory=dict)
    invariants: List[InvariantCheck] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Answered fraction of the workload (OK + DEGRADED)."""
        if not self.requests:
            return 1.0
        return (self.ok + self.degraded) / self.requests

    @property
    def all_invariants_hold(self) -> bool:
        """True when every invariant check passed."""
        return all(check.passed for check in self.invariants)

    def to_summary(self) -> Dict[str, object]:
        """A JSON-safe summary (the CI artifact / ``--summary-out``)."""
        return {
            "duration": self.duration,
            "seed": self.seed,
            "wave_period": self.wave_period,
            "base_rate": self.base_rate,
            "high_rate": self.high_rate,
            "mttr": self.mttr,
            "requests": self.requests,
            "ok": self.ok,
            "degraded": self.degraded,
            "dropped": self.dropped,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "availability": round(self.availability, 6),
            "latency_p50": round(self.latency.percentile(50.0), 6)
            if self.latency.count
            else None,
            "latency_p99": round(self.latency.percentile(99.0), 6)
            if self.latency.count
            else None,
            "provisioned": self.provisioned,
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "drains_completed": self.drains_completed,
            "handoffs": self.handoffs,
            "drain_refused": self.drain_refused,
            "drain_interrupted": self.drain_interrupted,
            "mid_drain_kills": self.mid_drain_kills,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "failed_fast": self.failed_fast,
            "replayed": self.replayed,
            "peak_size": self.peak_size,
            "min_size": self.min_size,
            "residue": {name: dict(info) for name, info in self.residue.items()},
            "invariants": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.invariants
            ],
        }


def run_scale_chaos_experiment(
    duration: float = 264.0,
    wave_period: float = 24.0,
    base_rate: float = 6.0,
    high_multiplier: float = 10.0,
    target: float = 2.5,
    hysteresis: float = 0.3,
    scale_out_cooldown: float = 2.0,
    scale_in_cooldown: float = 6.0,
    max_step: int = 2,
    min_size: int = 1,
    max_size: int = 6,
    initial_size: int = 1,
    interval: float = 1.0,
    capacity: int = 48,
    shed_policy: str = "drop-lowest",
    service_time: float = 0.1,
    backend_capacity: int = 4,
    drain_grace: float = 2.0,
    mttr: float = 1.0,
    snipe_every: int = 2,
    sniper_poll: float = 0.25,
    attempt_timeout: float = 2.0,
    max_tries: int = 3,
    key_pool: int = 512,
    fast_threshold: float = 0.5,
    min_scale_ins: int = 20,
    min_mid_drain_kills: int = 3,
    availability_floor: float = 0.97,
    seed: int = 0,
) -> ScaleChaosResult:
    """The scale-chaos soak: crash brokers *while* they drain.

    A square-wave load (high for the first half of every *wave_period*,
    ``base_rate`` for the second) forces the autoscaled pool through a
    scale-out/scale-in cycle per wave — dozens of graceful drains per
    run. A *drain sniper* process watches :attr:`BrokerPool.draining
    <repro.core.autoscale.BrokerPool.draining>` and crashes every
    *snipe_every*-th draining broker mid-protocol; the resurrection
    (after *mttr*) restarts it still in draining state (the flag
    survives the restart), the supervisor fail-fasts its journal
    meanwhile, and the drain coordinator resumes with a fresh grace
    window. The headline verdict: across ``>= min_scale_ins`` drains
    with ``>= min_mid_drain_kills`` mid-drain kills, **no request is
    ever lost** — every unit ever provisioned ends with zero queue,
    ledger, and journal residue, and every issued request reached a
    terminal outcome.

    The autoscaler here runs without the SLO veto (``engine=None``):
    wave-front burn alerts would suppress the very scale-ins under
    test. The headline experiment keeps the veto wired.
    """
    sim = Simulation(seed=seed)
    metrics = MetricsRegistry()
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")

    pool, supervisor, listener, group, watches = _elastic_pool(
        sim,
        net,
        metrics,
        capacity=capacity,
        shed_policy=shed_policy,
        service_time=service_time,
        backend_capacity=backend_capacity,
        throttle=None,
        drain_grace=drain_grace,
        base_port=7400,
        prefix="soak",
        seed=seed,
    )

    broker_client = BrokerClient(sim, web_node, {})

    def on_provision(broker: ServiceBroker) -> None:
        broker_client.add_route(broker.service, broker.address)

    pool.on_provision = on_provision
    pool.scale_to(max(min_size, initial_size))

    policy = AutoscalerPolicy(
        target=target,
        hysteresis=hysteresis,
        scale_out_cooldown=scale_out_cooldown,
        scale_in_cooldown=scale_in_cooldown,
        max_step=max_step,
        min_size=min_size,
        max_size=max_size,
    )
    # Live broker readings (no scraper): the soak stresses the drain
    # protocol, not the telemetry path the headline experiment covers.
    autoscaler = Autoscaler(
        sim, pool, policy, scraper=None, engine=None,
        interval=interval, metrics=metrics,
    )
    autoscaler.start(until=duration)

    # -- the drain sniper --------------------------------------------------
    kills = {"count": 0}
    sniped: set = set()
    ordinals: Dict[str, int] = {}

    def resurrect(victim: ServiceBroker):
        yield mttr
        victim.restart()  # no-op when already alive or retired

    def drain_sniper():
        while True:
            yield sniper_poll
            if sim.now >= duration:
                return
            for name, broker in list(pool.draining.items()):
                if name not in ordinals:
                    ordinals[name] = len(ordinals)
                if (
                    broker.alive
                    and name not in sniped
                    and ordinals[name] % snipe_every == 0
                ):
                    sniped.add(name)
                    kills["count"] += 1
                    sim.trace(
                        "chaos", "drain-snipe",
                        broker=name, kill=kills["count"],
                    )
                    broker.crash()
                    sim.process(resurrect(broker), name=f"resurrect:{name}")

    sim.process(drain_sniper(), name="chaos:drain-sniper")

    # -- workload ----------------------------------------------------------
    workload = _workload_counters(metrics)
    samples: List[Tuple[float, int, str, float]] = []
    key_rng = sim.rng("scalechaos.keys")

    def make_factory(level: int):
        def one_request(_generator, index):
            issued = sim.now
            item = key_rng.randrange(key_pool)
            status = "error"
            for attempt in range(max_tries):
                try:
                    broker = pool.route(f"item{item}")
                except BrokerError:
                    status = "error"
                    break
                try:
                    reply = yield from broker_client.call(
                        broker.service,
                        "get",
                        ("/item", {"id": item}),
                        qos_level=level,
                        cacheable=False,
                        timeout=attempt_timeout,
                    )
                except BrokerTimeout:
                    status = "timeout"
                    continue
                status = reply.status.value
                if reply.status in (ReplyStatus.OK, ReplyStatus.DEGRADED):
                    break
            elapsed = sim.now - issued
            samples.append((issued, level, status, elapsed))
            workload["done"].inc()
            if status == ReplyStatus.OK.value:
                workload["ok"].inc()
            elif status == ReplyStatus.DEGRADED.value:
                workload["degraded"].inc()
            elif status == ReplyStatus.DROPPED.value:
                workload["dropped"].inc()
            elif status == "timeout":
                workload["timeout"].inc()
            else:
                workload["error"].inc()
            if status in (ReplyStatus.OK.value, ReplyStatus.DEGRADED.value):
                workload["answered"].inc()
                if elapsed <= fast_threshold:
                    workload["fast"].inc()

        return one_request

    cycles = int(duration / wave_period) + 1
    for level in (1, 2, 3):
        FlashCrowdGenerator(
            sim,
            name=f"wave.qos{level}",
            request_factory=make_factory(level),
            base_rate=base_rate / 3.0,
            crowds=[
                (cycle * wave_period, wave_period / 2.0, high_multiplier)
                for cycle in range(cycles)
            ],
            rng_stream=f"scalechaos.wave.qos{level}",
        ).start(until=duration)

    sim.run(until=duration)
    # Overtime: resurrect the last corpse, finish the last drains.
    sim.run(until=duration + mttr + drain_grace * 3 + 30.0)

    # -- result ------------------------------------------------------------
    result = ScaleChaosResult(
        duration=duration,
        seed=seed,
        wave_period=wave_period,
        base_rate=base_rate,
        high_rate=base_rate * high_multiplier,
        mttr=mttr,
    )
    for _issued, _level, status, elapsed in samples:
        result.requests += 1
        if status == ReplyStatus.OK.value:
            result.ok += 1
            result.latency.add(elapsed)
        elif status == ReplyStatus.DEGRADED.value:
            result.degraded += 1
            result.latency.add(elapsed)
        elif status == ReplyStatus.DROPPED.value:
            result.dropped += 1
        elif status == "timeout":
            result.timeouts += 1
        else:
            result.errors += 1

    counter = metrics.counter
    result.provisioned = int(counter("autoscaler.provisioned"))
    result.scale_outs = pool.scale_out_events
    result.scale_ins = pool.scale_in_events
    result.drains_completed = pool.drains_completed
    result.handoffs = pool.handoffs
    result.drain_refused = int(counter("broker.drain.refused"))
    result.drain_interrupted = int(counter("autoscaler.drain.interrupted"))
    result.mid_drain_kills = kills["count"]
    result.crashes = int(counter("broker.crashes"))
    result.restarts = int(counter("broker.restarts"))
    result.failed_fast = int(counter("lifecycle.failed_fast"))
    result.replayed = int(counter("lifecycle.replayed"))
    sizes = [size for _t, size, _signal, _action in autoscaler.history]
    if sizes:
        result.peak_size = max(sizes)
        result.min_size = min(sizes)
    for broker in pool.every:
        journal = broker.journal
        result.residue[broker.name] = {
            "queue_depth": len(broker.queue),
            "outstanding": broker.admission.outstanding,
            "journal_pending": journal.pending_count if journal else 0,
        }

    # -- invariants --------------------------------------------------------
    lost = [
        (name, info)
        for name, info in result.residue.items()
        if info["queue_depth"] or info["outstanding"] or info["journal_pending"]
    ]
    answered = (
        result.ok + result.degraded + result.dropped
        + result.timeouts + result.errors
    )
    result.invariants.append(
        InvariantCheck(
            name="no-lost-request",
            passed=not lost and answered == result.requests,
            detail=(
                f"{result.requests} requests all terminal across "
                f"{len(pool.every)} units ({len(pool.retired)} retired, "
                f"{result.mid_drain_kills} mid-drain kills); "
                + (
                    "residue clean"
                    if not lost
                    else "; ".join(f"{name}: {info}" for name, info in lost)
                )
            ),
        )
    )
    result.invariants.append(
        InvariantCheck(
            name="scale-in-coverage",
            passed=(
                result.scale_ins >= min_scale_ins
                and result.mid_drain_kills >= min_mid_drain_kills
            ),
            detail=(
                f"scale_ins={result.scale_ins} (need >= {min_scale_ins}); "
                f"mid_drain_kills={result.mid_drain_kills} "
                f"(need >= {min_mid_drain_kills})"
            ),
        )
    )
    stuck = sorted(pool.draining)
    result.invariants.append(
        InvariantCheck(
            name="drain-completion",
            passed=not stuck and result.drains_completed == result.scale_ins,
            detail=(
                f"drains_completed={result.drains_completed} of "
                f"{result.scale_ins} started"
                + (f"; still draining: {stuck}" if stuck else "")
            ),
        )
    )
    result.invariants.append(
        InvariantCheck(
            name="pool-bounds",
            passed=bool(sizes)
            and min_size <= result.min_size
            and result.peak_size <= max_size,
            detail=(
                f"observed sizes [{result.min_size}, {result.peak_size}] "
                f"within [{min_size}, {max_size}]"
            ),
        )
    )
    dead = [
        broker.name
        for broker in pool.active
        if not broker.alive
    ]
    result.invariants.append(
        InvariantCheck(
            name="post-crash-consistency",
            passed=result.restarts == result.crashes and not dead,
            detail=(
                f"crashes={result.crashes} restarts={result.restarts} "
                f"failed_fast={result.failed_fast} replayed={result.replayed}"
                + (f"; still dead: {dead}" if dead else "")
            ),
        )
    )
    result.invariants.append(
        InvariantCheck(
            name="availability-floor",
            passed=result.availability >= availability_floor,
            detail=(
                f"availability {result.availability:.4f} "
                f"(floor {availability_floor:.4f}; ok={result.ok} "
                f"degraded={result.degraded} dropped={result.dropped} "
                f"timeouts={result.timeouts})"
            ),
        )
    )
    return result
