"""Overload and chaos testbeds for the robustness features.

* :func:`run_overload_experiment` — drives one broker past saturation
  with open-loop Poisson traffic and compares the bounded-queue
  backpressure configuration against the unprotected baseline (the
  paper's binary forward-or-drop testbed: FCFS, unbounded backlog).
  The claim under test: with QoS-aware shedding, premium goodput at
  2× saturation stays within a few percent of the uncontended run,
  while the unprotected broker's premium latency collapses.
* :func:`run_chaos_experiment` — a seeded chaos soak: two replica
  brokers under a :class:`~repro.core.lifecycle.BrokerSupervisor`
  while a :class:`~repro.net.faults.FaultInjector` replays broker
  crash/restart cycles, link flaps, and open-loop load spikes on top
  of a steady closed-loop workload. The run ends with a set of
  machine-checked :class:`InvariantCheck` verdicts (no request lost
  without a reply, post-crash accounting consistent, queue bound
  respected, availability floor met).
* :func:`run_shard_chaos_experiment` — the shard-tier soak: one
  service fronted by N shards × R replica brokers
  (:mod:`repro.core.sharding`) while a leader-killer process crashes
  the *current leader* of a rotating shard every ``leader_kill_every``
  seconds. Clients address the service through the
  :class:`~repro.core.sharding.ShardDirectory` and must ride each
  bully election; the verdicts add leadership convergence to the
  no-lost-request / post-crash / availability checks.

All are plain functions returning result dataclasses; the ``repro
chaos`` CLI and the overload/chaos benchmarks render them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.adapters import HttpAdapter
from ..core.broker import ServiceBroker
from ..core.cache import ResultCache
from ..core.client import BrokerClient
from ..core.faulttolerance import RetryPolicy
from ..core.lifecycle import BrokerSupervisor, RecoveryJournal
from ..core.peering import ShardPeerGroup
from ..core.pipeline import (
    BackpressureStage,
    distributed_stage_plan,
    fault_tolerant_stage_plan,
    overload_protected_stage_plan,
    sharded_stage_plan,
)
from ..core.protocol import ReplyStatus
from ..core.qos import QoSPolicy
from ..core.sharding import ShardDirectory, ShardGroup
from ..errors import BrokerTimeout
from ..http.messages import HttpResponse
from ..http.server import BackendWebServer
from ..metrics import MetricsRegistry, SummaryStats
from ..net.faults import BrokerCrash, FaultInjector, FaultPlan, LinkDown
from ..net.link import Link
from ..net.network import Network
from ..sim.core import Simulation
from .clients import ClosedLoopClient, OpenLoopGenerator

__all__ = [
    "OverloadResult",
    "run_overload_experiment",
    "InvariantCheck",
    "ChaosResult",
    "run_chaos_experiment",
    "ShardChaosResult",
    "run_shard_chaos_experiment",
]


# ---------------------------------------------------------------------------
# Overload / backpressure ablation
# ---------------------------------------------------------------------------


@dataclass
class OverloadResult:
    """One overload run: per-class goodput and latency under saturation."""

    saturation: float
    bounded: bool
    capacity: Optional[int]
    shed_policy: str
    duration: float
    #: Offered Poisson rate per QoS class (requests/second).
    offered: Dict[int, float] = field(default_factory=dict)
    issued: Dict[int, int] = field(default_factory=dict)
    ok: Dict[int, int] = field(default_factory=dict)
    degraded: Dict[int, int] = field(default_factory=dict)
    dropped: Dict[int, int] = field(default_factory=dict)
    #: OK replies delivered inside the issue window, per second.
    goodput: Dict[int, float] = field(default_factory=dict)
    #: Latency of OK replies only (sheds answer instantly and would
    #: otherwise flatter the protected configuration).
    latency: Dict[int, SummaryStats] = field(default_factory=dict)
    shed: int = 0
    peak_depth: int = 0
    backpressure_engaged: int = 0

    @property
    def premium_goodput(self) -> float:
        """Class-1 goodput (the paper's premium customers)."""
        return self.goodput.get(1, 0.0)

    def premium_p99(self) -> float:
        """99th-percentile latency of class-1 OK replies."""
        stats = self.latency.get(1)
        return stats.percentile(99.0) if stats is not None else float("nan")


def run_overload_experiment(
    saturation: float = 2.5,
    bounded: bool = True,
    capacity: int = 40,
    shed_policy: str = "drop-lowest",
    premium_rate: float = 8.0,
    duration: float = 30.0,
    drain: float = 90.0,
    service_time: float = 0.1,
    backend_capacity: int = 4,
    seed: int = 0,
) -> OverloadResult:
    """Offer ``saturation × μ`` Poisson traffic to one broker.

    The backend serves ``μ = backend_capacity / service_time`` requests
    per second. Class 1 (premium) is offered at the fixed
    *premium_rate* regardless of *saturation*; classes 2 and 3 split
    the remainder — so across runs the premium demand is identical and
    only the background pressure changes.

    With ``bounded=True`` the broker runs
    :func:`~repro.core.pipeline.overload_protected_stage_plan`:
    priority queueing plus a *capacity*-bounded queue shedding per
    *shed_policy*. With ``bounded=False`` it runs the unprotected
    baseline — the paper's binary forward-or-drop testbed (§III): FCFS
    service order and an unbounded backlog, so every admitted request
    waits behind the entire queue.

    Requests are uncacheable and carry no timeout: every request gets
    exactly one terminal reply (OK, or an immediate shed/busy DROPPED),
    which keeps the goodput accounting exact. *drain* extends the run
    after arrivals stop so the unbounded backlog can empty.
    """
    if saturation <= 0:
        raise ValueError(f"saturation must be > 0: {saturation!r}")
    if premium_rate <= 0:
        raise ValueError(f"premium_rate must be > 0: {premium_rate!r}")
    sim = Simulation(seed=seed)
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")
    backend_node = net.node("backend1")
    server = BackendWebServer(
        sim, backend_node, max_clients=backend_capacity, name="backend1"
    )

    def item_cgi(server, request):
        yield server.sim.timeout(service_time * server.service_time_scale)
        return HttpResponse.text(f"item={request.param('id', '?')}")

    server.add_cgi("/item", item_cgi)

    qos = QoSPolicy(levels=3, threshold=10_000)  # isolate the queue bound
    if bounded:
        stages = overload_protected_stage_plan(capacity, shed_policy=shed_policy)
        priority_queueing = True
    else:
        stages = distributed_stage_plan()
        priority_queueing = False
    broker = ServiceBroker(
        sim,
        web_node,
        service="items",
        adapters=[HttpAdapter(sim, web_node, server.address, name=server.name)],
        qos=qos,
        pool_size=backend_capacity,
        priority_queueing=priority_queueing,
        name="overload-broker",
        stages=stages,
    )
    broker_client = BrokerClient(sim, web_node, {"items": broker.address})

    mu = backend_capacity / service_time
    total = saturation * mu
    background = max(total - premium_rate, 0.0) / 2.0
    offered = {1: premium_rate, 2: background, 3: background}

    samples: Dict[int, List[Tuple[float, str, float, float]]] = {
        level: [] for level in offered
    }

    def make_factory(level: int):
        def one_request(_generator, index):
            issued = sim.now
            reply = yield from broker_client.call(
                "items",
                "get",
                ("/item", {"id": index}),
                qos_level=level,
                cacheable=False,
            )
            samples[level].append(
                (issued, reply.status.value, sim.now, sim.now - issued)
            )

        return one_request

    for level, rate in offered.items():
        if rate <= 0:
            continue
        OpenLoopGenerator(
            sim,
            name=f"overload.qos{level}",
            request_factory=make_factory(level),
            rate=rate,
            rng_stream=f"overload.arrivals.qos{level}",
        ).start(until=duration)

    sim.run(until=duration)
    sim.run(until=duration + drain)  # let the backlog empty

    result = OverloadResult(
        saturation=saturation,
        bounded=bounded,
        capacity=capacity if bounded else None,
        shed_policy=shed_policy if bounded else "none",
        duration=duration,
    )
    result.offered = offered
    for level, entries in samples.items():
        stats = SummaryStats()
        in_window = 0
        counts = {"ok": 0, "degraded": 0, "dropped": 0}
        for _issued, status, completed, elapsed in entries:
            if status == ReplyStatus.OK.value:
                counts["ok"] += 1
                stats.add(elapsed)
                if completed <= duration:
                    in_window += 1
            elif status == ReplyStatus.DEGRADED.value:
                counts["degraded"] += 1
            else:
                counts["dropped"] += 1
        result.issued[level] = len(entries)
        result.ok[level] = counts["ok"]
        result.degraded[level] = counts["degraded"]
        result.dropped[level] = counts["dropped"]
        result.goodput[level] = in_window / duration
        result.latency[level] = stats
    result.shed = broker.queue.shed_count
    result.peak_depth = broker.queue.peak_depth
    result.backpressure_engaged = int(
        broker.metrics.counter("broker.backpressure.engaged")
    )
    return result


# ---------------------------------------------------------------------------
# Chaos soak
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InvariantCheck:
    """One machine-checked invariant verdict from a chaos run."""

    name: str
    passed: bool
    detail: str


@dataclass
class ChaosResult:
    """Everything a chaos soak observed, plus its invariant verdicts."""

    duration: float
    seed: int
    capacity: int
    shed_policy: str
    mtbf: float
    mttr: float
    # Steady (closed-loop) workload outcome counts.
    requests: int = 0
    ok: int = 0
    degraded: int = 0
    dropped: int = 0
    timeouts: int = 0
    errors: int = 0
    #: Requests answered by the replica broker after the first choice
    #: failed (timeout or DROPPED).
    failovers: int = 0
    latency: SummaryStats = field(default_factory=SummaryStats)
    # Spike (open-loop burst) outcome counts.
    spike_requests: int = 0
    spike_ok: int = 0
    spike_degraded: int = 0
    spike_dropped: int = 0
    spike_timeouts: int = 0
    # Lifecycle accounting.
    crashes: int = 0
    restarts: int = 0
    detected: int = 0
    recoveries: int = 0
    failed_fast: int = 0
    replayed: int = 0
    restart_shed: int = 0
    shed_total: int = 0
    link_faults: int = 0
    #: Per-broker deepest backlog ever observed.
    peak_depths: Dict[str, int] = field(default_factory=dict)
    #: Per-broker end-of-run residue (queue depth, outstanding, journal).
    residue: Dict[str, Dict[str, int]] = field(default_factory=dict)
    invariants: List[InvariantCheck] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Answered fraction of the steady workload (OK + DEGRADED)."""
        if not self.requests:
            return 1.0
        return (self.ok + self.degraded) / self.requests

    @property
    def all_invariants_hold(self) -> bool:
        """True when every invariant check passed."""
        return all(check.passed for check in self.invariants)

    def to_summary(self) -> Dict[str, object]:
        """A JSON-safe summary (the CI artifact / ``--summary-out``)."""
        return {
            "duration": self.duration,
            "seed": self.seed,
            "capacity": self.capacity,
            "shed_policy": self.shed_policy,
            "mtbf": self.mtbf,
            "mttr": self.mttr,
            "requests": self.requests,
            "ok": self.ok,
            "degraded": self.degraded,
            "dropped": self.dropped,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "failovers": self.failovers,
            "availability": round(self.availability, 6),
            "latency_p50": round(self.latency.percentile(50.0), 6)
            if self.latency.count
            else None,
            "latency_p99": round(self.latency.percentile(99.0), 6)
            if self.latency.count
            else None,
            "spike_requests": self.spike_requests,
            "spike_ok": self.spike_ok,
            "spike_degraded": self.spike_degraded,
            "spike_dropped": self.spike_dropped,
            "spike_timeouts": self.spike_timeouts,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "detected": self.detected,
            "recoveries": self.recoveries,
            "failed_fast": self.failed_fast,
            "replayed": self.replayed,
            "restart_shed": self.restart_shed,
            "shed_total": self.shed_total,
            "link_faults": self.link_faults,
            "peak_depths": dict(self.peak_depths),
            "residue": {name: dict(info) for name, info in self.residue.items()},
            "invariants": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.invariants
            ],
        }


def _hardened_stages(capacity: int, shed_policy: str) -> list:
    """The fault-tolerant plan with backpressure before the boundary."""
    plan = fault_tolerant_stage_plan(
        retry=RetryPolicy(max_attempts=3, base_delay=0.05, jitter=0.5),
        failure_threshold=3,
        reset_timeout=0.5,
    )
    boundary = next(index for index, stage in enumerate(plan) if stage.boundary)
    plan.insert(boundary, BackpressureStage(capacity, shed_policy=shed_policy))
    return plan


def run_chaos_experiment(
    duration: float = 300.0,
    mtbf: float = 25.0,
    mttr: float = 2.0,
    capacity: int = 48,
    shed_policy: str = "drop-lowest",
    recovery_policy: str = "replay",
    n_clients: int = 10,
    think_time: float = 0.05,
    attempt_timeout: float = 1.0,
    spike_every: float = 90.0,
    spike_duration: float = 8.0,
    spike_rate: float = 100.0,
    blip_mttr: float = 0.08,
    key_pool: int = 512,
    cache_ttl: float = 0.5,
    service_time: float = 0.1,
    backend_capacity: int = 5,
    availability_floor: float = 0.99,
    fast_threshold: float = 0.5,
    seed: int = 0,
    telemetry=None,
) -> ChaosResult:
    """A seeded chaos soak over two replica brokers.

    Topology: two brokers (``chaos-a``/``chaos-b``, services
    ``items-a``/``items-b``) each front the same two backend web
    servers, run the fault-tolerant stage plan hardened with a
    *capacity*-bounded :class:`~repro.core.pipeline.BackpressureStage`,
    and are watched by a :class:`~repro.core.lifecycle.BrokerSupervisor`
    (heartbeats + per-broker :class:`~repro.core.lifecycle.RecoveryJournal`
    with *recovery_policy*).

    Chaos, all on dedicated RNG substreams so runs are reproducible:

    * broker crash/restart cycles — ``Exp(1/mtbf)`` time-to-failure,
      fixed *mttr*, independent schedules per broker (broker B fails
      at ~1.8× A's MTBF so double-failures stay rare but possible);
    * crash *blips* — two extra crashes of broker B healing in
      *blip_mttr* seconds, faster than heartbeat detection, so the
      journal's **replay** recovery path runs (slow crashes are always
      consumed by the supervisor's fail-fast first);
    * link flaps — short :class:`~repro.net.faults.LinkDown` windows
      between the web host and the second backend;
    * load spikes — open-loop class-3 bursts of *spike_rate*/s for
      *spike_duration* seconds every *spike_every* seconds.

    The steady workload is *n_clients* closed-loop clients cycling
    through the three QoS classes over a *key_pool* of cacheable items;
    each request tries one broker (alternating per client) and fails
    over to the replica on timeout or a DROPPED reply.

    After a generous drain the run is scored against four invariants
    (see :class:`InvariantCheck` entries on the result): every request
    answered and all journals/queues/ledgers empty; post-crash
    accounting consistent (restarts match crashes, recovery paths sum);
    queue bound never exceeded; steady-workload availability at or
    above *availability_floor*.
    """
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1: {n_clients!r}")
    sim = Simulation(seed=seed)
    metrics = MetricsRegistry()
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")

    backends: List[BackendWebServer] = []
    for index in range(1, 3):
        node = net.node(f"backend{index}")
        server = BackendWebServer(
            sim, node, max_clients=backend_capacity, name=f"backend{index}"
        )

        def item_cgi(server, request):
            yield server.sim.timeout(service_time * server.service_time_scale)
            return HttpResponse.text(f"item={request.param('id', '?')}")

        server.add_cgi("/item", item_cgi)
        backends.append(server)

    qos = QoSPolicy(
        levels=3,
        threshold=10_000,  # backpressure, not admission, does the shedding
        deadlines={1: 1.0, 2: 1.5, 3: 2.0},
    )
    brokers: Dict[str, ServiceBroker] = {}
    services: List[str] = []
    for index, suffix in enumerate("ab"):
        service = f"items-{suffix}"
        brokers[f"chaos-{suffix}"] = ServiceBroker(
            sim,
            web_node,
            service=service,
            adapters=[
                HttpAdapter(sim, web_node, server.address, name=server.name)
                for server in backends
            ],
            port=7000 + index,
            qos=qos,
            cache=ResultCache(
                capacity=4 * key_pool, ttl=cache_ttl, clock=lambda: sim.now
            ),
            pool_size=backend_capacity,
            dispatchers=backend_capacity * len(backends),
            metrics=metrics,
            name=f"chaos-{suffix}",
            stages=_hardened_stages(capacity, shed_policy),
        )
        services.append(service)

    supervisor = BrokerSupervisor(sim, web_node, metrics=metrics)
    watches = {
        name: supervisor.watch(
            broker,
            journal=RecoveryJournal(sim, policy=recovery_policy, metrics=metrics),
        )
        for name, broker in brokers.items()
    }

    broker_client = BrokerClient(
        sim,
        web_node,
        {broker.service: broker.address for broker in brokers.values()},
    )

    # Chaos schedule: two independent crash cycles plus link flaps.
    plan = FaultPlan.broker_crash_cycle(
        "chaos-a", mtbf=mtbf, mttr=mttr, until=duration,
        rng=sim.rng("chaos.crash.a"),
    )
    for fault in FaultPlan.broker_crash_cycle(
        "chaos-b", mtbf=mtbf * 1.8, mttr=mttr, until=duration,
        rng=sim.rng("chaos.crash.b"),
    ):
        plan.add(fault)
    if blip_mttr > 0:
        # Instant-restart crashes: the broker is back before the
        # supervisor's miss timeout, so restart() itself replays the
        # journaled work instead of the supervisor failing it fast.
        for fraction in (0.35, 0.75):
            plan.add(
                BrokerCrash(
                    target="chaos-b",
                    at=duration * fraction,
                    duration=blip_mttr,
                )
            )
    link_faults = 0
    flap_at = duration * 0.2
    while flap_at < duration:
        plan.add(LinkDown(a="web", b="backend2", at=flap_at, duration=0.5))
        link_faults += 1
        flap_at += duration * 0.3
    injector = FaultInjector(
        sim, plan, network=net, targets=dict(brokers), metrics=metrics
    )
    injector.start()

    # Always-on workload outcome counters. Pure counting with no
    # scheduling or RNG impact, so seeded outputs are unchanged; the
    # telemetry scraper reads these for the chaos SLOs ("workload.done"
    # counts every terminal outcome including spike traffic, which the
    # availability-floor invariant deliberately excludes). The sample
    # lists below stay the source of truth for the result dataclass.
    _ok = ReplyStatus.OK.value
    _degraded = ReplyStatus.DEGRADED.value
    _dropped = ReplyStatus.DROPPED.value

    def count_outcome(status: str, elapsed: Optional[float]) -> None:
        metrics.increment("workload.done")
        if status == _ok:
            metrics.increment("workload.ok")
        elif status == _degraded:
            metrics.increment("workload.degraded")
        elif status == _dropped:
            metrics.increment("workload.dropped")
        elif status == "timeout":
            metrics.increment("workload.timeout")
        else:
            metrics.increment("workload.error")
        if status in (_ok, _degraded):
            metrics.increment("workload.answered")
            if elapsed is not None and elapsed <= fast_threshold:
                metrics.increment("workload.fast")

    # Steady closed-loop workload with one-hop failover.
    samples: List[Tuple[float, str, float, bool]] = []
    key_rng = sim.rng("chaos.keys")
    stagger_rng = sim.rng("chaos.stagger")
    for index in range(n_clients):
        net.node(f"client{index}")  # a distinct host per client
        level = (index % qos.levels) + 1
        order = (
            (services[0], services[1])
            if index % 2 == 0
            else (services[1], services[0])
        )

        def one_request(_client, _iteration, _level=level, _order=order):
            issued = sim.now
            item = key_rng.randrange(key_pool)
            status = "error"
            failed_over = False
            for attempt, service in enumerate(_order):
                try:
                    reply = yield from broker_client.call(
                        service,
                        "get",
                        ("/item", {"id": item}),
                        qos_level=_level,
                        timeout=attempt_timeout,
                    )
                except BrokerTimeout:
                    status = "timeout"
                    continue
                status = reply.status.value
                if reply.status in (ReplyStatus.OK, ReplyStatus.DEGRADED):
                    failed_over = attempt > 0
                    break
            elapsed = sim.now - issued
            samples.append((issued, status, elapsed, failed_over))
            count_outcome(status, elapsed)

        ClosedLoopClient(
            sim,
            name=f"chaos{index}",
            request_factory=one_request,
            think_time=think_time,
            start_delay=stagger_rng.uniform(0.0, 1.0),
        ).start(until=duration)

    # Load spikes: open-loop class-3 bursts, alternating target broker.
    spike_samples: List[str] = []
    spike_rng = sim.rng("chaos.spike.keys")

    def spike_request(_generator, index):
        issued = sim.now
        service = services[index % len(services)]
        item = spike_rng.randrange(key_pool)
        try:
            reply = yield from broker_client.call(
                service,
                "get",
                ("/item", {"id": item}),
                qos_level=qos.levels,
                timeout=attempt_timeout,
            )
        except BrokerTimeout:
            spike_samples.append("timeout")
            count_outcome("timeout", None)
            return
        spike_samples.append(reply.status.value)
        count_outcome(reply.status.value, sim.now - issued)

    def spike_driver():
        spike_at = spike_every / 2.0
        count = 0
        while spike_at < duration:
            yield spike_at - sim.now
            count += 1
            end = min(spike_at + spike_duration, duration)
            sim.trace("chaos", "spike", at=sim.now, until=end, rate=spike_rate)
            OpenLoopGenerator(
                sim,
                name=f"chaos.spike{count}",
                request_factory=spike_request,
                rate=spike_rate,
                rng_stream=f"chaos.spike{count}",
            ).start(until=end)
            spike_at += spike_every

    if spike_rate > 0 and spike_every > 0:
        sim.process(spike_driver(), name="chaos:spikes")

    if telemetry is not None:
        # Purely observational (no RNG, no messages): the soak below is
        # identical with or without the scraper.
        telemetry.attach(sim)
        telemetry.watch_registry(metrics, prefix="workload.")
        telemetry.watch_registry(metrics, prefix="broker.")
        telemetry.watch_registry(metrics, prefix="lifecycle.")
        for broker in brokers.values():
            telemetry.watch_broker(broker)
        telemetry.start(until=duration)

    sim.run(until=duration)
    # Drain: open fault windows heal, restarts replay, replies land.
    sim.run(until=duration + mttr + 30.0)

    result = ChaosResult(
        duration=duration,
        seed=seed,
        capacity=capacity,
        shed_policy=shed_policy,
        mtbf=mtbf,
        mttr=mttr,
    )
    for _issued, status, elapsed, failed_over in samples:
        result.requests += 1
        result.latency.add(elapsed)
        if failed_over:
            result.failovers += 1
        if status == ReplyStatus.OK.value:
            result.ok += 1
        elif status == ReplyStatus.DEGRADED.value:
            result.degraded += 1
        elif status == ReplyStatus.DROPPED.value:
            result.dropped += 1
        elif status == "timeout":
            result.timeouts += 1
        else:
            result.errors += 1
    for status in spike_samples:
        result.spike_requests += 1
        if status == ReplyStatus.OK.value:
            result.spike_ok += 1
        elif status == ReplyStatus.DEGRADED.value:
            result.spike_degraded += 1
        elif status == "timeout":
            result.spike_timeouts += 1
        else:
            result.spike_dropped += 1

    counter = metrics.counter
    result.crashes = int(counter("broker.crashes"))
    result.restarts = int(counter("broker.restarts"))
    result.detected = sum(watch.detected for watch in watches.values())
    result.recoveries = sum(watch.recoveries for watch in watches.values())
    result.failed_fast = int(counter("lifecycle.failed_fast"))
    result.replayed = int(counter("lifecycle.replayed"))
    result.restart_shed = int(counter("lifecycle.restart_shed"))
    result.shed_total = int(counter("broker.shed"))
    result.link_faults = link_faults
    for name, broker in brokers.items():
        result.peak_depths[name] = broker.queue.peak_depth
        journal = broker.journal
        result.residue[name] = {
            "queue_depth": len(broker.queue),
            "outstanding": broker.admission.outstanding,
            "journal_pending": journal.pending_count if journal else 0,
        }

    # -- invariants --------------------------------------------------------
    lost = [
        (name, info)
        for name, info in result.residue.items()
        if info["queue_depth"] or info["outstanding"] or info["journal_pending"]
    ]
    answered = (
        result.ok
        + result.degraded
        + result.dropped
        + result.timeouts
        + result.errors
    )
    result.invariants.append(
        InvariantCheck(
            name="no-lost-request",
            passed=not lost and answered == result.requests,
            detail=(
                f"{result.requests} requests all terminal; residue "
                + (
                    "clean"
                    if not lost
                    else "; ".join(f"{name}: {info}" for name, info in lost)
                )
            ),
        )
    )
    dead = [name for name, broker in brokers.items() if not broker.alive]
    accounting_ok = (
        result.restarts == result.crashes
        and not dead
        and all(watch.up for watch in watches.values())
    )
    result.invariants.append(
        InvariantCheck(
            name="post-crash-consistency",
            passed=accounting_ok,
            detail=(
                f"crashes={result.crashes} restarts={result.restarts} "
                f"failed_fast={result.failed_fast} replayed={result.replayed} "
                f"restart_shed={result.restart_shed}"
                + (f"; still dead: {dead}" if dead else "")
            ),
        )
    )
    over = {
        name: depth
        for name, depth in result.peak_depths.items()
        if depth > capacity
    }
    result.invariants.append(
        InvariantCheck(
            name="queue-bound",
            passed=not over,
            detail=(
                f"peak depths {result.peak_depths} vs capacity {capacity}"
            ),
        )
    )
    result.invariants.append(
        InvariantCheck(
            name="availability-floor",
            passed=result.availability >= availability_floor,
            detail=(
                f"availability {result.availability:.4f} "
                f"(floor {availability_floor:.4f}; "
                f"ok={result.ok} degraded={result.degraded} "
                f"dropped={result.dropped} timeouts={result.timeouts})"
            ),
        )
    )
    return result


# ---------------------------------------------------------------------------
# Shard-leader chaos soak
# ---------------------------------------------------------------------------


@dataclass
class ShardChaosResult(ChaosResult):
    """A :class:`ChaosResult` plus the shard tier's own accounting."""

    shards: int = 0
    replicas: int = 0
    #: Leader crashes the killer process actually landed.
    leader_kills: int = 0
    #: Bully elections run across all shard groups.
    elections: int = 0
    #: ``RouteAdvert`` messages applied at receiving brokers.
    route_adverts: int = 0
    #: ``JournalSync`` messages applied at receiving replicas.
    journal_syncs: int = 0
    #: Reporting-role moves the load listener observed.
    leader_failovers: int = 0
    #: Requests relayed broker→broker by the ShardRouteStage.
    forwards: int = 0

    def to_summary(self) -> Dict[str, object]:
        """The base summary extended with the shard-tier fields."""
        summary = super().to_summary()
        summary.update(
            {
                "shards": self.shards,
                "replicas": self.replicas,
                "leader_kills": self.leader_kills,
                "elections": self.elections,
                "route_adverts": self.route_adverts,
                "journal_syncs": self.journal_syncs,
                "leader_failovers": self.leader_failovers,
                "forwards": self.forwards,
            }
        )
        return summary


def run_shard_chaos_experiment(
    duration: float = 300.0,
    shards: int = 8,
    replicas: int = 2,
    leader_kill_every: float = 25.0,
    mttr: float = 2.0,
    n_clients: int = 10,
    think_time: float = 0.05,
    attempt_timeout: float = 0.75,
    max_tries: int = 3,
    key_pool: int = 512,
    service_time: float = 0.1,
    backend_capacity: int = 5,
    report_interval: float = 0.1,
    availability_floor: float = 0.99,
    seed: int = 0,
) -> ShardChaosResult:
    """A seeded soak that assassinates shard leaders on a fixed cadence.

    Topology: one service (``items``) fronted by *shards* ×
    *replicas* brokers. Each shard owns its own backend web server (its
    partition); every broker runs the distributed plan with a
    :class:`~repro.core.pipeline.ShardRouteStage`, is watched by a
    :class:`~repro.core.lifecycle.BrokerSupervisor` with a
    :class:`~repro.core.lifecycle.RecoveryJournal`, and joins its
    shard's :class:`~repro.core.peering.ShardPeerGroup` (so journal
    transitions replicate intra-shard and elections broadcast
    ``RouteAdvert`` gossip service-wide). Every replica also streams
    leader-only :class:`~repro.core.centralized.ShardLoadReport`
    updates to a :class:`~repro.core.centralized.LoadListener`, so the
    run observes the reporting role failing over with each election.

    The killer process crashes the *current leader* of a rotating
    shard every *leader_kill_every* seconds and restarts the corpse
    after *mttr* — by which time a bully election has promoted the
    next replica, so the returning broker re-takes the shard (a
    takeover election) and the cycle repeats on another shard.

    Clients resolve through the :class:`~repro.core.sharding.ShardDirectory`
    (service addressing) and retry up to *max_tries* times on a
    timeout or a DROPPED reply; each retry re-resolves the leader, so
    surviving an assassination is exactly one retry against the fresh
    replica. Verdicts: no-lost-request, post-crash-consistency,
    availability-floor (as the plain soak) plus leadership-convergence
    — every shard ends the run with a live, routable leader and at
    least one election per landed kill.
    """
    if shards < 1 or replicas < 1:
        raise ValueError(
            f"shards and replicas must be >= 1: {shards!r}x{replicas!r}"
        )
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1: {n_clients!r}")
    sim = Simulation(seed=seed)
    metrics = MetricsRegistry()
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")

    qos = QoSPolicy(
        levels=3,
        threshold=10_000,  # elections, not admission, are under test
        deadlines={1: 1.0, 2: 1.5, 3: 2.0},
    )
    directory = ShardDirectory(metrics=metrics)
    supervisor = BrokerSupervisor(sim, web_node, metrics=metrics)
    from ..core.centralized import LoadListener

    listener = LoadListener(
        sim, web_node, process_time=0.0005, metrics=metrics
    )

    groups: List[ShardGroup] = []
    brokers: Dict[str, ServiceBroker] = {}
    peers: List[ShardPeerGroup] = []
    watches = {}
    next_port = 7201
    for shard in range(shards):
        backend_name = f"shardbackend{shard}"
        backend = BackendWebServer(
            sim,
            net.node(backend_name),
            max_clients=backend_capacity,
            name=backend_name,
        )

        def item_cgi(server, request):
            yield server.sim.timeout(service_time * server.service_time_scale)
            return HttpResponse.text(f"item={request.param('id', '?')}")

        backend.add_cgi("/item", item_cgi)
        group = ShardGroup("items", shard, metrics=metrics)
        peer = ShardPeerGroup(group)
        for replica in range(replicas):
            broker = ServiceBroker(
                sim,
                web_node,
                service="items",
                port=next_port,
                adapters=[
                    HttpAdapter(sim, web_node, backend.address, name=backend_name)
                ],
                qos=qos,
                pool_size=backend_capacity,
                dispatchers=backend_capacity,
                metrics=metrics,
                name=f"shard{shard}r{replica}",
                stages=sharded_stage_plan(directory, shard=shard),
            )
            next_port += 1
            # Supervise first (installs the journal), then join the
            # shard mesh (wires the journal's replication hooks) and
            # the group (elects); the supervisor listener keeps
            # elections in step with heartbeat detections.
            watches[broker.name] = supervisor.watch(
                broker, journal=RecoveryJournal(sim, metrics=metrics)
            )
            peer.join(broker)
            group.add(broker)
            broker.report_load_to(listener.address, interval=report_interval)
        supervisor.add_listener(group.on_supervisor_event)
        groups.append(group)
        peers.append(peer)
        brokers.update((b.name, b) for b in group.members)
    roster = list(brokers.values())
    for peer in peers:
        peer.set_roster(roster)
    directory.register("items", groups, seed=seed)

    broker_client = BrokerClient(sim, web_node, {})
    broker_client.use_directory(directory)

    # The assassin: crash the current leader of a rotating shard.
    kills = {"count": 0}

    def resurrect(victim: ServiceBroker):
        yield mttr
        if not victim.alive:
            victim.restart()

    def leader_killer():
        target = 0
        while True:
            yield leader_kill_every
            if sim.now >= duration:
                return
            group = groups[target % len(groups)]
            target += 1
            victim = group.route()
            if victim is None:
                continue
            kills["count"] += 1
            sim.trace(
                "chaos", "leader-kill",
                shard=group.index, broker=victim.name, kill=kills["count"],
            )
            victim.crash()
            sim.process(resurrect(victim), name=f"resurrect:{victim.name}")

    sim.process(leader_killer(), name="chaos:leader-killer")

    # Steady closed-loop workload through the directory, with retries.
    samples: List[Tuple[float, str, float, bool]] = []
    key_rng = sim.rng("chaos.shard.keys")
    stagger_rng = sim.rng("chaos.shard.stagger")
    for index in range(n_clients):
        net.node(f"client{index}")
        level = (index % qos.levels) + 1

        def one_request(_client, _iteration, _level=level):
            issued = sim.now
            item = key_rng.randrange(key_pool)
            status = "error"
            retried = False
            for attempt in range(max_tries):
                try:
                    reply = yield from broker_client.call(
                        "items",
                        "get",
                        ("/item", {"id": item}),
                        qos_level=_level,
                        cacheable=False,
                        cache_key=f"item{item}",
                        timeout=attempt_timeout,
                    )
                except BrokerTimeout:
                    status = "timeout"
                    retried = attempt + 1 < max_tries
                    continue
                status = reply.status.value
                if reply.status in (ReplyStatus.OK, ReplyStatus.DEGRADED):
                    retried = attempt > 0
                    break
                retried = attempt + 1 < max_tries
            samples.append((issued, status, sim.now - issued, retried))

        ClosedLoopClient(
            sim,
            name=f"shardchaos{index}",
            request_factory=one_request,
            think_time=think_time,
            start_delay=stagger_rng.uniform(0.0, 1.0),
        ).start(until=duration)

    sim.run(until=duration)
    # Drain: the last corpse restarts, retries land, replies settle.
    sim.run(until=duration + mttr + 30.0)

    result = ShardChaosResult(
        duration=duration,
        seed=seed,
        capacity=0,
        shed_policy="none",
        mtbf=leader_kill_every,
        mttr=mttr,
        shards=shards,
        replicas=replicas,
    )
    for _issued, status, elapsed, retried in samples:
        result.requests += 1
        result.latency.add(elapsed)
        if retried:
            result.failovers += 1
        if status == ReplyStatus.OK.value:
            result.ok += 1
        elif status == ReplyStatus.DEGRADED.value:
            result.degraded += 1
        elif status == ReplyStatus.DROPPED.value:
            result.dropped += 1
        elif status == "timeout":
            result.timeouts += 1
        else:
            result.errors += 1

    counter = metrics.counter
    result.leader_kills = kills["count"]
    result.crashes = int(counter("broker.crashes"))
    result.restarts = int(counter("broker.restarts"))
    result.detected = sum(watch.detected for watch in watches.values())
    result.recoveries = sum(watch.recoveries for watch in watches.values())
    result.failed_fast = int(counter("lifecycle.failed_fast"))
    result.replayed = int(counter("lifecycle.replayed"))
    result.restart_shed = int(counter("lifecycle.restart_shed"))
    result.shed_total = int(counter("broker.shed"))
    result.elections = sum(group.elections for group in groups)
    result.route_adverts = int(counter("peering.route_adverts_applied"))
    result.journal_syncs = int(counter("peering.journal_syncs_applied"))
    result.leader_failovers = listener.leader_failovers
    result.forwards = int(counter("broker.shard.forwarded"))
    for name, broker in brokers.items():
        result.peak_depths[name] = broker.queue.peak_depth
        journal = broker.journal
        result.residue[name] = {
            "queue_depth": len(broker.queue),
            "outstanding": broker.admission.outstanding,
            "journal_pending": journal.pending_count if journal else 0,
        }

    # -- invariants --------------------------------------------------------
    lost = [
        (name, info)
        for name, info in result.residue.items()
        if info["queue_depth"] or info["outstanding"] or info["journal_pending"]
    ]
    answered = (
        result.ok
        + result.degraded
        + result.dropped
        + result.timeouts
        + result.errors
    )
    result.invariants.append(
        InvariantCheck(
            name="no-lost-request",
            passed=not lost and answered == result.requests,
            detail=(
                f"{result.requests} requests all terminal; residue "
                + (
                    "clean"
                    if not lost
                    else "; ".join(f"{name}: {info}" for name, info in lost)
                )
            ),
        )
    )
    dead = [name for name, broker in brokers.items() if not broker.alive]
    accounting_ok = (
        result.restarts == result.crashes
        and not dead
        and all(watch.up for watch in watches.values())
    )
    result.invariants.append(
        InvariantCheck(
            name="post-crash-consistency",
            passed=accounting_ok,
            detail=(
                f"crashes={result.crashes} restarts={result.restarts} "
                f"failed_fast={result.failed_fast} replayed={result.replayed}"
                + (f"; still dead: {dead}" if dead else "")
            ),
        )
    )
    leaderless = [
        group.name for group in groups if group.route() is None
    ]
    convergence_ok = (
        not leaderless
        and result.elections >= result.leader_kills
    )
    result.invariants.append(
        InvariantCheck(
            name="leadership-convergence",
            passed=convergence_ok,
            detail=(
                f"kills={result.leader_kills} elections={result.elections} "
                f"adverts={result.route_adverts} "
                f"reporting_failovers={result.leader_failovers}"
                + (f"; leaderless: {leaderless}" if leaderless else "")
            ),
        )
    )
    result.invariants.append(
        InvariantCheck(
            name="availability-floor",
            passed=result.availability >= availability_floor,
            detail=(
                f"availability {result.availability:.4f} "
                f"(floor {availability_floor:.4f}; "
                f"ok={result.ok} degraded={result.degraded} "
                f"dropped={result.dropped} timeouts={result.timeouts}; "
                f"retried={result.failovers})"
            ),
        )
    )
    return result
