"""Workload generators.

* :class:`ClosedLoopClient` — WebStone-style best-effort client: issue a
  request, wait for the reply, immediately (or after a think time) issue
  the next. The paper's Table I depends on this loop structure: clients
  that get fast (low-fidelity) answers issue *more* requests.
* :class:`BurstClient` — ``ab``-style: a fixed number of requests at a
  fixed concurrency, used by the clustering experiment ("40 simultaneous
  requests").
* :class:`OpenLoopGenerator` — Poisson arrivals at a target rate,
  independent of completions (for overload ablations).
* :class:`ModulatedOpenLoopGenerator` — non-homogeneous Poisson
  arrivals whose instantaneous rate follows ``rate_at(t)``, sampled
  exactly by Lewis-Shedler thinning.
* :class:`DiurnalLoadGenerator` — a sinusoidal day/night curve (the
  autoscale experiment's 10× swing).
* :class:`FlashCrowdGenerator` — a steady base rate with sudden
  flash-crowd windows multiplying it.
* :func:`zipf_sampler` — popularity skew for cache experiments.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional

from ..metrics import MetricsRegistry, SummaryStats
from ..sim.core import Process, Simulation
from ..sim.resources import Resource

__all__ = [
    "ClosedLoopClient",
    "BurstClient",
    "OpenLoopGenerator",
    "ModulatedOpenLoopGenerator",
    "DiurnalLoadGenerator",
    "FlashCrowdGenerator",
    "zipf_sampler",
]

#: A request factory: called per iteration, returns a ``yield from``
#: generator that performs one complete request.
RequestFactory = Callable[..., Any]


class ClosedLoopClient:
    """One best-effort client looping request → response → request."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        request_factory: RequestFactory,
        think_time: float = 0.0,
        start_delay: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.request_factory = request_factory
        self.think_time = think_time
        self.start_delay = start_delay
        self.metrics = metrics or MetricsRegistry()
        self.response_times = SummaryStats()
        self.completed = 0
        self.errors = 0
        self._process: Optional[Process] = None
        # Hot-path metric handles: per-client names are fixed, so the
        # f-string + registry lookup happens once, not per request.
        self._errors_counter = self.metrics.handle(f"client.{name}.errors")
        self._response_time = self.metrics.sample_handle(
            f"client.{name}.response_time"
        )

    def start(self, until: Optional[float] = None) -> Process:
        """Begin the loop; stops issuing once *until* (sim time) passes."""
        self._process = self.sim.process(self._run(until), name=f"client:{self.name}")
        return self._process

    def _run(self, until: Optional[float]):
        if self.start_delay:
            yield self.start_delay
        iteration = 0
        sim = self.sim
        while until is None or sim._now < until:
            started = sim._now
            try:
                yield from self.request_factory(self, iteration)
            except Exception:  # noqa: BLE001 - workload keeps going
                self.errors += 1
                self._errors_counter.inc()
            else:
                elapsed = sim._now - started
                self.completed += 1
                self.response_times.add(elapsed)
                self._response_time.add(elapsed)
            iteration += 1
            if self.think_time:
                yield self.think_time

    def __repr__(self) -> str:
        return f"<ClosedLoopClient {self.name} completed={self.completed}>"


class BurstClient:
    """Issue *total* requests at fixed *concurrency*, then stop.

    Mirrors ``ab -n total -c concurrency``: all request slots start at
    once; each slot issues its next request as soon as the previous one
    finishes.
    """

    def __init__(
        self,
        sim: Simulation,
        name: str,
        request_factory: RequestFactory,
        total: int,
        concurrency: int,
    ) -> None:
        if total < 1 or concurrency < 1:
            raise ValueError("total and concurrency must be >= 1")
        self.sim = sim
        self.name = name
        self.request_factory = request_factory
        self.total = total
        self.concurrency = concurrency
        self.response_times = SummaryStats()
        self.errors = 0

    def run(self) -> Process:
        """Start the burst; returns a process that ends when all complete."""
        return self.sim.process(self._run(), name=f"burst:{self.name}")

    def _run(self):
        slots = Resource(self.sim, self.concurrency)
        children = []
        for index in range(self.total):
            children.append(
                self.sim.process(self._one(slots, index), name=f"{self.name}:{index}")
            )
        yield self.sim.all_of(children)
        return self.response_times

    def _one(self, slots: Resource, index: int):
        slot = slots.request()
        yield slot
        started = self.sim.now
        try:
            yield from self.request_factory(self, index)
        except Exception:  # noqa: BLE001 - workload keeps going
            self.errors += 1
        else:
            self.response_times.add(self.sim.now - started)
        finally:
            slots.release(slot)


class OpenLoopGenerator:
    """Poisson arrivals at *rate*/second, each spawning one request."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        request_factory: RequestFactory,
        rate: float,
        rng_stream: Optional[str] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate!r}")
        self.sim = sim
        self.name = name
        self.request_factory = request_factory
        self.rate = rate
        self.rng = sim.rng(rng_stream or f"openloop.{name}")
        self.response_times = SummaryStats()
        self.errors = 0
        self.issued = 0

    def start(self, until: Optional[float] = None) -> Process:
        """Begin generating arrivals until *until* (sim time)."""
        return self.sim.process(self._run(until), name=f"openloop:{self.name}")

    def _run(self, until: Optional[float]):
        while until is None or self.sim.now < until:
            yield self.rng.expovariate(self.rate)
            if until is not None and self.sim.now >= until:
                return
            self.issued += 1
            self.sim.process(self._one(self.issued), name=f"{self.name}:{self.issued}")

    def _one(self, index: int):
        started = self.sim.now
        try:
            yield from self.request_factory(self, index)
        except Exception:  # noqa: BLE001 - workload keeps going
            self.errors += 1
        else:
            self.response_times.add(self.sim.now - started)


class ModulatedOpenLoopGenerator(OpenLoopGenerator):
    """Open-loop arrivals whose rate varies over time: ``rate_at(t)``.

    Samples the non-homogeneous Poisson process *exactly* via
    Lewis-Shedler thinning: candidate arrivals come at the constant
    envelope *peak_rate* and survive with probability
    ``rate_at(t) / peak_rate``. Subclasses override :meth:`rate_at`
    (which must never exceed ``peak_rate``).
    """

    def __init__(
        self,
        sim: Simulation,
        name: str,
        request_factory: RequestFactory,
        peak_rate: float,
        rng_stream: Optional[str] = None,
    ) -> None:
        super().__init__(
            sim, name, request_factory, rate=peak_rate, rng_stream=rng_stream
        )
        self.peak_rate = float(peak_rate)

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at sim time *t* (<= peak_rate)."""
        return self.peak_rate

    def _run(self, until: Optional[float]):
        while until is None or self.sim.now < until:
            yield self.rng.expovariate(self.peak_rate)
            if until is not None and self.sim.now >= until:
                return
            # Thinning: keep the candidate with probability rate/peak.
            if self.rng.random() * self.peak_rate > self.rate_at(self.sim.now):
                continue
            self.issued += 1
            self.sim.process(
                self._one(self.issued), name=f"{self.name}:{self.issued}"
            )


class DiurnalLoadGenerator(ModulatedOpenLoopGenerator):
    """A sinusoidal day/night load curve between *base_rate* and *peak_rate*.

    The rate starts at *base_rate* (phase 0 = midnight), peaks at
    ``period/2``, and returns — one full "day" per *period* simulated
    seconds. ``peak_rate / base_rate`` is the swing the autoscale
    experiment's headline (10×) is measured over.
    """

    def __init__(
        self,
        sim: Simulation,
        name: str,
        request_factory: RequestFactory,
        base_rate: float,
        peak_rate: float,
        period: float,
        phase: float = 0.0,
        rng_stream: Optional[str] = None,
    ) -> None:
        if base_rate <= 0 or peak_rate < base_rate:
            raise ValueError(
                f"need 0 < base_rate <= peak_rate: {base_rate!r}, {peak_rate!r}"
            )
        if period <= 0:
            raise ValueError(f"period must be positive: {period!r}")
        super().__init__(
            sim, name, request_factory, peak_rate, rng_stream=rng_stream
        )
        self.base_rate = float(base_rate)
        self.period = float(period)
        self.phase = float(phase)

    def rate_at(self, t: float) -> float:
        """base + (peak-base) * half-cosine wave over one period."""
        cycle = (t / self.period + self.phase) % 1.0
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * cycle))
        return self.base_rate + (self.peak_rate - self.base_rate) * swing


class FlashCrowdGenerator(ModulatedOpenLoopGenerator):
    """A steady *base_rate* with flash-crowd windows multiplying it.

    *crowds* is a sequence of ``(start, duration, multiplier)`` tuples:
    within a window the rate jumps to ``base_rate * multiplier``
    instantly (the defining feature of a flash crowd is its
    discontinuous onset) and drops back just as sharply when it ends.
    Overlapping windows take the largest multiplier.
    """

    def __init__(
        self,
        sim: Simulation,
        name: str,
        request_factory: RequestFactory,
        base_rate: float,
        crowds,
        rng_stream: Optional[str] = None,
    ) -> None:
        if base_rate <= 0:
            raise ValueError(f"base_rate must be positive: {base_rate!r}")
        self.crowds = []
        worst = 1.0
        for start, duration, multiplier in crowds:
            if duration <= 0 or multiplier < 1.0:
                raise ValueError(
                    f"need duration > 0 and multiplier >= 1: "
                    f"({start!r}, {duration!r}, {multiplier!r})"
                )
            self.crowds.append(
                (float(start), float(duration), float(multiplier))
            )
            worst = max(worst, float(multiplier))
        super().__init__(
            sim,
            name,
            request_factory,
            base_rate * worst,
            rng_stream=rng_stream,
        )
        self.base_rate = float(base_rate)

    def rate_at(self, t: float) -> float:
        """Base rate times the largest multiplier of any active crowd."""
        multiplier = 1.0
        for start, duration, factor in self.crowds:
            if start <= t < start + duration and factor > multiplier:
                multiplier = factor
        return self.base_rate * multiplier


def zipf_sampler(rng, n: int, skew: float = 1.0) -> Callable[[], int]:
    """A sampler of ranks 0..n-1 with Zipf(skew) popularity.

    Rank 0 is the most popular. Uses inverse-CDF over the precomputed
    harmonic weights — exact, fine for the n in the thousands used here.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: {n!r}")
    weights = [1.0 / (rank + 1) ** skew for rank in range(n)]
    total = math.fsum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)

    def sample() -> int:
        u = rng.random()
        # Binary search the CDF.
        low, high = 0, n - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < u:
                low = mid + 1
            else:
                high = mid
        return low

    return sample
