"""A block-mapped filesystem for the file server.

Files are sequences of extents (start block, length). Contiguous layout
models a freshly written file; fragmented layout scatters fixed-size
extents across the disk, which is what makes request ordering matter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ServiceError

__all__ = ["Extent", "FileSystem"]


@dataclass(frozen=True)
class Extent:
    """A run of consecutive blocks belonging to one file."""

    start: int
    length: int


class FileSystem:
    """Named files mapped onto a block device.

    Allocation is first-fit over a simple block cursor; fragmented files
    draw extent positions from the supplied RNG, so layouts are
    deterministic per seed.
    """

    def __init__(self, total_blocks: int = 100_000) -> None:
        if total_blocks < 1:
            raise ValueError(f"total_blocks must be >= 1: {total_blocks!r}")
        self.total_blocks = total_blocks
        self._files: Dict[str, List[Extent]] = {}
        self._cursor = 0

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def __len__(self) -> int:
        return len(self._files)

    def create(
        self,
        name: str,
        blocks: int,
        fragmented: bool = False,
        extent_size: int = 8,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Create *name* spanning *blocks* blocks.

        Contiguous files get one extent at the allocation cursor;
        fragmented files are split into ``extent_size``-block extents
        placed uniformly at random (requires *rng*).
        """
        if name in self._files:
            raise ServiceError(f"file exists: {name!r}")
        if blocks < 1:
            raise ServiceError(f"blocks must be >= 1: {blocks!r}")
        if not fragmented:
            if self._cursor + blocks > self.total_blocks:
                raise ServiceError("filesystem full")
            self._files[name] = [Extent(self._cursor, blocks)]
            self._cursor += blocks
            return
        if rng is None:
            raise ServiceError("fragmented layout requires an rng")
        extents: List[Extent] = []
        remaining = blocks
        while remaining > 0:
            length = min(extent_size, remaining)
            start = rng.randrange(0, self.total_blocks - length)
            extents.append(Extent(start, length))
            remaining -= length
        self._files[name] = extents

    def extents_of(self, name: str) -> List[Extent]:
        """The extents of *name*; raises :class:`ServiceError` if missing."""
        extents = self._files.get(name)
        if extents is None:
            raise ServiceError(f"no such file: {name!r}")
        return list(extents)

    def size_of(self, name: str) -> int:
        """File size in blocks."""
        return sum(extent.length for extent in self.extents_of(name))

    def first_block(self, name: str) -> int:
        """The file's first block (used for elevator ordering)."""
        return self.extents_of(name)[0].start

    def listing(self) -> List[str]:
        """All file names, sorted."""
        return sorted(self._files)
