"""File service: disk model, filesystem, server, client."""

from .client import FileClient, FileConnection
from .disk import DiskModel
from .filesystem import Extent, FileSystem
from .server import FileServer

__all__ = [
    "FileClient",
    "FileConnection",
    "DiskModel",
    "Extent",
    "FileSystem",
    "FileServer",
]
