"""The networked file server.

Protocol over a stream connection:

* client → ``("mount", client_name)`` / server → ``("mounted",)``
* client → ``("read", name)`` →
  ``("ok", {"name", "blocks", "content", "service_time"})`` or ``("error", msg)``
* client → ``("read_batch", (names...))`` →
  ``("ok", [per-name result-or-error ...])`` in request order
* client → ``("stat", name)`` → ``("ok", blocks)``
* client → ``("list",)`` → ``("ok", [names])``
* client → ``("bye",)``

All reads funnel through a single disk arm. The request scheduler is the
paper's §II example of a backend-specific QoS notion:

* ``"fcfs"`` — serve reads in arrival order (maximal seeking under
  concurrent random reads);
* ``"elevator"`` — C-SCAN: serve the pending read whose first block is
  the nearest at-or-above the head, wrapping at the end — "cluster
  requests whose accesses are in adjacent disk layout".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import ConnectionClosed, ServiceError
from ..metrics import MetricsRegistry
from ..net.network import Node
from ..net.transport import StreamConnection
from ..sim.core import Event, Simulation
from ..sim.resources import Store
from .disk import DiskModel
from .filesystem import FileSystem

__all__ = ["FileServer"]

#: Default file server port (NFS's).
DEFAULT_PORT = 2049

SCHEDULERS = ("fcfs", "elevator")


class _PendingRead:
    """One read waiting for the disk arm."""

    __slots__ = ("name", "first_block", "done")

    def __init__(self, name: str, first_block: int, done: Event) -> None:
        self.name = name
        self.first_block = first_block
        self.done = done


class FileServer:
    """Serves a :class:`FileSystem` from one :class:`DiskModel` arm."""

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        filesystem: Optional[FileSystem] = None,
        disk: Optional[DiskModel] = None,
        port: int = DEFAULT_PORT,
        scheduler: str = "elevator",
        mount_time: float = 0.001,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if scheduler not in SCHEDULERS:
            raise ServiceError(f"scheduler must be one of {SCHEDULERS}: {scheduler!r}")
        self.sim = sim
        self.node = node
        self.filesystem = filesystem if filesystem is not None else FileSystem()
        self.disk = disk if disk is not None else DiskModel(
            total_blocks=self.filesystem.total_blocks
        )
        self.scheduler = scheduler
        self.mount_time = mount_time
        self.metrics = metrics or MetricsRegistry()
        self.listener = node.listen_stream(port)
        self.address = node.address(port)
        self._pending: List[_PendingRead] = []
        self._work = Store(sim)
        sim.process(self._accept_loop(), name=f"file:{node.name}")
        sim.process(self._arm_loop(), name=f"file-arm:{node.name}")

    # -- disk arm ---------------------------------------------------------

    @property
    def queued_reads(self) -> int:
        return len(self._pending)

    def _pick_next(self) -> _PendingRead:
        if self.scheduler == "fcfs":
            return self._pending.pop(0)
        # C-SCAN elevator: nearest pending first-block at or above the
        # head; wrap to the lowest block when none remain ahead.
        head = self.disk.head
        ahead = [p for p in self._pending if p.first_block >= head]
        pool = ahead if ahead else self._pending
        chosen = min(pool, key=lambda p: p.first_block)
        self._pending.remove(chosen)
        return chosen

    def _arm_loop(self):
        while True:
            yield self._work.get()
            item = self._pick_next()
            try:
                extents = self.filesystem.extents_of(item.name)
            except ServiceError as exc:
                item.done.fail(exc)
                continue
            total_time = 0.0
            for extent in extents:
                service = self.disk.access(extent.start, extent.length)
                total_time += service
                yield service
            self.metrics.increment("file.reads")
            self.metrics.observe("file.read_time", total_time)
            item.done.succeed(
                {
                    "name": item.name,
                    "blocks": self.filesystem.size_of(item.name),
                    "content": f"<{item.name}>",
                    "service_time": total_time,
                }
            )

    def _enqueue_read(self, name: str) -> Event:
        done = Event(self.sim)
        try:
            first_block = self.filesystem.first_block(name)
        except ServiceError as exc:
            # Pre-defused: in a batch, the event may be processed before
            # the session generator gets around to yielding it.
            done.fail(exc)
            done.defused = True
            return done
        self._pending.append(_PendingRead(name, first_block, done))
        self._work.put(None)
        return done

    # -- sessions -----------------------------------------------------------

    def _accept_loop(self):
        while True:
            try:
                connection = yield self.listener.accept()
            except ConnectionClosed:
                return
            self.metrics.increment("file.connections")
            self.sim.process(self._session(connection))

    def _session(self, connection: StreamConnection):
        mounted = False
        while True:
            try:
                envelope = yield connection.recv()
            except ConnectionClosed:
                return
            message = envelope.payload
            if not isinstance(message, tuple) or not message:
                connection.send(("error", f"malformed message: {message!r}"))
                continue
            command = message[0]
            if command == "mount":
                yield self.mount_time
                mounted = True
                connection.send(("mounted",))
                continue
            if command == "bye":
                connection.close()
                return
            if not mounted:
                connection.send(("error", "mount first"))
                continue
            reply = yield from self._serve(message)
            if not connection.closed:
                connection.send(reply)

    def _serve(self, message: tuple):
        command = message[0]
        try:
            if command == "read":
                result = yield self._enqueue_read(message[1])
                return ("ok", result)
            if command == "read_batch":
                results: List[Any] = []
                events = [self._enqueue_read(name) for name in message[1]]
                for event in events:
                    try:
                        result = yield event
                    except ServiceError as exc:
                        result = {"error": str(exc)}
                    results.append(result)
                self.metrics.increment("file.batches")
                return ("ok", results)
            if command == "stat":
                return ("ok", self.filesystem.size_of(message[1]))
            if command == "list":
                return ("ok", self.filesystem.listing())
            return ("error", f"unknown command: {command!r}")
        except ServiceError as exc:
            self.metrics.increment("file.errors")
            return ("error", str(exc))

    def close(self) -> None:
        """Stop accepting new connections."""
        self.listener.close()

    def __repr__(self) -> str:
        return (
            f"<FileServer {self.address} scheduler={self.scheduler} "
            f"queued={self.queued_reads}>"
        )
