"""Disk model: seek-distance-dependent access times.

The paper's §II observes that backend QoS notions are heterogeneous:
"the file servers may cluster requests whose accesses are in adjacent
disk layout". That only matters if seeks cost something, so the disk
model charges

* a fixed per-operation overhead (controller + rotational latency),
* a seek time proportional to the head's travel distance in blocks,
* a transfer time per block read.

The head position is stateful: serving requests in block order is
genuinely cheaper than serving them FCFS, which is what the elevator
scheduler (and the broker's batch clustering) exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiskModel"]


@dataclass
class DiskModel:
    """One disk arm with a stateful head position.

    Defaults approximate a 2003-era 7200 rpm drive: ~4 ms rotational +
    controller overhead, up to ~9 ms full-stroke seek, ~25 MB/s
    sustained transfer with 4 KiB blocks (~0.16 ms/block).
    """

    total_blocks: int = 100_000
    per_operation: float = 0.004
    full_seek: float = 0.009
    per_block_transfer: float = 0.00016

    def __post_init__(self) -> None:
        if self.total_blocks < 1:
            raise ValueError(f"total_blocks must be >= 1: {self.total_blocks!r}")
        if min(self.per_operation, self.full_seek, self.per_block_transfer) < 0:
            raise ValueError("disk time constants must be >= 0")
        self.head = 0
        self.seeks = 0
        self.total_seek_distance = 0
        self.blocks_read = 0

    def seek_time(self, target: int) -> float:
        """Time to move the head to *target* (without moving it)."""
        distance = abs(target - self.head)
        return self.full_seek * distance / self.total_blocks

    def access(self, start_block: int, block_count: int) -> float:
        """Account a read of *block_count* blocks at *start_block*.

        Returns the service time and moves the head to the end of the
        extent. Sequential blocks within the extent transfer without
        additional seeks.
        """
        if not 0 <= start_block < self.total_blocks:
            raise ValueError(f"block out of range: {start_block!r}")
        if block_count < 1:
            raise ValueError(f"block_count must be >= 1: {block_count!r}")
        seek = self.seek_time(start_block)
        distance = abs(start_block - self.head)
        if distance:
            self.seeks += 1
            self.total_seek_distance += distance
        self.head = min(start_block + block_count - 1, self.total_blocks - 1)
        self.blocks_read += block_count
        return self.per_operation + seek + block_count * self.per_block_transfer

    def __repr__(self) -> str:
        return (
            f"<DiskModel head={self.head} seeks={self.seeks} "
            f"travel={self.total_seek_distance}>"
        )
