"""Client-side file access (the file API of the baseline model)."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..errors import ProtocolError, ServiceError
from ..net.address import Address
from ..net.network import Node
from ..net.transport import StreamConnection
from ..sim.core import Simulation

__all__ = ["FileClient", "FileConnection"]


class FileConnection:
    """An established (mounted) connection to a file server."""

    def __init__(self, sim: Simulation, stream: StreamConnection) -> None:
        self.sim = sim
        self._stream = stream

    @property
    def closed(self) -> bool:
        return self._stream.closed

    def _round_trip(self, message: tuple):
        self._stream.send(message)
        envelope = yield self._stream.recv()
        reply = envelope.payload
        if reply and reply[0] == "error":
            raise ServiceError(reply[1])
        if not reply or reply[0] not in ("ok", "mounted"):
            raise ProtocolError(f"unexpected reply: {reply!r}")
        return reply

    def read(self, name: str):
        """Read one file; returns its result dict."""
        reply = yield from self._round_trip(("read", name))
        return dict(reply[1])

    def read_batch(self, names: Sequence[str]):
        """Read several files in one exchange; results in request order."""
        reply = yield from self._round_trip(("read_batch", tuple(names)))
        return list(reply[1])

    def stat(self, name: str):
        """File size in blocks."""
        reply = yield from self._round_trip(("stat", name))
        return reply[1]

    def list(self):
        """All file names on the server."""
        reply = yield from self._round_trip(("list",))
        return list(reply[1])

    def bye(self):
        """Orderly shutdown; a ``yield from`` generator."""
        if not self._stream.closed:
            self._stream.send(("bye",))
            self._stream.close()
        return
        yield  # pragma: no cover - makes this a generator


class FileClient:
    """Factory for :class:`FileConnection`."""

    @staticmethod
    def connect(sim: Simulation, node: Node, address: Address, name: str = ""):
        """Connect and mount; ``yield from`` this generator."""
        stream = yield from node.connect_stream(address)
        stream.send(("mount", name or node.name))
        envelope = yield stream.recv()
        reply = envelope.payload
        if not (isinstance(reply, tuple) and reply and reply[0] == "mounted"):
            stream.close()
            raise ProtocolError(f"mount failed: {reply!r}")
        return FileConnection(sim, stream)
