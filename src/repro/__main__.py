"""``python -m repro`` — run the experiment CLI."""

import sys

from .cli import main

sys.exit(main())
