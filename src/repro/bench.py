"""Hot-path performance benchmarks and the regression harness.

Five benchmarks, exposed through ``python -m repro bench`` and selected
with ``--suite``:

* ``kernel`` — a pure event-kernel micro-benchmark: many concurrent
  processes each yielding a long chain of timeouts, measured in
  simulator events per wall-clock second. The primary number uses the
  kernel-native float-yield idiom (``yield 0.001``, see DESIGN.md §14);
  ``timeout_events_per_sec`` tracks the classic
  ``yield sim.timeout(...)`` spelling. Exercises the batched heap loop,
  the :class:`~repro.sim.core.Timeout` pool, and process resumption
  with no networking or broker code at all.
* ``pipeline`` — a small broker scenario (closed-loop clients against
  the distributed stage plan) measured in completed requests per
  wall-clock second. Exercises the full ingress/dispatch pipeline, the
  net layer, and the metrics registry.
* ``macro`` — the §V.B QoS testbed at full size
  (``run_qos_experiment(60, mode="broker", duration=120.0)``),
  repeated several times; reports requests per wall-clock second plus
  the p50/p99 of the per-repetition wall times.
* ``parallel`` — the sharded §V.B testbed under
  :class:`~repro.sim.parallel.ParallelSimulation`, swept over worker
  counts; reports per-point wall times and the speedup relative to
  ``workers=1``. Scaling is bounded by the cores actually available
  (the result records ``cores``); on a single-core host the sweep
  measures synchronization overhead, not speedup.
* ``telemetry`` — the macro scenario run back-to-back with the
  :class:`~repro.obs.telemetry.TelemetryScraper` disabled and enabled;
  reports the fractional wall-time overhead of in-flight scraping
  (gated under 2% by ``benchmarks/perf/test_perf_regression.py``).

Results are written as JSON (``BENCH_pipeline.json``, or
``BENCH_parallel.json`` for the parallel-only suite) and compared
against a committed baseline (``benchmarks/perf/baseline.json``): a
throughput drop beyond the allowed regression fraction raises
:class:`BenchRegression`, which the CLI turns into a non-zero exit
code. Throughput numbers are machine-dependent — the committed baseline
tracks relative regressions in CI, not absolute performance.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .sim.core import Simulation
from .sim.parallel import available_workers
from .workload.scenarios import run_qos_experiment, run_sharded_qos_experiment

__all__ = [
    "BenchRegression",
    "bench_kernel",
    "bench_pipeline",
    "bench_macro",
    "bench_parallel",
    "bench_telemetry",
    "bench_autoscale",
    "run_suite",
    "compare_to_baseline",
    "render_report",
    "DEFAULT_BASELINE",
    "DEFAULT_PROFILE_OUT",
    "SUITES",
]

#: Seed shared by every benchmark run (results are fully deterministic).
SEED = 2026

#: Default location of the committed baseline, relative to the repo root.
DEFAULT_BASELINE = Path("benchmarks") / "perf" / "baseline.json"

#: Default file the ``--profile`` pstats dump is written to.
DEFAULT_PROFILE_OUT = "BENCH_profile.pstats"

#: ``--suite`` names -> benchmarks run. ``default`` is the historical
#: trio; ``parallel`` is split out because it forks worker processes.
SUITES: Dict[str, Sequence[str]] = {
    "default": ("kernel", "pipeline", "macro"),
    "kernel": ("kernel",),
    "pipeline": ("pipeline",),
    "macro": ("macro",),
    "parallel": ("parallel",),
    "telemetry": ("telemetry",),
    "autoscale": ("autoscale",),
    "all": (
        "kernel", "pipeline", "macro", "parallel", "telemetry", "autoscale",
    ),
}

#: Throughput keys checked against the baseline, per benchmark.
#: Benchmarks absent from the result document are skipped; benchmarks
#: present in the results but absent from the baseline section are
#: reported as uncompared rather than failing.
_COMPARED = (
    ("kernel", "events_per_sec"),
    ("pipeline", "requests_per_sec"),
    ("macro", "requests_per_sec"),
    ("parallel", "pages_per_sec_w1"),
)


class BenchRegression(RuntimeError):
    """Raised when a benchmark regresses beyond the allowed fraction.

    Carries the rendered report so the CLI can print the full results
    before exiting non-zero.
    """

    def __init__(self, message: str, report: str) -> None:
        super().__init__(message)
        self.report = report


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a small, non-empty sample."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def bench_kernel(events: int = 500_000, processes: int = 100) -> Dict[str, Any]:
    """Measure raw kernel throughput in events per wall-clock second.

    Runs the same timer-chain workload twice: once with the
    kernel-native float-yield idiom (the primary ``events_per_sec``)
    and once with explicit :meth:`~repro.sim.core.Simulation.timeout`
    events (``timeout_events_per_sec``), so both hot paths stay on the
    regression radar.
    """
    per_process = events // processes
    total = per_process * processes

    def measure(float_idiom: bool) -> float:
        sim = Simulation(seed=SEED)

        def float_chain(step: float):
            for _ in range(per_process):
                yield step

        def timeout_chain(step: float):
            timeout = sim.timeout
            for _ in range(per_process):
                yield timeout(step)

        chain = float_chain if float_idiom else timeout_chain
        for index in range(processes):
            sim.process(chain(0.001 * (index + 1)), name=f"bench{index}")
        started = time.perf_counter()
        sim.run()
        return time.perf_counter() - started

    wall = measure(float_idiom=True)
    timeout_wall = measure(float_idiom=False)
    return {
        "events": total,
        "wall_s": wall,
        "events_per_sec": total / wall,
        "timeout_wall_s": timeout_wall,
        "timeout_events_per_sec": total / timeout_wall,
    }


def bench_pipeline(
    duration: float = 120.0, clients: int = 30, repeats: int = 2
) -> Dict[str, Any]:
    """Measure full-pipeline throughput on a mid-size broker scenario."""
    walls: List[float] = []
    requests = 0
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_qos_experiment(
            clients, mode="broker", duration=duration, seed=SEED
        )
        walls.append(time.perf_counter() - started)
        requests = sum(result.completions.values())
    wall = min(walls)
    return {
        "clients": clients,
        "duration_virtual_s": duration,
        "repeats": repeats,
        "requests": requests,
        "wall_s": wall,
        "requests_per_sec": requests / wall,
    }


def bench_macro(
    duration: float = 120.0, clients: int = 60, repeats: int = 3
) -> Dict[str, Any]:
    """Measure the §V.B macro scenario, repeated for stable wall times."""
    walls: List[float] = []
    requests = 0
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_qos_experiment(
            clients, mode="broker", duration=duration, seed=SEED
        )
        walls.append(time.perf_counter() - started)
        requests = sum(result.completions.values())
    best = min(walls)
    return {
        "clients": clients,
        "duration_virtual_s": duration,
        "repeats": repeats,
        "requests": requests,
        "walls_s": walls,
        "wall_best_s": best,
        "wall_p50_s": _percentile(walls, 0.50),
        "wall_p99_s": _percentile(walls, 0.99),
        "requests_per_sec": requests / best,
    }


def bench_parallel(
    clients: int = 48,
    shards: int = 16,
    duration: float = 60.0,
    workers_list: Sequence[int] = (1, 2, 4, 8),
    repeats: int = 2,
) -> Dict[str, Any]:
    """Sweep the sharded §V.B testbed over worker counts.

    The ``workers=1`` point is the exact serial code path (the golden
    baseline users run by default); every ``workers>=2`` point runs
    the per-shard partitioned topology on a process pool. Wall times
    are best-of-*repeats*; ``speedup_vs_w1`` is relative to the
    ``workers=1`` point of the same invocation — i.e. the speedup a
    caller actually gets over the serial experiment.
    """
    points: List[Dict[str, Any]] = []
    pages = 0
    for workers in workers_list:
        walls: List[float] = []
        for _ in range(repeats):
            started = time.perf_counter()
            result = run_sharded_qos_experiment(
                clients,
                shards=shards,
                replicas=1,
                duration=duration,
                seed=SEED,
                workers=workers,
            )
            walls.append(time.perf_counter() - started)
            pages = sum(result.completions.values())
        points.append(
            {"workers": workers, "wall_s": min(walls), "pages": pages}
        )
    wall_w1 = points[0]["wall_s"]
    for point in points:
        point["speedup_vs_w1"] = wall_w1 / point["wall_s"]
    return {
        "clients": clients,
        "shards": shards,
        "duration_virtual_s": duration,
        "repeats": repeats,
        "cores": available_workers(),
        "points": points,
        "wall_w1_s": wall_w1,
        "pages_per_sec_w1": points[0]["pages"] / wall_w1,
        "best_speedup": max(p["speedup_vs_w1"] for p in points),
    }


def bench_telemetry(
    duration: float = 120.0,
    clients: int = 60,
    repeats: int = 3,
    interval: float = 1.0,
) -> Dict[str, Any]:
    """Measure the scraper's overhead on the §V.B macro scenario.

    Runs the macro twice per repetition — telemetry disabled, then with a
    :class:`~repro.obs.telemetry.TelemetryScraper` watching every
    registry and broker at *interval* — with the same
    :class:`~repro.obs.spans.TraceCollector` configuration in both arms,
    so the wall-time delta isolates the scrape loop and windowed
    percentiles rather than histogram feeding.

    Two overhead numbers come back:

    * ``overhead_frac`` — ``max(0, wall_on - wall_off) / wall_off`` on
      best-of-*repeats* walls. Honest but noisy: macro wall times jitter
      several percent run-to-run, more than the true overhead.
    * ``scrape_frac`` — every ``scrape()`` call wrapped in
      ``perf_counter``, summed, divided by that run's wall; min over
      repeats. This measures the scraper's wall share directly instead
      of differencing two noisy totals, so it is the number the perf
      gate holds under 2% (see ``benchmarks/perf/test_perf_regression.py``).
    """
    from .obs import TelemetryScraper, TraceCollector

    class TimedScraper(TelemetryScraper):
        scrape_wall = 0.0

        def scrape(self):
            started = time.perf_counter()
            record = super().scrape()
            self.scrape_wall += time.perf_counter() - started
            return record

    def measure(with_telemetry: bool):
        obs = TraceCollector(sample=1000, limit=64)
        telemetry = TimedScraper(interval=interval) if with_telemetry else None
        started = time.perf_counter()
        run_qos_experiment(
            clients, mode="broker", duration=duration, seed=SEED,
            obs=obs, telemetry=telemetry,
        )
        return time.perf_counter() - started, telemetry

    base_walls: List[float] = []
    scraped_walls: List[float] = []
    scrape_fracs: List[float] = []
    scrapes = 0
    for _ in range(repeats):
        wall, _none = measure(with_telemetry=False)
        base_walls.append(wall)
        wall, scraper = measure(with_telemetry=True)
        scraped_walls.append(wall)
        scrape_fracs.append(scraper.scrape_wall / wall)
        scrapes = scraper.scrapes
    base = min(base_walls)
    scraped = min(scraped_walls)
    return {
        "clients": clients,
        "duration_virtual_s": duration,
        "repeats": repeats,
        "interval_s": interval,
        "scrapes": scrapes,
        "wall_base_s": base,
        "wall_telemetry_s": scraped,
        "overhead_frac": max(0.0, scraped - base) / base,
        "scrape_frac": min(scrape_fracs),
    }


def bench_autoscale(
    duration: float = 240.0,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Time the elastic-pool headline experiment end to end.

    The autoscale experiment is the heaviest composed scenario in the
    repo — diurnal generators, an elastic broker pool, the telemetry
    scraper, the SLO engine, and the drain protocol all at once — so
    its wall time is a good canary for cross-subsystem slowdowns that
    the isolated kernel/pipeline benchmarks miss. Reports best-of-
    *repeats* wall and requests per wall-clock second, and carries the
    invariant verdict so a perf run that silently breaks correctness
    is visible in the results document.
    """
    from .workload.chaos import run_autoscale_experiment

    walls: List[float] = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_autoscale_experiment(duration=duration, seed=SEED)
        walls.append(time.perf_counter() - started)
    best = min(walls)
    return {
        "duration_virtual_s": duration,
        "repeats": repeats,
        "requests": result.requests,
        "scale_events": result.scale_outs + result.scale_ins,
        "drains_completed": result.drains_completed,
        "wall_best_s": best,
        "wall_p50_s": _percentile(walls, 0.50),
        "requests_per_sec": result.requests / best,
        "invariants_hold": result.all_invariants_hold,
    }


def run_suite(quick: bool = False, suite: str = "default") -> Dict[str, Any]:
    """Run the benchmarks named by *suite*; return the result document.

    ``quick`` shrinks every benchmark (~3 s total instead of ~20 s);
    quick and full results are never compared to each other — the
    baseline file keeps one section per mode.
    """
    try:
        benches = SUITES[suite]
    except KeyError:
        raise ValueError(
            f"unknown suite {suite!r} (choose from {sorted(SUITES)})"
        ) from None
    results: Dict[str, Any] = {
        "schema": 2,
        "mode": "quick" if quick else "full",
        "suite": suite,
        "seed": SEED,
    }
    if quick:
        # Walls below ~0.2 s are startup-jitter dominated, so even the
        # quick points stay big enough to give a stable throughput.
        runners = {
            "kernel": lambda: bench_kernel(events=100_000, processes=50),
            "pipeline": lambda: bench_pipeline(
                duration=120.0, clients=30, repeats=2
            ),
            "macro": lambda: bench_macro(duration=20.0, repeats=2),
            # Kept big enough that the workers=1 wall clears startup
            # jitter; the gated pages_per_sec_w1 needs a stable wall.
            "parallel": lambda: bench_parallel(
                clients=24,
                shards=4,
                duration=60.0,
                workers_list=(1, 2),
                repeats=1,
            ),
            "telemetry": lambda: bench_telemetry(duration=20.0, repeats=2),
            "autoscale": lambda: bench_autoscale(duration=120.0, repeats=2),
        }
    else:
        runners = {
            "kernel": bench_kernel,
            "pipeline": bench_pipeline,
            "macro": bench_macro,
            "parallel": bench_parallel,
            "telemetry": bench_telemetry,
            "autoscale": bench_autoscale,
        }
    for bench in benches:
        results[bench] = runners[bench]()
    return results


def profile_macro(
    out: str = DEFAULT_PROFILE_OUT, top: int = 10
) -> str:
    """Run one macro repetition under cProfile.

    The full stats are dumped to *out* in the binary ``pstats`` format
    (load with ``python -m pstats`` or ``snakeviz``); the returned
    string is only a short top-*top* cumulative-time summary for the
    report, so the stats no longer flood stdout.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    run_qos_experiment(60, mode="broker", duration=120.0, seed=SEED)
    profiler.disable()
    profiler.dump_stats(out)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return (
        f"cProfile stats written to {out} "
        f"(load with: python -m pstats {out})\n" + buffer.getvalue()
    )


def compare_to_baseline(
    results: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.30,
) -> List[str]:
    """Compare *results* to the matching baseline section.

    Returns one human-readable line per compared metric; raises
    :class:`ValueError` when the baseline has no section for this mode.
    Benchmarks the suite did not run are skipped; benchmarks missing
    from the baseline section are reported but not failed. Lines for
    metrics that regressed beyond *max_regression* start with
    ``REGRESSION``.
    """
    section = baseline.get(results["mode"])
    if section is None:
        raise ValueError(
            f"baseline has no {results['mode']!r} section "
            f"(sections: {sorted(baseline)})"
        )
    lines = []
    for bench, key in _COMPARED:
        if bench not in results:
            continue
        current = results[bench][key]
        if bench not in section:
            lines.append(
                f"{'no-base':>10}  {bench}.{key}: {current:,.0f} "
                f"(baseline has no {bench!r} entry; not compared)"
            )
            continue
        reference = section[bench][key]
        floor = reference * (1.0 - max_regression)
        ratio = current / reference if reference else float("inf")
        status = "ok" if current >= floor else "REGRESSION"
        lines.append(
            f"{status:>10}  {bench}.{key}: {current:,.0f} "
            f"vs baseline {reference:,.0f} ({ratio:.2f}x, "
            f"floor {floor:,.0f})"
        )
    return lines


def render_report(results: Dict[str, Any]) -> str:
    """Render the result document as an aligned text summary."""
    lines = [
        f"bench ({results['mode']} mode, suite "
        f"{results.get('suite', 'default')}, seed {results['seed']})"
    ]
    kernel = results.get("kernel")
    if kernel is not None:
        lines.append(
            f"  kernel:   {kernel['events_per_sec']:>12,.0f} events/s "
            f"({kernel['events']:,} events in {kernel['wall_s']:.3f}s; "
            f"timeout idiom {kernel['timeout_events_per_sec']:,.0f}/s)"
        )
    pipeline = results.get("pipeline")
    if pipeline is not None:
        lines.append(
            f"  pipeline: {pipeline['requests_per_sec']:>12,.0f} requests/s "
            f"({pipeline['requests']:,} requests in {pipeline['wall_s']:.3f}s)"
        )
    macro = results.get("macro")
    if macro is not None:
        lines.append(
            f"  macro:    {macro['requests_per_sec']:>12,.0f} requests/s "
            f"({macro['requests']:,} requests, best of {macro['repeats']} "
            f"wall {macro['wall_best_s']:.3f}s, "
            f"p50 {macro['wall_p50_s']:.3f}s, p99 {macro['wall_p99_s']:.3f}s)"
        )
    telemetry = results.get("telemetry")
    if telemetry is not None:
        lines.append(
            f"  telemetry: {telemetry['scrape_frac']:.2%} scrape wall share "
            f"(differenced {telemetry['overhead_frac']:.2%}; "
            f"base {telemetry['wall_base_s']:.3f}s vs "
            f"scraped {telemetry['wall_telemetry_s']:.3f}s, "
            f"{telemetry['scrapes']} scrapes @ {telemetry['interval_s']:g}s)"
        )
    autoscale = results.get("autoscale")
    if autoscale is not None:
        verdict = "hold" if autoscale["invariants_hold"] else "VIOLATED"
        lines.append(
            f"  autoscale: {autoscale['requests_per_sec']:>11,.0f} requests/s "
            f"({autoscale['requests']:,} requests, "
            f"{autoscale['scale_events']} scale events, "
            f"{autoscale['drains_completed']} drains, best of "
            f"{autoscale['repeats']} wall {autoscale['wall_best_s']:.3f}s; "
            f"invariants {verdict})"
        )
    parallel = results.get("parallel")
    if parallel is not None:
        lines.append(
            f"  parallel: {parallel['shards']} shards, "
            f"{parallel['clients']} clients, {parallel['cores']} core(s):"
        )
        for point in parallel["points"]:
            lines.append(
                f"    workers={point['workers']}: "
                f"wall {point['wall_s']:.3f}s "
                f"({point['speedup_vs_w1']:.2f}x vs workers=1, "
                f"{point['pages']:,} pages)"
            )
    return "\n".join(lines)


def run_bench_command(
    quick: bool = False,
    profile: bool = False,
    out: Optional[str] = None,
    baseline_path: Optional[str] = None,
    max_regression: float = 0.30,
    suite: str = "default",
    profile_out: str = DEFAULT_PROFILE_OUT,
) -> str:
    """The ``repro bench`` implementation; returns the printed report.

    ``out=None`` picks ``BENCH_parallel.json`` for the parallel-only
    suite and ``BENCH_pipeline.json`` otherwise; pass ``""`` to skip
    writing. Raises :class:`BenchRegression` when a compared throughput
    falls more than *max_regression* below the baseline.
    """
    results = run_suite(quick=quick, suite=suite)
    if out is None:
        out = (
            "BENCH_parallel.json" if suite == "parallel"
            else "BENCH_pipeline.json"
        )
    parts = [render_report(results)]
    if out:
        Path(out).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        parts.append(f"results written to {out}")
    path = Path(baseline_path) if baseline_path else DEFAULT_BASELINE
    if path.exists():
        baseline = json.loads(path.read_text(encoding="utf-8"))
        lines = compare_to_baseline(
            results, baseline, max_regression=max_regression
        )
        parts.append(f"baseline {path} (max regression {max_regression:.0%}):")
        parts.extend(f"  {line}" for line in lines)
        if any(line.startswith("REGRESSION") for line in lines):
            report = "\n".join(parts)
            raise BenchRegression(
                "benchmark regressed beyond the allowed threshold", report
            )
    elif baseline_path:
        raise FileNotFoundError(f"baseline not found: {baseline_path}")
    else:
        parts.append(f"no baseline at {path}; comparison skipped")
    if profile:
        parts.append("")
        parts.append(profile_macro(out=profile_out))
    return "\n".join(parts)
