"""Hot-path performance benchmarks and the regression harness.

Three benchmarks, exposed through ``python -m repro bench``:

* ``kernel`` — a pure event-kernel micro-benchmark: many concurrent
  processes each yielding a long chain of timeouts, measured in
  simulator events per wall-clock second. Exercises the heap loop,
  the :class:`~repro.sim.core.Timeout` pool, and process resumption
  with no networking or broker code at all.
* ``pipeline`` — a small broker scenario (10 closed-loop clients
  against the distributed stage plan) measured in completed requests
  per wall-clock second. Exercises the full ingress/dispatch pipeline,
  the net layer, and the metrics registry.
* ``macro`` — the §V.B QoS testbed at full size
  (``run_qos_experiment(60, mode="broker", duration=120.0)``),
  repeated several times; reports requests per wall-clock second plus
  the p50/p99 of the per-repetition wall times.

Results are written as JSON (default ``BENCH_pipeline.json``) and
compared against a committed baseline
(``benchmarks/perf/baseline.json``): a throughput drop beyond the
allowed regression fraction raises :class:`BenchRegression`, which the
CLI turns into a non-zero exit code. Throughput numbers are
machine-dependent — the committed baseline tracks relative regressions
in CI, not absolute performance.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from .sim.core import Simulation
from .workload.scenarios import run_qos_experiment

__all__ = [
    "BenchRegression",
    "bench_kernel",
    "bench_pipeline",
    "bench_macro",
    "run_suite",
    "compare_to_baseline",
    "render_report",
    "DEFAULT_BASELINE",
]

#: Seed shared by every benchmark run (results are fully deterministic).
SEED = 2026

#: Default location of the committed baseline, relative to the repo root.
DEFAULT_BASELINE = Path("benchmarks") / "perf" / "baseline.json"

#: Throughput keys checked against the baseline, per benchmark.
_COMPARED = (
    ("kernel", "events_per_sec"),
    ("pipeline", "requests_per_sec"),
    ("macro", "requests_per_sec"),
)


class BenchRegression(RuntimeError):
    """Raised when a benchmark regresses beyond the allowed fraction.

    Carries the rendered report so the CLI can print the full results
    before exiting non-zero.
    """

    def __init__(self, message: str, report: str) -> None:
        super().__init__(message)
        self.report = report


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a small, non-empty sample."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def bench_kernel(events: int = 500_000, processes: int = 100) -> Dict[str, Any]:
    """Measure raw kernel throughput in events per wall-clock second."""
    sim = Simulation(seed=SEED)
    per_process = events // processes

    def chain(step: float):
        timeout = sim.timeout
        for _ in range(per_process):
            yield timeout(step)

    for index in range(processes):
        sim.process(chain(0.001 * (index + 1)), name=f"bench{index}")
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    total = per_process * processes
    return {
        "events": total,
        "wall_s": wall,
        "events_per_sec": total / wall,
    }


def bench_pipeline(
    duration: float = 120.0, clients: int = 30, repeats: int = 2
) -> Dict[str, Any]:
    """Measure full-pipeline throughput on a mid-size broker scenario."""
    walls: List[float] = []
    requests = 0
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_qos_experiment(
            clients, mode="broker", duration=duration, seed=SEED
        )
        walls.append(time.perf_counter() - started)
        requests = sum(result.completions.values())
    wall = min(walls)
    return {
        "clients": clients,
        "duration_virtual_s": duration,
        "repeats": repeats,
        "requests": requests,
        "wall_s": wall,
        "requests_per_sec": requests / wall,
    }


def bench_macro(
    duration: float = 120.0, clients: int = 60, repeats: int = 3
) -> Dict[str, Any]:
    """Measure the §V.B macro scenario, repeated for stable wall times."""
    walls: List[float] = []
    requests = 0
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_qos_experiment(
            clients, mode="broker", duration=duration, seed=SEED
        )
        walls.append(time.perf_counter() - started)
        requests = sum(result.completions.values())
    best = min(walls)
    return {
        "clients": clients,
        "duration_virtual_s": duration,
        "repeats": repeats,
        "requests": requests,
        "walls_s": walls,
        "wall_best_s": best,
        "wall_p50_s": _percentile(walls, 0.50),
        "wall_p99_s": _percentile(walls, 0.99),
        "requests_per_sec": requests / best,
    }


def run_suite(quick: bool = False) -> Dict[str, Any]:
    """Run all three benchmarks and return the result document.

    ``quick`` shrinks every benchmark (~3 s total instead of ~20 s);
    quick and full results are never compared to each other — the
    baseline file keeps one section per mode.
    """
    if quick:
        # Walls below ~0.2 s are startup-jitter dominated, so even the
        # quick points stay big enough to give a stable throughput.
        kernel = bench_kernel(events=100_000, processes=50)
        pipeline = bench_pipeline(duration=120.0, clients=30, repeats=2)
        macro = bench_macro(duration=20.0, repeats=2)
    else:
        kernel = bench_kernel()
        pipeline = bench_pipeline()
        macro = bench_macro()
    return {
        "schema": 1,
        "mode": "quick" if quick else "full",
        "seed": SEED,
        "kernel": kernel,
        "pipeline": pipeline,
        "macro": macro,
    }


def profile_macro(top: int = 25) -> str:
    """Run one macro repetition under cProfile; return the top-N table."""
    profiler = cProfile.Profile()
    profiler.enable()
    run_qos_experiment(60, mode="broker", duration=120.0, seed=SEED)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def compare_to_baseline(
    results: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.30,
) -> List[str]:
    """Compare *results* to the matching baseline section.

    Returns one human-readable line per compared metric; raises
    :class:`ValueError` when the baseline has no section for this mode.
    Lines for metrics that regressed beyond *max_regression* start with
    ``REGRESSION``.
    """
    section = baseline.get(results["mode"])
    if section is None:
        raise ValueError(
            f"baseline has no {results['mode']!r} section "
            f"(sections: {sorted(baseline)})"
        )
    lines = []
    for bench, key in _COMPARED:
        current = results[bench][key]
        reference = section[bench][key]
        floor = reference * (1.0 - max_regression)
        ratio = current / reference if reference else float("inf")
        status = "ok" if current >= floor else "REGRESSION"
        lines.append(
            f"{status:>10}  {bench}.{key}: {current:,.0f} "
            f"vs baseline {reference:,.0f} ({ratio:.2f}x, "
            f"floor {floor:,.0f})"
        )
    return lines


def render_report(results: Dict[str, Any]) -> str:
    """Render the result document as an aligned text summary."""
    kernel = results["kernel"]
    pipeline = results["pipeline"]
    macro = results["macro"]
    return "\n".join(
        [
            f"bench ({results['mode']} mode, seed {results['seed']})",
            f"  kernel:   {kernel['events_per_sec']:>12,.0f} events/s "
            f"({kernel['events']:,} events in {kernel['wall_s']:.3f}s)",
            f"  pipeline: {pipeline['requests_per_sec']:>12,.0f} requests/s "
            f"({pipeline['requests']:,} requests in {pipeline['wall_s']:.3f}s)",
            f"  macro:    {macro['requests_per_sec']:>12,.0f} requests/s "
            f"({macro['requests']:,} requests, best of {macro['repeats']} "
            f"wall {macro['wall_best_s']:.3f}s, "
            f"p50 {macro['wall_p50_s']:.3f}s, p99 {macro['wall_p99_s']:.3f}s)",
        ]
    )


def run_bench_command(
    quick: bool = False,
    profile: bool = False,
    out: Optional[str] = "BENCH_pipeline.json",
    baseline_path: Optional[str] = None,
    max_regression: float = 0.30,
) -> str:
    """The ``repro bench`` implementation; returns the printed report.

    Raises :class:`BenchRegression` when a compared throughput falls
    more than *max_regression* below the baseline.
    """
    results = run_suite(quick=quick)
    parts = [render_report(results)]
    if out:
        Path(out).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        parts.append(f"results written to {out}")
    path = Path(baseline_path) if baseline_path else DEFAULT_BASELINE
    if path.exists():
        baseline = json.loads(path.read_text(encoding="utf-8"))
        lines = compare_to_baseline(
            results, baseline, max_regression=max_regression
        )
        parts.append(f"baseline {path} (max regression {max_regression:.0%}):")
        parts.extend(f"  {line}" for line in lines)
        if any(line.startswith("REGRESSION") for line in lines):
            report = "\n".join(parts)
            raise BenchRegression(
                "benchmark regressed beyond the allowed threshold", report
            )
    elif baseline_path:
        raise FileNotFoundError(f"baseline not found: {baseline_path}")
    else:
        parts.append(f"no baseline at {path}; comparison skipped")
    if profile:
        parts.append("")
        parts.append("cProfile (macro scenario, top 25 by cumulative time):")
        parts.append(profile_macro())
    return "\n".join(parts)
