"""Command-line runner for the paper's experiments.

Usage::

    python -m repro fig7   [--degrees 1,2,4,8,16,40] [--seed N]
    python -m repro fig9   [--clients 10,20,...] [--duration S] [--seed N]
    python -m repro fig10  [--clients ...] [--duration S] [--seed N]
    python -m repro table1 [--clients ...] [--duration S] [--seed N]
    python -m repro drops  [--clients ...] [--duration S] [--seed N]
    python -m repro pipeline --describe [--model distributed|centralized|fault-tolerant|sharded|cache-tier|all]
    python -m repro faults --describe
    python -m repro faults [--mtbf 40,20,10] [--mttr S] [--replicas N] [--duration S]
    python -m repro shard  --describe
    python -m repro shard  [--shards 1,2,4,8] [--replicas N] [--clients N]
                           [--mode broker|centralized] [--duration S]
    python -m repro bench  [--quick] [--profile] [--out PATH] [--baseline PATH]
    python -m repro obs    --describe
    python -m repro obs    [--scenario qos|fig7|faults] [--trace-sample N]
                           [--slowest K] [--export FILE] [--jsonl FILE] [--quick]
    python -m repro chaos  --describe
    python -m repro chaos  [--quick] [--duration S] [--capacity N]
                           [--policy reject-new|drop-oldest|drop-lowest]
                           [--mtbf S] [--mttr S] [--recovery replay|shed]
                           [--availability-floor F] [--summary-out FILE]
    python -m repro chaos  --shards N [--replicas R] [--leader-kill-every S]
                           [--quick] [--duration S] [--summary-out FILE]
    python -m repro cache  --describe
    python -m repro cache  [--clients N] [--brokers B] [--duration S]
                           [--ttl S] [--no-views] [--quick] [--summary-out FILE]
    python -m repro telemetry --describe
    python -m repro telemetry [--scenario qos|chaos|shard] [--interval S]
                           [--slo] [--dashboard] [--export FILE] [--quick]
    python -m repro autoscale --describe
    python -m repro autoscale [--quick] [--duration S] [--period S]
                           [--swing X] [--target T] [--summary-out FILE]
    python -m repro autoscale --soak [--quick] [--duration S]
                           [--wave-period S] [--min-scale-ins N]
                           [--summary-out FILE]

Each subcommand regenerates one of the paper's evaluation artifacts and
prints it as an aligned text table. For the benchmark-grade runs with
shape assertions, use ``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .metrics import render_table
from .workload import (
    run_autoscale_experiment,
    run_cache_tier_experiment,
    run_chaos_experiment,
    run_clustering_experiment,
    run_failure_recovery_experiment,
    run_qos_experiment,
    run_scale_chaos_experiment,
    run_shard_chaos_experiment,
    run_sharded_qos_experiment,
)

__all__ = ["main", "build_parser", "ChaosInvariantFailure"]


class ChaosInvariantFailure(Exception):
    """A chaos soak finished but at least one invariant check failed."""

    def __init__(self, report: str, failed: List[str]) -> None:
        super().__init__(f"chaos invariants violated: {', '.join(failed)}")
        self.report = report
        self.failed = failed


DEFAULT_DEGREES = "1,2,4,5,8,10,16,20,30,40"
DEFAULT_CLIENTS = "10,20,30,40,50,60"


def _int_list(text: str) -> List[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected comma-separated ints: {text!r}") from exc
    if not values:
        raise argparse.ArgumentTypeError("expected at least one value")
    return values


def _float_list(text: str) -> List[float]:
    try:
        values = [float(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"expected comma-separated floats: {text!r}") from exc
    if not values:
        raise argparse.ArgumentTypeError("expected at least one value")
    return values


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation artifacts of Chen & Mohapatra, "
        "'Using Service Brokers for Accessing Backend Servers for Web "
        "Applications' (ICDCS 2003).",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=2026, help="master RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    fig7 = sub.add_parser(
        "fig7", parents=[common], help="Figure 7: request clustering sweep"
    )
    fig7.add_argument(
        "--degrees", type=_int_list, default=_int_list(DEFAULT_DEGREES),
        help=f"degrees of clustering (default {DEFAULT_DEGREES})",
    )

    for name, help_text in (
        ("fig9", "Figure 9: API vs broker processing time"),
        ("fig10", "Figure 10: per-QoS-class processing time"),
        ("table1", "Table I: completions per QoS class"),
        ("drops", "Tables II-IV: drop ratios at each broker"),
    ):
        cmd = sub.add_parser(name, parents=[common], help=help_text)
        cmd.add_argument(
            "--clients", type=_int_list, default=_int_list(DEFAULT_CLIENTS),
            help=f"client counts (default {DEFAULT_CLIENTS})",
        )
        cmd.add_argument(
            "--duration", type=float, default=120.0,
            help="virtual seconds per point (default 120)",
        )

    pipeline = sub.add_parser(
        "pipeline", help="describe the broker's stage pipeline"
    )
    pipeline.add_argument(
        "--describe", action="store_true",
        help="print the stage order of the selected model(s)",
    )
    pipeline.add_argument(
        "--model",
        choices=(
            "distributed", "centralized", "fault-tolerant", "sharded",
            "cache-tier", "all",
        ),
        default="all",
        help="which stage plan to describe (default: all)",
    )

    faults = sub.add_parser(
        "faults", parents=[common],
        help="failure recovery: fault injection, retries, breakers, failover",
    )
    faults.add_argument(
        "--describe", action="store_true",
        help="print the fault types, the fault-tolerant stage plan, and "
        "the retry/breaker policies without running anything",
    )
    faults.add_argument(
        "--mtbf", type=_float_list, default=[40.0, 20.0, 10.0],
        help="mean time between failures, seconds (default 40,20,10)",
    )
    faults.add_argument(
        "--mttr", type=float, default=5.0,
        help="repair time per crash, seconds (default 5)",
    )
    faults.add_argument(
        "--replicas", type=int, default=2,
        help="replica backends behind the broker (default 2)",
    )
    faults.add_argument(
        "--duration", type=float, default=120.0,
        help="virtual seconds per point (default 120)",
    )

    shard = sub.add_parser(
        "shard", parents=[common],
        help="shard-aware broker tier: consistent-hash routing, replica "
        "groups, leader election",
    )
    shard.add_argument(
        "--describe", action="store_true",
        help="print the sharded stage plan and a sample shard directory "
        "without running anything",
    )
    shard.add_argument(
        "--shards", type=_int_list, default=_int_list("1,2,4,8"),
        help="shard counts to sweep (default 1,2,4,8)",
    )
    shard.add_argument(
        "--replicas", type=int, default=2,
        help="replica brokers per shard group (default 2)",
    )
    shard.add_argument(
        "--clients", type=int, default=40,
        help="closed-loop clients per point (default 40)",
    )
    shard.add_argument(
        "--mode", choices=("broker", "centralized"), default="centralized",
        help="base broker model under the shard router "
        "(default centralized, which exercises the load listener)",
    )
    shard.add_argument(
        "--duration", type=float, default=60.0,
        help="virtual seconds per point (default 60)",
    )

    bench = sub.add_parser(
        "bench",
        help="hot-path performance benchmarks with baseline regression check",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="shrunken suite (~3s) for CI smoke runs",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="also run the macro scenario under cProfile; full stats go "
        "to --profile-out, the report shows a short summary",
    )
    bench.add_argument(
        "--profile-out", default="BENCH_profile.pstats",
        help="file for the --profile pstats dump "
        "(default BENCH_profile.pstats)",
    )
    bench.add_argument(
        "--suite", default="default",
        choices=[
            "default", "kernel", "pipeline", "macro", "parallel",
            "telemetry", "autoscale", "all",
        ],
        help="which benchmarks to run (default: kernel+pipeline+macro; "
        "'parallel' sweeps the sharded testbed over worker counts; "
        "'telemetry' measures scraper overhead on the macro scenario; "
        "'autoscale' times the elastic-pool experiment end to end)",
    )
    bench.add_argument(
        "--out", default=None,
        help="write results JSON here (default BENCH_pipeline.json, or "
        "BENCH_parallel.json for --suite parallel; pass an empty string "
        "to skip)",
    )
    bench.add_argument(
        "--baseline", default=None,
        help="baseline JSON to compare against "
        "(default: benchmarks/perf/baseline.json when present)",
    )
    bench.add_argument(
        "--max-regression", type=float, default=0.30,
        help="allowed fractional throughput drop before failing "
        "(default 0.30)",
    )

    obs = sub.add_parser(
        "obs", parents=[common],
        help="end-to-end request tracing: waterfalls, histograms, exports",
    )
    obs.add_argument(
        "--describe", action="store_true",
        help="print the span model, overhead contract, and exporter "
        "formats without running anything",
    )
    obs.add_argument(
        "--scenario", choices=("qos", "fig7", "faults"), default="qos",
        help="which testbed to trace (default: qos, the §V.B macro)",
    )
    obs.add_argument(
        "--clients", type=int, default=60,
        help="client count for the qos scenario (default 60)",
    )
    obs.add_argument(
        "--duration", type=float, default=120.0,
        help="virtual seconds for qos/faults scenarios (default 120)",
    )
    obs.add_argument(
        "--degree", type=int, default=8,
        help="degree of clustering for the fig7 scenario (default 8)",
    )
    obs.add_argument(
        "--trace-sample", dest="trace_sample", type=int, default=1,
        help="keep every Nth root request's trace (default 1 = all)",
    )
    obs.add_argument(
        "--slowest", type=int, default=5,
        help="how many slowest-request waterfalls to print (default 5)",
    )
    obs.add_argument(
        "--export", default=None,
        help="write a Chrome trace_event JSON file (chrome://tracing)",
    )
    obs.add_argument(
        "--jsonl", default=None,
        help="write one JSON object per span to this file",
    )
    obs.add_argument(
        "--quick", action="store_true",
        help="shrunken run (~seconds) for CI smoke tests",
    )

    chaos = sub.add_parser(
        "chaos", parents=[common],
        help="chaos soak: broker crashes, link flaps, load spikes, "
        "invariant checks",
    )
    chaos.add_argument(
        "--describe", action="store_true",
        help="print the chaos schedule, topology, and invariants "
        "without running anything",
    )
    chaos.add_argument(
        "--quick", action="store_true",
        help="90-second soak (~1s wall) for CI smoke runs",
    )
    chaos.add_argument(
        "--duration", type=float, default=300.0,
        help="virtual seconds of chaos (default 300)",
    )
    chaos.add_argument(
        "--capacity", type=int, default=48,
        help="bounded broker queue capacity (default 48)",
    )
    chaos.add_argument(
        "--policy", choices=("reject-new", "drop-oldest", "drop-lowest"),
        default="drop-lowest",
        help="queue shedding policy (default drop-lowest)",
    )
    chaos.add_argument(
        "--mtbf", type=float, default=25.0,
        help="broker A mean time between failures, seconds (default 25; "
        "broker B fails at 1.8x this)",
    )
    chaos.add_argument(
        "--mttr", type=float, default=2.0,
        help="broker repair time per crash, seconds (default 2)",
    )
    chaos.add_argument(
        "--recovery", choices=("replay", "shed"), default="replay",
        help="journal recovery policy on restart (default replay)",
    )
    chaos.add_argument(
        "--availability-floor", dest="availability_floor",
        type=float, default=0.99,
        help="minimum answered fraction of the steady workload "
        "(default 0.99)",
    )
    chaos.add_argument(
        "--summary-out", dest="summary_out", default=None,
        help="write the run summary and invariant verdicts as JSON here",
    )
    chaos.add_argument(
        "--shards", type=int, default=0,
        help="run the shard-leader-kill soak over N shard groups instead "
        "of the classic two-broker soak (default 0 = classic)",
    )
    chaos.add_argument(
        "--replicas", type=int, default=2,
        help="replica brokers per shard group in shard mode (default 2)",
    )
    chaos.add_argument(
        "--leader-kill-every", dest="leader_kill_every", type=float,
        default=25.0,
        help="in shard mode, crash a rotating shard leader this often, "
        "seconds (default 25)",
    )

    cache = sub.add_parser(
        "cache", parents=[common],
        help="cross-request optimization tier: shared cache, cross-broker "
        "query combining, materialized views",
    )
    cache.add_argument(
        "--describe", action="store_true",
        help="print the cache-tier stage plan, the write-behind contract, "
        "and the metric families without running anything",
    )
    cache.add_argument(
        "--clients", type=int, default=600,
        help="closed-loop clients (default 600, 10x the paper's "
        "section V.B maximum)",
    )
    cache.add_argument(
        "--brokers", type=int, default=4,
        help="brokers sharing the tier (default 4)",
    )
    cache.add_argument(
        "--duration", type=float, default=30.0,
        help="virtual seconds per mode (default 30)",
    )
    cache.add_argument(
        "--ttl", type=float, default=2.0,
        help="cache entry time-to-live, both layers (default 2)",
    )
    cache.add_argument(
        "--no-views", dest="no_views", action="store_true",
        help="disable the materialized view in the tier-enabled run",
    )
    cache.add_argument(
        "--quick", action="store_true",
        help="shrunken run (60 clients, 5s) for CI smoke tests",
    )
    cache.add_argument(
        "--summary-out", dest="summary_out", default=None,
        help="write both runs' counters and the reduction factor as JSON",
    )

    telemetry = sub.add_parser(
        "telemetry", parents=[common],
        help="in-flight time-series telemetry, SLO burn-rate alerts, and "
        "the live operator dashboard",
    )
    telemetry.add_argument(
        "--describe", action="store_true",
        help="print the scrape model, SLO engine, and exporter formats "
        "without running anything",
    )
    telemetry.add_argument(
        "--scenario", choices=("qos", "chaos", "shard"), default="qos",
        help="which testbed to scrape (default: qos, the §V.B macro)",
    )
    telemetry.add_argument(
        "--clients", type=int, default=60,
        help="client count for qos/shard scenarios (default 60)",
    )
    telemetry.add_argument(
        "--duration", type=float, default=120.0,
        help="virtual seconds to run and scrape (default 120)",
    )
    telemetry.add_argument(
        "--interval", type=float, default=1.0,
        help="scrape interval in virtual seconds (default 1.0)",
    )
    telemetry.add_argument(
        "--shards", type=int, default=4,
        help="shard groups for the shard scenario (default 4)",
    )
    telemetry.add_argument(
        "--replicas", type=int, default=2,
        help="replica brokers per shard group (default 2)",
    )
    telemetry.add_argument(
        "--slo", action="store_true",
        help="print the SLO table and the burn-rate alert timeline",
    )
    telemetry.add_argument(
        "--dashboard", action="store_true",
        help="render the terminal sparkline dashboard after the run",
    )
    telemetry.add_argument(
        "--export", default=None,
        help="write per-scrape telemetry JSONL here (a Prometheus text "
        "snapshot lands next to it with a .prom suffix)",
    )
    telemetry.add_argument(
        "--quick", action="store_true",
        help="shrunken run (12 clients, 30s) for CI smoke tests",
    )

    autoscale = sub.add_parser(
        "autoscale", parents=[common],
        help="elastic broker pool: target-tracking autoscaler, graceful "
        "drain, per-tenant throttling, and the scale-chaos soak",
    )
    autoscale.add_argument(
        "--describe", action="store_true",
        help="print the control loop, drain protocol, and invariants "
        "without running anything",
    )
    autoscale.add_argument(
        "--soak", action="store_true",
        help="run the scale-chaos soak (square-wave load plus a drain "
        "sniper crashing brokers mid-drain) instead of the diurnal "
        "headline experiment",
    )
    autoscale.add_argument(
        "--quick", action="store_true",
        help="shrunken run for CI smoke tests (headline: 120s; "
        "soak: 120s with proportionally lower event floors)",
    )
    autoscale.add_argument(
        "--duration", type=float, default=None,
        help="virtual seconds to run (default 240 headline, 264 soak)",
    )
    autoscale.add_argument(
        "--period", type=float, default=120.0,
        help="diurnal period in virtual seconds, headline only "
        "(default 120)",
    )
    autoscale.add_argument(
        "--swing", type=float, default=10.0,
        help="peak-to-base arrival-rate ratio for the diurnal wave, "
        "headline only (default 10)",
    )
    autoscale.add_argument(
        "--target", type=float, default=None,
        help="target outstanding requests per broker for the "
        "target-tracking policy (default 3.0 headline, 2.5 soak)",
    )
    autoscale.add_argument(
        "--wave-period", dest="wave_period", type=float, default=24.0,
        help="square-wave period in virtual seconds, soak only "
        "(default 24)",
    )
    autoscale.add_argument(
        "--min-scale-ins", dest="min_scale_ins", type=int, default=None,
        help="soak invariant floor on completed scale-in events "
        "(default 20, or 8 with --quick)",
    )
    autoscale.add_argument(
        "--summary-out", dest="summary_out", default=None,
        help="write the experiment summary and invariant verdicts as JSON",
    )
    return parser


def _qos_sweep(args, mode: str):
    return [
        run_qos_experiment(n, mode=mode, duration=args.duration, seed=args.seed)
        for n in args.clients
    ]


def run_fig7(args) -> str:
    rows = []
    for degree in args.degrees:
        result = run_clustering_experiment(degree, seed=args.seed)
        rows.append(
            {
                "degree": result.degree,
                "mean_response_ms": result.mean_response_time * 1000,
                "max_response_ms": result.max_response_time * 1000,
                "backend_calls": result.backend_calls,
            }
        )
    return render_table(
        rows, title="Figure 7 — response time vs degree of clustering"
    )


def run_fig9(args) -> str:
    api = _qos_sweep(args, "api")
    broker = _qos_sweep(args, "broker")
    rows = [
        {"clients": n, "api_s": a.mean_response_time, "broker_s": b.mean_response_time}
        for n, a, b in zip(args.clients, api, broker)
    ]
    return render_table(rows, title="Figure 9 — processing time, API vs broker")


def run_fig10(args) -> str:
    broker = _qos_sweep(args, "broker")
    rows = [
        {
            "clients": n,
            "qos1_s": r.mean_response_of(1),
            "qos2_s": r.mean_response_of(2),
            "qos3_s": r.mean_response_of(3),
        }
        for n, r in zip(args.clients, broker)
    ]
    return render_table(rows, title="Figure 10 — processing time per QoS class")


def run_table1(args) -> str:
    broker = _qos_sweep(args, "broker")
    rows = [
        {
            "clients": n,
            "qos1": r.completions[1],
            "qos2": r.completions[2],
            "qos3": r.completions[3],
        }
        for n, r in zip(args.clients, broker)
    ]
    return render_table(rows, title="Table I — completed requests per QoS class")


def run_drops(args) -> str:
    broker = _qos_sweep(args, "broker")
    sections = []
    broker_names = sorted(broker[0].drop_ratios)
    for table, name in zip(("II", "III", "IV"), broker_names):
        rows = [
            {
                "clients": n,
                "qos1": r.drop_ratios[name][1],
                "qos2": r.drop_ratios[name][2],
                "qos3": r.drop_ratios[name][3],
            }
            for n, r in zip(args.clients, broker)
        ]
        sections.append(
            render_table(rows, title=f"Table {table} — drop ratios at {name}")
        )
    return "\n\n".join(sections)


def run_pipeline(args) -> str:
    """Render the stage order of the requested broker model(s)."""
    from .core.pipeline import stage_plan

    models = (
        ("distributed", "centralized", "fault-tolerant", "sharded", "cache-tier")
        if args.model == "all"
        else (args.model,)
    )
    sections = []
    for model in models:
        stages = stage_plan(model)
        lines = [f"{model} broker pipeline ({len(stages)} stages):"]
        for index, stage in enumerate(stages, 1):
            marker = "  [ingress/dispatch boundary]" if stage.boundary else ""
            lines.append(f"  {index:>2}. {stage.name:<12} {stage.summary()}{marker}")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def _describe_faults() -> str:
    from .core.faulttolerance import RetryPolicy
    from .core.pipeline import stage_plan
    from .net.faults import BackendCrash, LinkDegrade, LinkDown, SlowBackend

    lines = ["Fault types (repro.net.faults — scheduled via FaultPlan):"]
    for cls in (BackendCrash, LinkDown, LinkDegrade, SlowBackend):
        summary = (cls.__doc__ or "").strip().splitlines()[0]
        lines.append(f"  {cls.kind:<14} {summary}")
    lines.append("")
    lines.append("Fault-tolerant broker pipeline (stage_plan('fault-tolerant')):")
    for index, stage in enumerate(stage_plan("fault-tolerant"), 1):
        marker = "  [ingress/dispatch boundary]" if stage.boundary else ""
        lines.append(f"  {index:>2}. {stage.name:<12} {stage.summary()}{marker}")
    policy = RetryPolicy()
    lines += [
        "",
        "Retry policy defaults: "
        f"max_attempts={policy.max_attempts}, base_delay={policy.base_delay:g}s, "
        f"multiplier={policy.multiplier:g}, jitter={policy.jitter:g}, "
        f"max_delay={policy.max_delay:g}s (exponential backoff, seeded jitter)",
        "",
        "Circuit breaker (one per backend): closed -> open after "
        "failure_threshold consecutive failures; open -> half-open after "
        "reset_timeout; half-open admits probe traffic, closing on success "
        "and re-opening on failure.",
        "",
        "Fault metrics: broker.fault.unreachable, broker.fault.deadline, "
        "broker.fault.breaker_open, broker.fault.failover, "
        "broker.fault.failover_recovered, broker.fault.replies, "
        "broker.retry.attempts, broker.retry.backoff, "
        "broker.retry.recovered, broker.retry.exhausted, "
        "broker.breaker.state, broker.degraded_replies.",
    ]
    return "\n".join(lines)


def run_faults(args) -> str:
    """Describe the fault-tolerance machinery, or sweep availability vs MTBF."""
    if args.describe:
        return _describe_faults()
    rows = []
    for mtbf in args.mtbf:
        result = run_failure_recovery_experiment(
            mtbf=mtbf,
            mttr=args.mttr,
            replicas=args.replicas,
            duration=args.duration,
            first_crash_at=min(mtbf, args.duration / 4.0),
            seed=args.seed,
        )
        rows.append(
            {
                "mtbf_s": mtbf,
                "outages": result.outages,
                "downtime_s": round(result.downtime, 1),
                "avail_pct": round(100.0 * result.availability, 2),
                "outage_avail_pct": round(100.0 * result.outage_availability, 2),
                "degraded": result.degraded,
                "retries": result.retries,
                "breaker_opens": result.breaker_opens,
                "mean_ms": round(result.latency.mean * 1000, 1),
            }
        )
    return render_table(
        rows,
        title=f"Failure recovery — availability vs MTBF "
        f"(mttr={args.mttr:g}s, replicas={args.replicas})",
    )


def _describe_shard() -> str:
    from .core.pipeline import stage_plan
    from .core.sharding import ShardDirectory, ShardGroup
    from .metrics import MetricsRegistry

    lines = ["Sharded broker pipeline (stage_plan('sharded')):"]
    for index, stage in enumerate(stage_plan("sharded"), 1):
        marker = "  [ingress/dispatch boundary]" if stage.boundary else ""
        lines.append(f"  {index:>2}. {stage.name:<12} {stage.summary()}{marker}")
    lines += [
        "",
        "Routing: the front end addresses a *service*; the shard directory",
        "hashes the request key onto a seeded consistent-hash ring (64 vnodes",
        "per shard) and hands back the elected leader of the owning replica",
        "group. A broker that receives a key it does not own relays it to",
        "the owner (shard-route stage, bounded hop count); replicas inside",
        "a group replicate journal entries and elect a new leader by",
        "join-order priority when the current one crashes.",
        "",
        "Sample directory — service 'items', 4 shards x 2 replicas:",
    ]
    metrics = MetricsRegistry()
    groups = []
    for shard in range(4):
        group = ShardGroup("items", shard, metrics)
        for replica in range(2):
            group.add(_FakeReplica(f"items-s{shard}r{replica}", ("web", 7100 + shard * 2 + replica)))
        groups.append(group)
    directory = ShardDirectory(metrics)
    directory.register("items", groups, seed=2026)
    for line in directory.describe().splitlines():
        lines.append(f"  {line}")
    lines += [
        "",
        "A 1-shard x 1-replica registration is the degenerate case: every",
        "key maps to the only group and the stage plan behaves exactly like",
        "the unsharded broker.",
    ]
    return "\n".join(lines)


class _FakeReplica:
    """Just enough broker surface for ShardGroup/describe demos."""

    def __init__(self, name, address) -> None:
        self.name = name
        self.address = address
        self.alive = True


def run_shard(args) -> str:
    """Describe the shard tier, or sweep throughput vs shard count."""
    if args.describe:
        return _describe_shard()
    rows = []
    for shards in args.shards:
        result = run_sharded_qos_experiment(
            args.clients,
            shards=shards,
            replicas=args.replicas,
            mode=args.mode,
            duration=args.duration,
            seed=args.seed,
        )
        rows.append(
            {
                "shards": shards,
                "brokers": result.brokers,
                "goodput_rps": round(result.goodput, 2),
                "throughput_rps": round(result.throughput, 1),
                "premium_p99_ms": round(result.premium_p99() * 1000, 1),
                "local": result.local_routes,
                "forwards": result.forwards,
                "elections": result.elections,
                "listener_upd": result.listener_updates,
            }
        )
    return render_table(
        rows,
        title=f"Shard scaling — {args.clients} clients, mode={args.mode}, "
        f"{args.replicas} replicas/shard, {args.duration:g}s virtual",
    )


def _describe_chaos() -> str:
    from .core.lifecycle import DEFAULT_SUPERVISOR_PORT
    from .core.queueing import SHED_POLICIES

    lines = [
        "Chaos soak (repro.workload.chaos.run_chaos_experiment):",
        "",
        "Topology: 1 web node (front end + supervisor, port "
        f"{DEFAULT_SUPERVISOR_PORT}), 2 brokers (chaos-a, chaos-b) each",
        "fronting 2 replicated backends; closed-loop clients fail over to",
        "the sibling broker on timeout or non-OK reply.",
        "",
        "Fault schedule (all seeded, virtual time):",
        "  broker-crash   chaos-a on an exponential MTBF cycle; chaos-b at",
        "                 1.8x that MTBF, plus two sub-detection 'blip'",
        "                 crashes that exercise journal replay on restart",
        "  link-down      web <-> backend2 flaps (0.5 s each)",
        "  load spike     open-loop class-3 burst every spike interval",
        "",
        "Protection under test: bounded BrokerQueue with QoS-aware",
        f"shedding ({', '.join(SHED_POLICIES)}), backpressure watermarks,",
        "heartbeat supervision with fail-fast, and a recovery journal",
        "(replay | shed) consumed on broker restart.",
        "",
        "Invariants checked after the drain:",
        "  no-lost-request         every issued request got exactly one",
        "                          terminal reply; no queued/journaled residue",
        "  post-crash-consistency  restarts == crashes; all brokers alive",
        "                          and seen by the supervisor",
        "  queue-bound             per-broker peak depth <= capacity",
        "  availability-floor      (ok + degraded) / requests >= floor",
        "",
        "Exit status is 1 if any invariant fails. --summary-out writes the",
        "full counters and verdicts as JSON for CI artifacts.",
    ]
    return "\n".join(lines)


def run_chaos(args) -> str:
    """Run the seeded chaos soak and check its invariants."""
    if args.describe:
        return _describe_chaos()
    duration = 90.0 if args.quick else args.duration
    if args.shards > 0:
        return _run_shard_chaos(args, duration)
    result = run_chaos_experiment(
        duration=duration,
        mtbf=args.mtbf,
        mttr=args.mttr,
        capacity=args.capacity,
        shed_policy=args.policy,
        recovery_policy=args.recovery,
        availability_floor=args.availability_floor,
        seed=args.seed,
    )
    lines = [
        f"Chaos soak — {duration:g}s virtual, seed={args.seed}, "
        f"capacity={args.capacity}, policy={args.policy}, "
        f"mtbf={args.mtbf:g}s, mttr={args.mttr:g}s, "
        f"recovery={args.recovery}",
        "",
        f"steady workload : {result.requests} requests  "
        f"ok={result.ok} degraded={result.degraded} "
        f"dropped={result.dropped} timeouts={result.timeouts} "
        f"errors={result.errors} failovers={result.failovers}",
        f"latency         : p50={result.latency.percentile(50) * 1000:.1f}ms  "
        f"p99={result.latency.percentile(99) * 1000:.1f}ms",
        f"availability    : {100.0 * result.availability:.3f}% "
        f"(floor {100.0 * args.availability_floor:g}%)",
        f"spike traffic   : {result.spike_requests} requests  "
        f"ok={result.spike_ok} degraded={result.spike_degraded} "
        f"dropped={result.spike_dropped} timeouts={result.spike_timeouts}",
        f"lifecycle       : crashes={result.crashes} "
        f"restarts={result.restarts} detected={result.detected} "
        f"recoveries={result.recoveries}",
        f"journal         : failed_fast={result.failed_fast} "
        f"replayed={result.replayed} restart_shed={result.restart_shed}",
        f"shedding        : shed_total={result.shed_total}  peak depths "
        + " ".join(
            f"{name}={depth}" for name, depth in sorted(result.peak_depths.items())
        ),
        f"link faults     : {result.link_faults}",
        "",
    ]
    failed = []
    for check in result.invariants:
        verdict = "PASS" if check.passed else "FAIL"
        lines.append(f"INVARIANT {check.name:<24} {verdict} — {check.detail}")
        if not check.passed:
            failed.append(check.name)
    report = "\n".join(lines)
    if args.summary_out:
        payload = result.to_summary()
        payload["invariants_hold"] = result.all_invariants_hold
        with open(args.summary_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        report += f"\n\nsummary written to {args.summary_out}"
    if failed:
        raise ChaosInvariantFailure(report, failed)
    return report


def _run_shard_chaos(args, duration: float) -> str:
    """Shard-mode chaos: kill a rotating shard leader every N seconds."""
    result = run_shard_chaos_experiment(
        duration=duration,
        shards=args.shards,
        replicas=args.replicas,
        leader_kill_every=args.leader_kill_every,
        mttr=args.mttr,
        availability_floor=args.availability_floor,
        seed=args.seed,
    )
    lines = [
        f"Shard chaos soak — {duration:g}s virtual, seed={args.seed}, "
        f"{args.shards} shards x {args.replicas} replicas "
        f"({args.shards * args.replicas} brokers), "
        f"leader kill every {args.leader_kill_every:g}s, mttr={args.mttr:g}s",
        "",
        f"steady workload : {result.requests} requests  "
        f"ok={result.ok} degraded={result.degraded} "
        f"dropped={result.dropped} timeouts={result.timeouts} "
        f"errors={result.errors} failovers={result.failovers}",
        f"latency         : p50={result.latency.percentile(50) * 1000:.1f}ms  "
        f"p99={result.latency.percentile(99) * 1000:.1f}ms",
        f"availability    : {100.0 * result.availability:.3f}% "
        f"(floor {100.0 * args.availability_floor:g}%)",
        f"leadership      : leader_kills={result.leader_kills} "
        f"elections={result.elections} "
        f"reporting_failovers={result.leader_failovers}",
        f"peering         : route_adverts={result.route_adverts} "
        f"journal_syncs={result.journal_syncs} forwards={result.forwards}",
        f"lifecycle       : crashes={result.crashes} "
        f"restarts={result.restarts} detected={result.detected} "
        f"recoveries={result.recoveries}",
        f"journal         : failed_fast={result.failed_fast} "
        f"replayed={result.replayed} restart_shed={result.restart_shed}",
        "",
    ]
    failed = []
    for check in result.invariants:
        verdict = "PASS" if check.passed else "FAIL"
        lines.append(f"INVARIANT {check.name:<24} {verdict} — {check.detail}")
        if not check.passed:
            failed.append(check.name)
    report = "\n".join(lines)
    if args.summary_out:
        payload = result.to_summary()
        payload["invariants_hold"] = result.all_invariants_hold
        with open(args.summary_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        report += f"\n\nsummary written to {args.summary_out}"
    if failed:
        raise ChaosInvariantFailure(report, failed)
    return report


def _describe_autoscale() -> str:
    from .core.autoscale import AutoscalerPolicy

    policy = AutoscalerPolicy(target=3.0)
    lines = [
        "Elastic autoscaling (repro.core.autoscale + run_autoscale_experiment):",
        "",
        "Control loop: every interval the Autoscaler averages per-broker",
        "outstanding load (TelemetryScraper 'broker.load.<name>' series,",
        "falling back to live broker gauges) and target-tracks it:",
        f"  desired = ceil(size * signal / target), hysteresis band ±{policy.hysteresis:g},",
        f"  step-limited to ±{policy.max_step} units, clamped to "
        f"[{policy.min_size}, {policy.max_size}] by default,",
        f"  cooldowns {policy.scale_out_cooldown:g}s out / "
        f"{policy.scale_in_cooldown:g}s in; an active SLO fast-burn",
        "  alert vetoes scale-in (never scale-out).",
        "",
        "Graceful drain (scale-in, newest unit first):",
        "  1. leave the consistent-hash ring — no new work routes here",
        "  2. begin_drain — the broker refuses fresh rx as DROPPED/draining",
        "  3. quiesce — wait for queue + admissions + journal to empty",
        "  4. on grace expiry, hand leftover journal entries to a live",
        "     peer (rewritten to the peer's service alias)",
        "  5. leave the shard group, deregister from the load listener,",
        "     release supervision, decommission",
        "A broker crashed mid-drain restarts still draining (the flag",
        "survives restart) and the coordinator resumes with fresh grace.",
        "",
        "Per-tenant throttling: token buckets (rate/burst, overridable per",
        "tenant) refuse excess as 429 at the front end and as DROPPED/",
        "throttled at the broker ThrottleStage. A throttle refusal is 'we",
        "refused', not 'we lost': it is excluded from SLO burn and from",
        "the availability denominator.",
        "",
        "Headline run: three diurnal QoS classes sweep base..base*swing",
        "once per period plus a flash-crowd tenant ('burst') whose bucket",
        "is sized so crowds are refused, not absorbed. Invariants:",
        "  premium-p99             class-1 p99 within the SLO",
        "  pool-efficiency         time-mean size <= 1.5x steady-state",
        "  elasticity              the pool actually tracked the swing",
        "  throttle-containment    burst throttled, premium never",
        "  no-lost-request         zero residue, all requests terminal",
        "",
        "--soak runs the scale-chaos variant instead: a square wave forces",
        "a scale-out/scale-in cycle per period while a drain sniper",
        "crashes every 2nd draining broker mid-protocol. Invariants add",
        "scale-in-coverage, drain-completion, pool-bounds,",
        "post-crash-consistency, and availability-floor.",
        "",
        "Exit status is 1 if any invariant fails. --summary-out writes the",
        "full counters and verdicts as JSON for CI artifacts.",
    ]
    return "\n".join(lines)


def run_autoscale(args) -> str:
    """Run the elastic-pool headline (or the --soak scale-chaos soak)."""
    if args.describe:
        return _describe_autoscale()
    if args.soak:
        return _run_scale_chaos(args)
    duration = args.duration
    period = args.period
    if duration is None:
        duration = 120.0 if args.quick else 240.0
    target = 3.0 if args.target is None else args.target
    result = run_autoscale_experiment(
        duration=duration,
        swing=args.swing,
        period=period,
        target=target,
        seed=args.seed,
    )
    premium = result.premium_p99()
    premium_text = "n/a" if premium != premium else f"{premium * 1000:.1f}ms"
    lines = [
        f"Autoscale headline — {duration:g}s virtual, seed={args.seed}, "
        f"diurnal {result.base_rate:g}..{result.peak_rate:g} req/s "
        f"(swing {args.swing:g}x, period {period:g}s), target={target:g}",
        "",
        f"workload        : {result.requests} requests  ok={result.ok} "
        f"degraded={result.degraded} throttled={result.throttled} "
        f"dropped={result.dropped} timeouts={result.timeouts} "
        f"errors={result.errors}",
        f"availability    : {100.0 * result.availability:.3f}% of "
        "non-throttled traffic",
        f"premium p99     : {premium_text}",
        "tenants         : "
        + "  ".join(
            f"{name}={info.get('requests', 0)}req/"
            f"{info.get('throttled', 0)}thr"
            for name, info in sorted(result.tenants.items())
        ),
        f"pool economy    : steady={result.steady_size} "
        f"mean={result.mean_size:.2f} peak={result.peak_size} "
        f"min={result.min_size} provisioned={result.provisioned}",
        f"scaling         : outs={result.scale_outs} ins={result.scale_ins} "
        f"drains={result.drains_completed} handoffs={result.handoffs} "
        f"drain_refused={result.drain_refused}",
        f"control loop    : alerts={result.alerts} "
        f"vetoed_by_alert={result.blocked_by_alert} "
        f"held_by_cooldown={result.blocked_by_cooldown}",
        "",
    ]
    return _finish_scale_report(args, result, lines)


def _run_scale_chaos(args) -> str:
    """The --soak arm: square-wave load plus the mid-drain sniper."""
    duration = args.duration
    min_scale_ins = args.min_scale_ins
    min_kills = 3
    if args.quick:
        duration = 120.0 if duration is None else duration
        min_scale_ins = 8 if min_scale_ins is None else min_scale_ins
        min_kills = 1
    else:
        duration = 264.0 if duration is None else duration
        min_scale_ins = 20 if min_scale_ins is None else min_scale_ins
    target = 2.5 if args.target is None else args.target
    result = run_scale_chaos_experiment(
        duration=duration,
        wave_period=args.wave_period,
        target=target,
        min_scale_ins=min_scale_ins,
        min_mid_drain_kills=min_kills,
        seed=args.seed,
    )
    lines = [
        f"Scale-chaos soak — {duration:g}s virtual, seed={args.seed}, "
        f"square wave {result.base_rate:g}/{result.high_rate:g} req/s "
        f"every {result.wave_period:g}s, target={target:g}, "
        f"mttr={result.mttr:g}s",
        "",
        f"workload        : {result.requests} requests  ok={result.ok} "
        f"degraded={result.degraded} dropped={result.dropped} "
        f"timeouts={result.timeouts} errors={result.errors}",
        f"latency         : "
        f"p50={result.latency.percentile(50) * 1000:.1f}ms  "
        f"p99={result.latency.percentile(99) * 1000:.1f}ms",
        f"availability    : {100.0 * result.availability:.3f}%",
        f"pool            : provisioned={result.provisioned} "
        f"peak={result.peak_size} min={result.min_size}",
        f"scaling         : outs={result.scale_outs} ins={result.scale_ins} "
        f"drains={result.drains_completed} handoffs={result.handoffs} "
        f"drain_refused={result.drain_refused}",
        f"chaos           : mid_drain_kills={result.mid_drain_kills} "
        f"interrupted={result.drain_interrupted} crashes={result.crashes} "
        f"restarts={result.restarts}",
        f"journal         : failed_fast={result.failed_fast} "
        f"replayed={result.replayed}",
        "",
    ]
    return _finish_scale_report(args, result, lines)


def _finish_scale_report(args, result, lines: List[str]) -> str:
    """Shared invariant/summary tail for both autoscale arms."""
    failed = []
    for check in result.invariants:
        verdict = "PASS" if check.passed else "FAIL"
        lines.append(f"INVARIANT {check.name:<24} {verdict} — {check.detail}")
        if not check.passed:
            failed.append(check.name)
    report = "\n".join(lines)
    if args.summary_out:
        payload = result.to_summary()
        payload["invariants_hold"] = result.all_invariants_hold
        with open(args.summary_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        report += f"\n\nsummary written to {args.summary_out}"
    if failed:
        raise ChaosInvariantFailure(report, failed)
    return report


def _describe_cache() -> str:
    from .core.pipeline import stage_plan

    lines = ["Cache-tier broker pipeline (stage_plan('cache-tier')):"]
    for index, stage in enumerate(stage_plan("cache-tier"), 1):
        marker = "  [ingress/dispatch boundary]" if stage.boundary else ""
        lines.append(f"  {index:>2}. {stage.name:<13} {stage.summary()}{marker}")
    lines += [
        "",
        "Shared cache tier (repro.core.cachetier.SharedCacheTier): one",
        "store behind every broker's local ResultCache. A local miss",
        "probes the tier before admission (cache-tier stage); every",
        "backend result fills both layers (cache-fill stage), so a result",
        "fetched through any broker serves later requests at every broker.",
        "",
        "Write-behind: tier.write_behind invalidates the stale keys",
        "immediately, queues the write on a bounded flush queue, and",
        "applies it asynchronously in seeded batches; a full queue refuses",
        "the write and the caller falls back to synchronous write-through.",
        "Keys written inside a transaction are invalidated again when the",
        "transaction completes.",
        "",
        "Cross-broker combining (query-combine stage): a dispatcher about",
        "to execute a combinable shape broadcasts a CombinableAdvert over",
        "the peer mesh and holds its window open; peers reaching the same",
        "shape while the advert is fresh yield, and the advertiser claims",
        "their queued matches into one deployment-wide IN-list query,",
        "transferring each claimed request's admission slot and journal",
        "entry to itself.",
        "",
        "Materialized views (repro.db.views.ViewCatalog): grouped",
        "aggregates registered on the database are answered from a",
        "precomputed index; a write to the base table marks the view",
        "dirty and the next read refreshes it lazily.",
        "",
        "Metric families: broker.cache.* mirrors the per-broker local",
        "caches; broker.cachetier.* covers the shared store, write-behind",
        "queue, and cross-broker combining; db.view.hits and",
        "db.view.invalidations count view serves and dirty-markings.",
    ]
    return "\n".join(lines)


def run_cache(args) -> str:
    """Describe the tier, or measure its backend-load reduction at scale."""
    if args.describe:
        return _describe_cache()
    clients = 60 if args.quick else args.clients
    duration = 5.0 if args.quick else args.duration
    runs = {}
    for enabled in (False, True):
        runs[enabled] = run_cache_tier_experiment(
            n_clients=clients,
            brokers=args.brokers,
            duration=duration,
            tier=enabled,
            views=not args.no_views,
            cache_ttl=args.ttl,
            seed=args.seed,
        )
    base, tier = runs[False], runs[True]
    reduction = base.backend_queries / max(tier.backend_queries, 1)
    rows = [
        {
            "mode": "local-caches" if not r.tier_enabled else "shared-tier",
            "requests": r.requests,
            "ok": r.ok,
            "backend_q": r.backend_queries,
            "cache_srv_pct": round(100.0 * r.cache_served_ratio, 1),
            "tier_hits": r.tier_hits,
            "view_hits": r.view_hits,
            "mean_ms": round(r.latency.mean * 1000, 2),
            "p99_ms": round(r.latency.p99 * 1000, 2),
        }
        for r in (base, tier)
    ]
    report = render_table(
        rows,
        title=f"Cross-request optimization tier — {clients} clients, "
        f"{args.brokers} brokers, {duration:g}s virtual, seed={args.seed}",
    )
    report += (
        "\n\n"
        f"backend-load reduction : {reduction:.2f}x "
        f"({base.backend_queries} -> {tier.backend_queries} statements)\n"
        f"shared tier            : hit ratio "
        f"{100.0 * tier.tier_hit_ratio:.1f}% among local misses\n"
        f"combining              : batches={tier.combine_batches} "
        f"remote_items={tier.combine_remote_items} "
        f"yields={tier.combine_yields}\n"
        f"write-behind           : accepted={tier.write_behind_accepted} "
        f"flushed={tier.write_behind_flushed} "
        f"overflow={tier.write_behind_overflow} (overflow -> write-through)"
    )
    if args.summary_out:
        payload = {
            "clients": clients,
            "brokers": args.brokers,
            "duration": duration,
            "seed": args.seed,
            "reduction": reduction,
            "modes": {
                name: {
                    "requests": r.requests,
                    "ok": r.ok,
                    "errors": r.errors,
                    "timeouts": r.timeouts,
                    "backend_queries": r.backend_queries,
                    "from_cache": r.from_cache,
                    "local_hits": r.local_hits,
                    "tier_hits": r.tier_hits,
                    "tier_hit_ratio": r.tier_hit_ratio,
                    "view_hits": r.view_hits,
                    "combine_batches": r.combine_batches,
                    "combine_remote_items": r.combine_remote_items,
                    "combine_yields": r.combine_yields,
                    "write_behind_accepted": r.write_behind_accepted,
                    "write_behind_flushed": r.write_behind_flushed,
                    "write_behind_overflow": r.write_behind_overflow,
                    "mean_latency": r.latency.mean,
                    "p99_latency": r.latency.p99,
                }
                for name, r in (("local-caches", base), ("shared-tier", tier))
            },
        }
        with open(args.summary_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        report += f"\n\nsummary written to {args.summary_out}"
    return report


def run_bench(args) -> str:
    """Run the performance suite; see :mod:`repro.bench`."""
    from .bench import run_bench_command

    return run_bench_command(
        quick=args.quick,
        profile=args.profile,
        out=args.out,
        baseline_path=args.baseline,
        max_regression=args.max_regression,
        suite=args.suite,
        profile_out=args.profile_out,
    )


def run_obs(args) -> str:
    """Run the tracing toolkit; see :mod:`repro.obs.inspect`."""
    from .obs import describe_obs, run_obs_command

    if args.describe:
        return describe_obs()
    return run_obs_command(
        scenario=args.scenario,
        clients=args.clients,
        duration=args.duration,
        degree=args.degree,
        trace_sample=args.trace_sample,
        slowest=args.slowest,
        export=args.export,
        jsonl=args.jsonl,
        quick=args.quick,
        seed=args.seed,
    )


def run_telemetry(args) -> str:
    """Run the telemetry tier; see :mod:`repro.obs.telemetry`."""
    from .obs import describe_telemetry, run_telemetry_command

    if args.describe:
        return describe_telemetry()
    lines: list = []
    run_telemetry_command(
        scenario=args.scenario,
        clients=args.clients,
        duration=args.duration,
        interval=args.interval,
        seed=args.seed,
        shards=args.shards,
        replicas=args.replicas,
        slo=args.slo,
        dashboard=args.dashboard,
        export=args.export,
        quick=args.quick,
        emit=lines.append,
    )
    return "\n".join(lines)


_COMMANDS = {
    "fig7": run_fig7,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "table1": run_table1,
    "drops": run_drops,
    "pipeline": run_pipeline,
    "faults": run_faults,
    "shard": run_shard,
    "bench": run_bench,
    "obs": run_obs,
    "chaos": run_chaos,
    "cache": run_cache,
    "telemetry": run_telemetry,
    "autoscale": run_autoscale,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    from .bench import BenchRegression

    args = build_parser().parse_args(argv)
    try:
        print(_COMMANDS[args.command](args))
    except BenchRegression as regression:
        print(regression.report)
        print(f"FAILED: {regression}", file=sys.stderr)
        return 1
    except ChaosInvariantFailure as failure:
        print(failure.report)
        print(f"FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
