"""HTTP message model.

Requests and responses are plain dataclasses passed over stream
connections. Only what the experiments need is modeled: methods GET,
POST, and the batched MGET from the paper's clustering discussion
(Franks' 1994 MGET proposal: ``MGET URI:1.html URI:2.html``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, FrozenSet, Mapping, Tuple

__all__ = ["HttpRequest", "HttpResponse", "STATUS_REASONS"]

STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True, slots=True)
class HttpRequest:
    """One HTTP request.

    ``params`` carries decoded query-string / form parameters. For MGET,
    ``paths`` holds the batched URIs and ``path`` is ignored.

    ``context`` is the per-request
    :class:`~repro.core.pipeline.RequestContext` the front-end web
    server attaches at arrival (applications read it to link their
    broker calls to the HTTP request). Like a trace header, it is
    excluded from equality, repr, and simulated wire size.
    """

    #: Dataclass fields that contribute no simulated wire bytes.
    __nonwire_fields__: ClassVar[FrozenSet[str]] = frozenset({"context"})

    method: str
    path: str
    params: Mapping[str, Any] = field(default_factory=dict)
    headers: Mapping[str, str] = field(default_factory=dict)
    body: str = ""
    paths: Tuple[str, ...] = ()
    context: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.method not in ("GET", "POST", "MGET"):
            raise ValueError(f"unsupported method: {self.method!r}")
        if self.method == "MGET" and not self.paths:
            raise ValueError("MGET requires at least one path")

    def param(self, name: str, default: Any = None) -> Any:
        """The request parameter *name*, or *default*."""
        return self.params.get(name, default)


@dataclass(frozen=True, slots=True)
class HttpResponse:
    """One HTTP response.

    For MGET responses, ``parts`` maps each requested path to its own
    :class:`HttpResponse` and ``body`` is empty.
    """

    status: int
    body: str = ""
    headers: Mapping[str, str] = field(default_factory=dict)
    parts: Tuple[Tuple[str, "HttpResponse"], ...] = ()

    @property
    def reason(self) -> str:
        return STATUS_REASONS.get(self.status, "Unknown")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @staticmethod
    def text(body: str, status: int = 200) -> "HttpResponse":
        """Convenience constructor for a plain-text response."""
        return HttpResponse(status=status, body=body)

    @staticmethod
    def error(status: int, message: str = "") -> "HttpResponse":
        """Convenience constructor for an error response."""
        return HttpResponse(status=status, body=message or STATUS_REASONS.get(status, ""))
