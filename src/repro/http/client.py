"""HTTP client over the simulated network.

Two usage modes mirror the paper's two access models:

* :meth:`HttpClient.fetch` — one-shot: connect, request, response,
  close (what a per-request API call costs);
* :meth:`HttpClient.open` → :class:`HttpConnection` — persistent
  keep-alive connection (what a broker holds to its backend).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ProtocolError
from ..net.address import Address
from ..net.network import Node
from ..net.transport import StreamConnection
from ..sim.core import Simulation
from .messages import HttpRequest, HttpResponse

__all__ = ["HttpClient", "HttpConnection"]


class HttpConnection:
    """A persistent (keep-alive) connection to a web server."""

    def __init__(self, sim: Simulation, stream: StreamConnection) -> None:
        self.sim = sim
        self._stream = stream

    @property
    def closed(self) -> bool:
        return self._stream.closed

    def request(self, request: HttpRequest):
        """Send *request*, await the response; a ``yield from`` generator."""
        self._stream.send(request)
        envelope = yield self._stream.recv()
        response = envelope.payload
        if not isinstance(response, HttpResponse):
            raise ProtocolError(f"expected HttpResponse, got {response!r}")
        return response

    def get(self, path: str, params: Optional[dict] = None):
        """Shorthand for a GET request."""
        return self.request(HttpRequest(method="GET", path=path, params=params or {}))

    def mget(self, paths: Sequence[str], params: Optional[dict] = None):
        """Shorthand for an MGET batch request."""
        return self.request(
            HttpRequest(
                method="MGET", path="", paths=tuple(paths), params=params or {}
            )
        )

    def close(self) -> None:
        """Close the connection (the server sees EOF)."""
        self._stream.close()


class HttpClient:
    """Factory for HTTP exchanges."""

    @staticmethod
    def open(sim: Simulation, node: Node, address: Address):
        """Open a persistent connection; ``yield from`` this generator."""
        stream = yield from node.connect_stream(address)
        return HttpConnection(sim, stream)

    @staticmethod
    def fetch(sim: Simulation, node: Node, address: Address, request: HttpRequest):
        """One-shot exchange with per-request connection setup/teardown."""
        connection = yield from HttpClient.open(sim, node, address)
        try:
            response = yield from connection.request(request)
        finally:
            connection.close()
        return response

    @staticmethod
    def get(sim: Simulation, node: Node, address: Address, path: str, params=None):
        """One-shot GET."""
        return HttpClient.fetch(
            sim, node, address, HttpRequest(method="GET", path=path, params=params or {})
        )
