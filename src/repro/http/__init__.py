"""HTTP layer: message model, backend web server, client."""

from .client import HttpClient, HttpConnection
from .messages import STATUS_REASONS, HttpRequest, HttpResponse
from .server import BackendWebServer

__all__ = [
    "HttpClient",
    "HttpConnection",
    "HttpRequest",
    "HttpResponse",
    "STATUS_REASONS",
    "BackendWebServer",
]
