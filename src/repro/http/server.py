"""The backend web server.

An Apache-like server with a bounded worker pool: at most ``max_clients``
requests are processed simultaneously, the rest queue FCFS (this cap —
set to 5 in the paper's experiments — is what turns the backend into the
bottleneck). Serves:

* static resources registered with :meth:`add_static`,
* CGI handlers registered with :meth:`add_cgi` — generator functions
  ``handler(server, request)`` that may wait on simulation events
  (bounded processing time, their own database queries, ...) and return
  an :class:`HttpResponse` or a body string,
* ``MGET`` batches: the requested paths are served sequentially within a
  single worker slot and returned as one multipart response.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from ..errors import ConnectionClosed, HttpError
from ..metrics import MetricsRegistry
from ..net.network import Node
from ..net.transport import StreamConnection
from ..sim.core import Simulation
from ..sim.resources import Resource
from .messages import HttpRequest, HttpResponse

__all__ = ["BackendWebServer"]

#: Default HTTP port.
DEFAULT_PORT = 80

CgiHandler = Callable[["BackendWebServer", HttpRequest], object]


class BackendWebServer:
    """A capacity-limited web server with static and CGI resources."""

    def __init__(
        self,
        sim: Simulation,
        node: Node,
        port: int = DEFAULT_PORT,
        max_clients: int = 5,
        backlog: Optional[int] = None,
        static_service_time: float = 0.0005,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.node = node
        self.name = name or node.name
        self.static_service_time = static_service_time
        #: Service-time multiplier, 1.0 when healthy; a slow-backend
        #: fault window (:class:`~repro.net.faults.SlowBackend`) raises
        #: it. Static serving honours it directly; CGI handlers that
        #: model processing time should multiply their waits by it.
        self.service_time_scale = 1.0
        self.metrics = metrics or MetricsRegistry()
        self.workers = Resource(sim, max_clients)
        self.listener = node.listen_stream(port, backlog=backlog)
        self.address = node.address(port)
        self._port = port
        self._backlog = backlog
        self._static: Dict[str, str] = {}
        self._cgi: Dict[str, CgiHandler] = {}
        # Insertion-ordered (dict, not set) so crash() severs sessions
        # deterministically.
        self._sessions: Dict[StreamConnection, None] = {}
        sim.process(self._accept_loop(), name=f"http:{self.name}")

    # -- resource registration ------------------------------------------

    def add_static(self, path: str, body: str) -> None:
        """Register a static document at *path*."""
        self._static[path] = body

    def add_cgi(self, path: str, handler: CgiHandler) -> None:
        """Register a CGI generator function at *path*."""
        self._cgi[path] = handler

    # -- load inspection --------------------------------------------------

    @property
    def active_requests(self) -> int:
        """Requests currently holding a worker slot."""
        return self.workers.in_use

    @property
    def queued_requests(self) -> int:
        """Requests waiting for a worker slot."""
        return self.workers.queued

    # -- serving ---------------------------------------------------------

    def _accept_loop(self):
        while True:
            try:
                connection = yield self.listener.accept()
            except ConnectionClosed:
                return
            self.metrics.increment("http.connections")
            self.sim.process(self._session(connection))

    def _session(self, connection: StreamConnection):
        self._sessions[connection] = None
        try:
            yield from self._serve_session(connection)
        finally:
            self._sessions.pop(connection, None)

    def _serve_session(self, connection: StreamConnection):
        while True:
            try:
                envelope = yield connection.recv()
            except ConnectionClosed:
                return
            request = envelope.payload
            if not isinstance(request, HttpRequest):
                connection.send(HttpResponse.error(400, "not an HttpRequest"))
                continue
            worker = self.workers.request()
            yield worker
            self.metrics.increment("http.requests")
            try:
                if request.method == "MGET":
                    response = yield from self._serve_mget(request)
                else:
                    response = yield from self._serve_one(request)
            finally:
                self.workers.release(worker)
            if connection.closed:
                return
            connection.send(response)

    def _serve_mget(self, request: HttpRequest):
        """Serve each path of an MGET batch sequentially in one slot."""
        parts = []
        for path in request.paths:
            single = HttpRequest(
                method="GET",
                path=path,
                params=request.params,
                headers=request.headers,
            )
            response = yield from self._serve_one(single)
            parts.append((path, response))
        self.metrics.increment("http.mget_batches")
        return HttpResponse(status=206, parts=tuple(parts))

    def _serve_one(self, request: HttpRequest):
        handler = self._cgi.get(request.path)
        if handler is not None:
            self.metrics.increment("http.cgi_requests")
            try:
                outcome = handler(self, request)
                if hasattr(outcome, "send"):  # a generator: run it inline
                    outcome = yield from outcome
            except HttpError as exc:
                self.metrics.increment("http.errors")
                return HttpResponse.error(exc.status, exc.reason)
            except Exception as exc:  # noqa: BLE001 - CGI bugs become 500s
                self.metrics.increment("http.errors")
                return HttpResponse.error(500, f"{type(exc).__name__}: {exc}")
            if isinstance(outcome, HttpResponse):
                return outcome
            return HttpResponse.text(str(outcome))
        body = self._static.get(request.path)
        if body is not None:
            yield self.static_service_time * self.service_time_scale
            return HttpResponse.text(body)
        self.metrics.increment("http.errors")
        return HttpResponse.error(404, f"no resource at {request.path!r}")

    def close(self) -> None:
        """Stop accepting new connections (existing sessions survive)."""
        self.listener.close()

    def crash(self) -> None:
        """Simulate a server crash: stop listening AND sever every live
        session. Peers see :class:`ConnectionClosed`; in-flight requests
        are lost, as they would be on a real process kill. Recoverable
        with :meth:`restart`."""
        self.listener.close()
        self.metrics.increment("http.crashes")
        for connection in list(self._sessions):
            connection.abort()
        self._sessions.clear()

    def restart(self) -> None:
        """Recover from :meth:`crash`: rebind the listener, accept again.

        A no-op while the server is still listening. Resources and
        handlers survive the restart (the process comes back with the
        same configuration); connections do not.
        """
        if not self.listener.closed:
            return
        self.listener = self.node.listen_stream(self._port, backlog=self._backlog)
        self.metrics.increment("http.restarts")
        self.sim.process(self._accept_loop(), name=f"http:{self.name}")

    def __repr__(self) -> str:
        return (
            f"<BackendWebServer {self.address} active={self.active_requests} "
            f"queued={self.queued_requests}>"
        )
