"""Tests for the elastic-pool headline and scale-chaos experiments."""

from __future__ import annotations

import json

import pytest

from repro.workload import (
    run_autoscale_experiment,
    run_scale_chaos_experiment,
)


@pytest.fixture(scope="module")
def quick_headline():
    return run_autoscale_experiment(duration=120.0, seed=2026)


@pytest.fixture(scope="module")
def quick_soak():
    return run_scale_chaos_experiment(
        duration=120.0, min_scale_ins=8, min_mid_drain_kills=1, seed=2026
    )


class TestAutoscaleHeadline:
    def test_pool_tracked_the_swing(self, quick_headline):
        result = quick_headline
        assert result.scale_outs >= 3
        assert result.scale_ins >= 3
        assert result.drains_completed == result.scale_ins
        assert result.peak_size > result.min_size
        assert result.provisioned == len(result.residue)

    def test_invariants_hold(self, quick_headline):
        result = quick_headline
        names = {check.name for check in result.invariants}
        assert names == {
            "premium-p99",
            "pool-efficiency",
            "elasticity",
            "throttle-containment",
            "no-lost-request",
        }
        for check in result.invariants:
            assert check.passed, f"{check.name}: {check.detail}"
        assert result.all_invariants_hold

    def test_throttle_refusals_are_contained_and_not_lost(self, quick_headline):
        result = quick_headline
        # The flash-crowd tenant is refused; premium never is.
        assert result.tenants["burst"]["throttled"] > 0
        assert result.tenants["premium"]["throttled"] == 0
        # Refusals are terminal outcomes, distinct from capacity drops,
        # and excluded from the availability denominator.
        assert result.throttled >= result.tenants["burst"]["throttled"]
        assert result.availability >= 0.99

    def test_deterministic_per_seed(self, quick_headline):
        again = run_autoscale_experiment(duration=120.0, seed=2026)
        assert again.to_summary() == quick_headline.to_summary()

    def test_summary_is_json_safe(self, quick_headline):
        payload = quick_headline.to_summary()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["invariants"]

    def test_rejects_degenerate_swing(self):
        with pytest.raises(ValueError):
            run_autoscale_experiment(duration=1.0, swing=1.0)


class TestScaleChaosSoak:
    def test_schedule_produces_drains_under_fire(self, quick_soak):
        result = quick_soak
        assert result.scale_ins >= 8
        assert result.drains_completed == result.scale_ins
        assert result.mid_drain_kills >= 1
        assert result.drain_interrupted >= result.mid_drain_kills
        assert result.crashes == result.restarts == result.mid_drain_kills

    def test_invariants_hold(self, quick_soak):
        result = quick_soak
        names = {check.name for check in result.invariants}
        assert names == {
            "no-lost-request",
            "scale-in-coverage",
            "drain-completion",
            "pool-bounds",
            "post-crash-consistency",
            "availability-floor",
        }
        for check in result.invariants:
            assert check.passed, f"{check.name}: {check.detail}"
        assert result.all_invariants_hold

    def test_no_residue_on_any_unit_ever_provisioned(self, quick_soak):
        result = quick_soak
        assert result.provisioned == len(result.residue)
        for name, residue in result.residue.items():
            assert all(value == 0 for value in residue.values()), name

    def test_deterministic_per_seed(self, quick_soak):
        again = run_scale_chaos_experiment(
            duration=120.0, min_scale_ins=8, min_mid_drain_kills=1, seed=2026
        )
        assert again.to_summary() == quick_soak.to_summary()

    def test_summary_is_json_safe(self, quick_soak):
        payload = quick_soak.to_summary()
        assert json.loads(json.dumps(payload)) == payload
