"""Integration tests for the paper's two testbeds (scaled-down runs)."""

from __future__ import annotations

import pytest

from repro.workload import run_clustering_experiment, run_qos_experiment
from repro.workload.scenarios import run_sharded_qos_experiment


class TestClusteringScenario:
    def test_degree_one_serves_every_request_individually(self):
        result = run_clustering_experiment(degree=1, n_requests=10, seed=1)
        assert result.errors == 0
        assert result.backend_calls == 10
        assert result.mean_response_time > 0

    def test_clustering_reduces_backend_calls(self):
        result = run_clustering_experiment(degree=5, n_requests=10, seed=1)
        assert result.errors == 0
        assert result.backend_calls < 10

    def test_moderate_clustering_beats_no_clustering(self):
        # The headline Figure-7 effect at its design point (degree ~= n/capacity).
        unclustered = run_clustering_experiment(degree=1, n_requests=40, seed=1)
        clustered = run_clustering_experiment(degree=8, n_requests=40, seed=1)
        assert clustered.mean_response_time < unclustered.mean_response_time

    def test_extreme_clustering_overshoots(self):
        # Serializing all 40 requests into one giant call is slower than
        # the sweet spot — the right side of the U.
        sweet = run_clustering_experiment(degree=8, n_requests=40, seed=1)
        extreme = run_clustering_experiment(degree=40, n_requests=40, seed=1)
        assert extreme.mean_response_time > sweet.mean_response_time

    def test_determinism(self):
        a = run_clustering_experiment(degree=4, n_requests=10, seed=7)
        b = run_clustering_experiment(degree=4, n_requests=10, seed=7)
        assert a.mean_response_time == b.mean_response_time

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            run_clustering_experiment(degree=0)


class TestQosScenario:
    def test_api_mode_has_no_differentiation(self):
        result = run_qos_experiment(9, mode="api", duration=40.0, seed=3)
        # All classes complete everything at full fidelity.
        assert result.full_fidelity == result.completions
        times = [result.mean_response_of(level) for level in (1, 2, 3)]
        assert max(times) - min(times) < 1.0

    def test_light_load_no_drops(self):
        result = run_qos_experiment(9, mode="broker", duration=40.0, seed=3)
        for broker_drops in result.drop_ratios.values():
            assert all(ratio == 0.0 for ratio in broker_drops.values())

    def test_overload_drops_ordered_by_class(self):
        result = run_qos_experiment(45, mode="broker", duration=60.0, seed=3)
        total_drops = {
            level: sum(d[level] for d in result.drop_ratios.values())
            for level in (1, 2, 3)
        }
        assert total_drops[3] > 0
        assert total_drops[3] >= total_drops[2] >= total_drops[1]

    def test_overload_response_times_ordered_by_class(self):
        result = run_qos_experiment(45, mode="broker", duration=60.0, seed=3)
        # Full-service class 1 keeps the longest (highest-fidelity)
        # processing time; shed class 3 answers fastest on average.
        assert result.mean_response_of(1) > result.mean_response_of(3)

    def test_lower_classes_complete_more_under_overload(self):
        result = run_qos_experiment(45, mode="broker", duration=60.0, seed=3)
        assert result.completions[3] > result.completions[1]

    def test_api_scales_linearly_broker_saturates(self):
        api_small = run_qos_experiment(9, mode="api", duration=40.0, seed=3)
        api_large = run_qos_experiment(36, mode="api", duration=40.0, seed=3)
        ratio = api_large.mean_response_time / api_small.mean_response_time
        assert ratio > 2.0  # closed-loop FCFS: roughly proportional to N

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            run_qos_experiment(9, mode="magic")
        with pytest.raises(ValueError):
            run_qos_experiment(2, mode="api")


class TestCentralizedQosScenario:
    def test_light_load_admits_everything(self):
        result = run_qos_experiment(9, mode="centralized", duration=40.0, seed=3)
        assert sum(result.frontend_rejections.values()) == 0
        assert result.full_fidelity == result.completions

    def test_overload_rejects_at_the_front_door(self):
        result = run_qos_experiment(45, mode="centralized", duration=60.0, seed=3)
        rejections = result.frontend_rejections
        assert sum(rejections.values()) > 100
        # Rejections class-ordered; brokers themselves shed nothing.
        assert rejections[3] >= rejections[2] >= rejections[1]
        for drops in result.drop_ratios.values():
            assert all(ratio == 0.0 for ratio in drops.values())

    def test_aborted_before_processing(self):
        """Rejected requests never consume backend capacity: full-fidelity
        throughput stays near the broker mode's."""
        centralized = run_qos_experiment(45, mode="centralized", duration=60.0, seed=3)
        broker = run_qos_experiment(45, mode="broker", duration=60.0, seed=3)
        served_c = sum(centralized.full_fidelity.values())
        served_b = sum(broker.full_fidelity.values())
        assert served_c > 0.5 * served_b


class TestCacheTierScenario:
    def test_tier_reduces_backend_load(self):
        from repro.workload import run_cache_tier_experiment

        base = run_cache_tier_experiment(
            n_clients=30, brokers=3, duration=3.0, tier=False, seed=7
        )
        tier = run_cache_tier_experiment(
            n_clients=30, brokers=3, duration=3.0, tier=True, seed=7
        )
        assert base.errors == 0 and tier.errors == 0
        assert not base.tier_enabled and tier.tier_enabled
        # The headline effect: the shared tier absorbs backend refetches
        # that per-broker caches each pay for separately.
        assert tier.backend_queries < base.backend_queries
        assert tier.tier_hits > 0
        assert tier.view_hits > 0
        assert base.tier_hits == 0 and base.view_hits == 0
        # Write-behind ran and the flush queue drained cleanly.
        assert tier.write_behind_flushed > 0
        assert 0.0 < tier.tier_hit_ratio <= 1.0

    def test_accounting_is_consistent(self):
        from repro.workload import run_cache_tier_experiment

        result = run_cache_tier_experiment(
            n_clients=20, brokers=2, duration=2.0, tier=True, seed=5
        )
        assert result.requests >= result.ok
        assert result.from_cache <= result.ok
        assert result.local_hits + result.local_misses > 0
        assert result.latency.count == result.ok

    def test_deterministic_at_fixed_seed(self):
        from repro.workload import run_cache_tier_experiment

        first = run_cache_tier_experiment(
            n_clients=20, brokers=2, duration=2.0, tier=True, seed=9
        )
        second = run_cache_tier_experiment(
            n_clients=20, brokers=2, duration=2.0, tier=True, seed=9
        )
        assert first.backend_queries == second.backend_queries
        assert first.requests == second.requests
        assert first.latency.mean == second.latency.mean


class TestFleetWideHistograms:
    """Satellite: LatencyHistogram.merge() through the parallel driver."""

    KW = dict(shards=4, replicas=1, duration=30.0, seed=11)

    def test_serial_run_populates_per_class_histograms(self):
        result = run_sharded_qos_experiment(12, workers=1, **self.KW)
        assert set(result.latency_histograms) == set(result.completions)
        for level, histogram in result.latency_histograms.items():
            assert histogram.count == result.response_times[level].count

    def test_parallel_merge_is_consistent_with_own_stats(self):
        # The partitioned run is not a serial replay (see DESIGN.md
        # §14), so the fleet-wide merged histogram is checked against
        # the same run's SummaryStats, not the serial histograms.
        parallel = run_sharded_qos_experiment(12, workers=2, **self.KW)
        assert set(parallel.latency_histograms) == set(parallel.completions)
        for level, histogram in parallel.latency_histograms.items():
            stats = parallel.response_times[level]
            assert histogram.count == stats.count
            assert histogram.minimum == pytest.approx(stats.minimum)
            assert histogram.maximum == pytest.approx(stats.maximum)

    def test_histogram_p99_tracks_summary_stats(self):
        result = run_sharded_qos_experiment(12, workers=1, **self.KW)
        for level, stats in result.response_times.items():
            p99 = result.histogram_p99(level)
            # Bucket-interpolated p99 must bracket the exact range.
            assert stats.minimum <= p99 <= stats.maximum * 1.01

    def test_worker_count_does_not_change_histogram(self):
        two = run_sharded_qos_experiment(12, workers=2, **self.KW)
        three = run_sharded_qos_experiment(12, workers=3, **self.KW)
        for level in two.latency_histograms:
            assert list(two.latency_histograms[level].counts) == list(
                three.latency_histograms[level].counts
            )


class TestTelemetryWiring:
    def test_parallel_run_with_telemetry_rejected(self):
        from repro.obs import TelemetryScraper

        with pytest.raises(ValueError, match="workers=1"):
            run_sharded_qos_experiment(
                12,
                workers=2,
                telemetry=TelemetryScraper(),
                **TestFleetWideHistograms.KW,
            )

    def test_serial_sharded_run_scrapes_broker_and_listener(self):
        from repro.obs import TelemetryScraper

        scraper = TelemetryScraper(interval=1.0)
        run_sharded_qos_experiment(
            12,
            mode="centralized",
            workers=1,
            telemetry=scraper,
            **TestFleetWideHistograms.KW,
        )
        names = sorted(scraper.series)
        assert any(n.startswith("broker.load.") for n in names)
        assert any(n.startswith("shard.load.") for n in names)
        assert scraper.scrapes == 30
