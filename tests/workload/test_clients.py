"""Tests for workload generators."""

from __future__ import annotations

import math

import pytest

from repro.sim import Simulation
from repro.workload import BurstClient, ClosedLoopClient, OpenLoopGenerator, zipf_sampler


def make_request_factory(sim, duration):
    def factory(_client, _iteration):
        yield sim.timeout(duration)

    return factory


class TestClosedLoopClient:
    def test_loops_until_deadline(self, sim):
        client = ClosedLoopClient(sim, "c", make_request_factory(sim, 1.0))
        client.start(until=10.0)
        sim.run()
        assert client.completed == 10
        assert client.response_times.mean == pytest.approx(1.0)

    def test_think_time_slows_loop(self, sim):
        client = ClosedLoopClient(
            sim, "c", make_request_factory(sim, 1.0), think_time=1.0
        )
        client.start(until=10.0)
        sim.run()
        assert client.completed == 5

    def test_start_delay(self, sim):
        client = ClosedLoopClient(
            sim, "c", make_request_factory(sim, 1.0), start_delay=5.0
        )
        client.start(until=10.0)
        sim.run()
        assert client.completed == 5

    def test_errors_counted_and_loop_continues(self, sim):
        calls = {"n": 0}

        def flaky(_client, iteration):
            calls["n"] += 1
            yield sim.timeout(1.0)
            if iteration % 2 == 0:
                raise RuntimeError("flaky")

        client = ClosedLoopClient(sim, "c", flaky)
        client.start(until=10.0)
        sim.run()
        assert client.errors == 5
        assert client.completed == 5
        assert calls["n"] == 10


class TestBurstClient:
    def test_respects_concurrency(self, sim):
        active = {"now": 0, "peak": 0}

        def tracked(_client, _index):
            active["now"] += 1
            active["peak"] = max(active["peak"], active["now"])
            yield sim.timeout(1.0)
            active["now"] -= 1

        burst = BurstClient(sim, "b", tracked, total=10, concurrency=3)
        stats = sim.run(burst.run())
        assert stats.count == 10
        assert active["peak"] == 3

    def test_all_requests_complete(self, sim):
        burst = BurstClient(sim, "b", make_request_factory(sim, 0.5), total=7, concurrency=7)
        stats = sim.run(burst.run())
        assert stats.count == 7
        assert sim.now == pytest.approx(0.5)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            BurstClient(sim, "b", make_request_factory(sim, 1), total=0, concurrency=1)


class TestOpenLoopGenerator:
    def test_rate_approximately_honored(self):
        sim = Simulation(seed=5)
        generator = OpenLoopGenerator(sim, "g", make_request_factory(sim, 0.01), rate=50.0)
        generator.start(until=20.0)
        sim.run()
        assert 800 < generator.issued < 1200  # 50/s for 20s = 1000 expected

    def test_arrivals_independent_of_completions(self):
        sim = Simulation(seed=5)
        # Each request takes far longer than the inter-arrival gap.
        generator = OpenLoopGenerator(sim, "g", make_request_factory(sim, 100.0), rate=10.0)
        generator.start(until=5.0)
        sim.run(until=5.0)
        assert generator.issued > 20

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            OpenLoopGenerator(sim, "g", make_request_factory(sim, 1), rate=0)


class TestZipfSampler:
    def test_rank_zero_most_popular(self):
        sim = Simulation(seed=3)
        sample = zipf_sampler(sim.rng("zipf"), n=100, skew=1.0)
        counts = [0] * 100
        for _ in range(20_000):
            counts[sample()] += 1
        assert counts[0] > counts[10] > counts[99]
        # Zipf(1): rank 0 should get roughly 1/H(100) ~ 19% of draws.
        assert 0.12 < counts[0] / 20_000 < 0.30

    def test_all_ranks_in_range(self):
        sim = Simulation(seed=3)
        sample = zipf_sampler(sim.rng("z2"), n=5, skew=2.0)
        assert all(0 <= sample() < 5 for _ in range(1000))

    def test_single_item(self):
        sim = Simulation(seed=3)
        sample = zipf_sampler(sim.rng("z3"), n=1)
        assert sample() == 0

    def test_validation(self):
        sim = Simulation(seed=3)
        with pytest.raises(ValueError):
            zipf_sampler(sim.rng("z4"), n=0)
