"""Tests for the chaos-soak and overload testbeds."""

from __future__ import annotations

import pytest

from repro.workload import (
    run_chaos_experiment,
    run_overload_experiment,
)


@pytest.fixture(scope="module")
def quick_soak():
    return run_chaos_experiment(duration=90.0, seed=2026)


class TestChaosSoak:
    def test_schedule_produces_chaos(self, quick_soak):
        result = quick_soak
        assert result.crashes >= 2
        assert result.restarts == result.crashes
        assert result.link_faults >= 1
        assert result.spike_requests > 0
        assert result.requests > 1000

    def test_invariants_hold(self, quick_soak):
        result = quick_soak
        assert len(result.invariants) == 4
        names = {check.name for check in result.invariants}
        assert names == {
            "no-lost-request",
            "post-crash-consistency",
            "queue-bound",
            "availability-floor",
        }
        for check in result.invariants:
            assert check.passed, f"{check.name}: {check.detail}"
        assert result.all_invariants_hold
        assert result.availability >= 0.99

    def test_both_recovery_paths_exercised(self, quick_soak):
        result = quick_soak
        # Slow crashes: the supervisor detects and fails fast.
        assert result.detected > 0
        assert result.failed_fast > 0
        # Blip crashes heal under the detection window: restart replays.
        assert result.replayed > 0

    def test_queue_bound_and_shedding(self, quick_soak):
        result = quick_soak
        assert result.shed_total > 0
        for name, depth in result.peak_depths.items():
            assert depth <= result.capacity, name

    def test_deterministic_per_seed(self, quick_soak):
        again = run_chaos_experiment(duration=90.0, seed=2026)
        assert again.to_summary() == quick_soak.to_summary()

    def test_summary_is_json_safe(self, quick_soak):
        import json

        payload = quick_soak.to_summary()
        assert json.loads(json.dumps(payload)) == payload

    def test_rejects_unknown_recovery_policy(self):
        with pytest.raises(ValueError):
            run_chaos_experiment(duration=1.0, recovery_policy="pray")


class TestOverloadExperiment:
    def test_bounded_protects_premium_goodput(self):
        bounded = run_overload_experiment(
            saturation=2.5, bounded=True, duration=10.0, drain=30.0, seed=2026
        )
        unbounded = run_overload_experiment(
            saturation=2.5, bounded=False, duration=10.0, drain=30.0, seed=2026
        )
        assert bounded.peak_depth <= bounded.capacity
        assert bounded.shed > 0
        assert unbounded.peak_depth > bounded.capacity
        # Shedding the lower classes keeps premium latency sane while
        # the unbounded FCFS queue drags every class down together.
        assert unbounded.premium_p99() > bounded.premium_p99()
        assert bounded.premium_goodput >= unbounded.premium_goodput

    def test_every_arrival_gets_a_terminal_reply(self):
        result = run_overload_experiment(
            saturation=2.0, bounded=True, duration=10.0, drain=30.0, seed=7
        )
        for level, issued in result.issued.items():
            answered = (
                result.ok[level] + result.degraded[level] + result.dropped[level]
            )
            assert answered == issued, f"class {level}"
