"""Sanity tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            errors.SimError,
            errors.EventAlreadyTriggered,
            errors.EventNotTriggered,
            errors.Interrupt,
            errors.NetworkError,
            errors.NoRouteError,
            errors.AddressInUse,
            errors.ConnectionRefused,
            errors.ConnectionClosed,
            errors.ServiceError,
            errors.ProtocolError,
            errors.QueryError,
            errors.SqlSyntaxError,
            errors.UnknownTableError,
            errors.UnknownColumnError,
            errors.FilterSyntaxError,
            errors.NoSuchEntryError,
            errors.MailboxError,
            errors.HttpError,
            errors.BrokerError,
            errors.AdmissionRejected,
            errors.BrokerTimeout,
            errors.UnknownServiceError,
        ],
    )
    def test_everything_is_a_repro_error(self, exc_class):
        assert issubclass(exc_class, errors.ReproError)

    def test_stop_simulation_is_internal_not_repro_error(self):
        assert not issubclass(errors.StopSimulation, errors.ReproError)

    def test_interrupt_cause(self):
        assert errors.Interrupt("why").cause == "why"
        assert errors.Interrupt().cause is None

    def test_http_error_carries_status(self):
        exc = errors.HttpError(503, "busy")
        assert exc.status == 503
        assert "503" in str(exc)
        assert "busy" in str(exc)

    def test_admission_rejected_carries_reason(self):
        exc = errors.AdmissionRejected("qos-threshold")
        assert exc.reason == "qos-threshold"

    def test_query_errors_are_service_errors(self):
        # Brokers catch ServiceError to turn backend failures into
        # ERROR replies; SQL errors must be inside that family.
        assert issubclass(errors.SqlSyntaxError, errors.ServiceError)
        assert issubclass(errors.UnknownTableError, errors.ServiceError)
