"""Tests for the disk model, filesystem, and file server."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.fileserver import DiskModel, FileClient, FileServer, FileSystem
from repro.sim import Simulation


class TestDiskModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            DiskModel(total_blocks=0)
        with pytest.raises(ValueError):
            DiskModel(per_operation=-1)

    def test_seek_time_proportional_to_distance(self):
        disk = DiskModel(total_blocks=1000, full_seek=0.010)
        assert disk.seek_time(500) == pytest.approx(0.005)
        assert disk.seek_time(0) == 0.0

    def test_access_moves_head_and_accounts(self):
        disk = DiskModel(total_blocks=1000, per_operation=0.001,
                         full_seek=0.010, per_block_transfer=0.0001)
        time = disk.access(100, 10)
        assert time == pytest.approx(0.001 + 0.010 * 100 / 1000 + 0.001)
        assert disk.head == 109
        assert disk.seeks == 1
        assert disk.blocks_read == 10

    def test_sequential_access_needs_no_seek(self):
        disk = DiskModel(total_blocks=1000)
        disk.access(0, 10)
        before = disk.seeks
        disk.access(10, 10)  # head is at 9; 1-block hop counts as a seek
        disk.access(20, 10)
        assert disk.seeks - before == 2
        assert disk.total_seek_distance <= 2

    def test_out_of_range_rejected(self):
        disk = DiskModel(total_blocks=100)
        with pytest.raises(ValueError):
            disk.access(100, 1)
        with pytest.raises(ValueError):
            disk.access(0, 0)


class TestFileSystem:
    def test_contiguous_allocation(self):
        fs = FileSystem(total_blocks=1000)
        fs.create("a", 100)
        fs.create("b", 50)
        assert fs.extents_of("a")[0].start == 0
        assert fs.extents_of("b")[0].start == 100
        assert fs.size_of("b") == 50
        assert fs.listing() == ["a", "b"]

    def test_fragmented_allocation_scatters(self):
        sim = Simulation(seed=4)
        fs = FileSystem(total_blocks=10_000)
        fs.create("frag", 64, fragmented=True, extent_size=8, rng=sim.rng("fs"))
        extents = fs.extents_of("frag")
        assert len(extents) == 8
        assert fs.size_of("frag") == 64
        starts = [e.start for e in extents]
        assert max(starts) - min(starts) > 100  # genuinely scattered

    def test_fragmented_requires_rng(self):
        fs = FileSystem()
        with pytest.raises(ServiceError):
            fs.create("x", 8, fragmented=True)

    def test_full_filesystem(self):
        fs = FileSystem(total_blocks=10)
        fs.create("a", 8)
        with pytest.raises(ServiceError):
            fs.create("b", 8)

    def test_duplicate_and_missing(self):
        fs = FileSystem()
        fs.create("a", 1)
        with pytest.raises(ServiceError):
            fs.create("a", 1)
        with pytest.raises(ServiceError):
            fs.extents_of("ghost")


@pytest.fixture
def served_fs(sim, net):
    fs = FileSystem(total_blocks=10_000)
    fs.create("near", 16)
    fs.create("far", 16)
    # Force 'far' to the end of the disk for seek-ordering tests.
    fs._files["far"] = [type(fs.extents_of("near")[0])(9_000, 16)]
    server = FileServer(sim, net.node("nfs"), filesystem=fs, scheduler="elevator")
    return fs, server, net.node("app")


class TestFileServer:
    def test_read_round_trip(self, sim, served_fs):
        _fs, server, client_node = served_fs

        def run():
            conn = yield from FileClient.connect(sim, client_node, server.address)
            result = yield from conn.read("near")
            yield from conn.bye()
            return result

        result = sim.run(sim.process(run()))
        assert result["name"] == "near"
        assert result["blocks"] == 16
        assert result["service_time"] > 0

    def test_missing_file_is_error(self, sim, served_fs):
        _fs, server, client_node = served_fs

        def run():
            conn = yield from FileClient.connect(sim, client_node, server.address)
            try:
                yield from conn.read("ghost")
            except ServiceError as exc:
                yield from conn.bye()
                return str(exc)

        assert "ghost" in sim.run(sim.process(run()))

    def test_stat_and_list(self, sim, served_fs):
        _fs, server, client_node = served_fs

        def run():
            conn = yield from FileClient.connect(sim, client_node, server.address)
            size = yield from conn.stat("far")
            names = yield from conn.list()
            yield from conn.bye()
            return size, names

        size, names = sim.run(sim.process(run()))
        assert size == 16
        assert names == ["far", "near"]

    def test_requires_mount(self, sim, served_fs):
        _fs, server, client_node = served_fs

        def run():
            stream = yield from client_node.connect_stream(server.address)
            stream.send(("read", "near"))
            envelope = yield stream.recv()
            stream.close()
            return envelope.payload

        assert sim.run(sim.process(run()))[0] == "error"

    def test_read_batch_returns_request_order(self, sim, served_fs):
        _fs, server, client_node = served_fs

        def run():
            conn = yield from FileClient.connect(sim, client_node, server.address)
            results = yield from conn.read_batch(["far", "near", "ghost"])
            yield from conn.bye()
            return results

        results = sim.run(sim.process(run()))
        assert results[0]["name"] == "far"
        assert results[1]["name"] == "near"
        assert "error" in results[2]

    def test_elevator_reduces_seek_travel_vs_fcfs(self, sim, net):
        """Concurrent scattered reads: the elevator's one sweep beats
        FCFS's zig-zag (the paper's adjacent-disk-layout clustering)."""

        def build(scheduler, host):
            fs = FileSystem(total_blocks=100_000)
            rng = sim.rng(f"layout.{scheduler}")
            for i in range(30):
                fs.create(f"f{i}", 8)
            # Scatter the files deterministically (same layout for both).
            import random as _random
            scatter = _random.Random(99)
            for i in range(30):
                start = scatter.randrange(0, 99_000)
                fs._files[f"f{i}"] = [type(fs.extents_of("f0")[0])(start, 8)]
            return FileServer(
                sim, net.node(host), filesystem=fs, scheduler=scheduler
            )

        fcfs = build("fcfs", "nfs-fcfs")
        elevator = build("elevator", "nfs-elev")
        client_node = net.node("reader")

        def read_all(server):
            conn = yield from FileClient.connect(sim, client_node, server.address)
            # Issue all reads at once so the scheduler has a full queue.
            results = yield from conn.read_batch([f"f{i}" for i in range(30)])
            yield from conn.bye()
            return results

        sim.run(sim.process(read_all(fcfs)))
        sim.run(sim.process(read_all(elevator)))
        assert elevator.disk.total_seek_distance < 0.5 * fcfs.disk.total_seek_distance

    def test_elevator_wraps_cscan(self, sim, net):
        fs = FileSystem(total_blocks=1000)
        fs.create("low", 8)
        fs.create("high", 8)
        fs._files["low"] = [type(fs.extents_of("low")[0])(10, 8)]
        fs._files["high"] = [type(fs.extents_of("low")[0])(900, 8)]
        server = FileServer(sim, net.node("nfs2"), filesystem=fs, scheduler="elevator")
        server.disk.head = 500  # between the two files
        client_node = net.node("app2")
        order = []

        def run():
            conn = yield from FileClient.connect(sim, client_node, server.address)
            results = yield from conn.read_batch(["low", "high"])
            yield from conn.bye()
            return results

        sim.run(sim.process(run()))
        # 'high' (ahead of the head) must have been served before the
        # wrap back to 'low': the head ends on low's extent.
        assert server.disk.head == 17

    def test_bad_scheduler_rejected(self, sim, net):
        with pytest.raises(ServiceError):
            FileServer(sim, net.node("nfs3"), scheduler="random")
