"""Unit tests for the mini-SQL tokenizer and parser."""

from __future__ import annotations

import pytest

from repro.db import parse
from repro.db.parser import tokenize
from repro.db.query import (
    And,
    Between,
    Comparison,
    DeleteStatement,
    InList,
    InsertStatement,
    Like,
    Or,
    SelectStatement,
    UpdateStatement,
)
from repro.errors import SqlSyntaxError


class TestTokenizer:
    def test_numbers(self):
        kinds = [(t.kind, t.value) for t in tokenize("1 2.5 007")]
        assert kinds == [("int", 1), ("float", 2.5), ("int", 7)]

    def test_strings_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM WhErE")
        assert [t.value for t in tokens] == ["SELECT", "FROM", "WHERE"]

    def test_operators(self):
        tokens = tokenize("= != <> < <= > >=")
        assert [t.value for t in tokens] == ["=", "!=", "!=", "<", "<=", ">", ">="]

    def test_rejects_junk(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @ FROM t")


class TestSelectParsing:
    def test_star(self):
        stmt = parse("SELECT * FROM movies")
        assert isinstance(stmt, SelectStatement)
        assert stmt.table == "movies"
        assert stmt.is_star

    def test_column_list(self):
        stmt = parse("SELECT title, year FROM movies")
        assert stmt.columns == ("title", "year")

    def test_count_star(self):
        stmt = parse("SELECT COUNT(*) FROM movies")
        assert stmt.count_star

    def test_where_comparison(self):
        stmt = parse("SELECT * FROM t WHERE year >= 1990")
        assert stmt.where == Comparison("year", ">=", 1990)

    def test_where_and_or_precedence(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3")
        assert isinstance(stmt.where, Or)
        assert isinstance(stmt.where.parts[0], And)
        assert stmt.where.parts[1] == Comparison("c", "=", 3)

    def test_parenthesized_predicates(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
        assert isinstance(stmt.where, And)
        assert isinstance(stmt.where.parts[1], Or)

    def test_between(self):
        stmt = parse("SELECT * FROM t WHERE year BETWEEN 1990 AND 2000")
        assert stmt.where == Between("year", 1990, 2000)

    def test_in_list(self):
        stmt = parse("SELECT * FROM t WHERE g IN (1, 2, 3)")
        assert stmt.where == InList("g", (1, 2, 3))

    def test_like(self):
        stmt = parse("SELECT * FROM t WHERE name LIKE 'Al%'")
        assert stmt.where == Like("name", "Al%")

    def test_order_by_and_limit(self):
        stmt = parse("SELECT * FROM t ORDER BY year DESC LIMIT 5")
        assert stmt.order_by == "year"
        assert stmt.descending
        assert stmt.limit == 5

    def test_order_by_asc_default(self):
        stmt = parse("SELECT * FROM t ORDER BY year ASC")
        assert not stmt.descending

    def test_string_literals(self):
        stmt = parse("SELECT * FROM t WHERE name = 'O''Brien'")
        assert stmt.where == Comparison("name", "=", "O'Brien")


class TestOtherStatements:
    def test_insert(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert stmt == InsertStatement("t", ("a", "b"), (1, "x"))

    def test_insert_count_mismatch(self):
        with pytest.raises(SqlSyntaxError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = 'y' WHERE c = 0")
        assert isinstance(stmt, UpdateStatement)
        assert stmt.assignments == (("a", 1), ("b", "y"))
        assert stmt.where == Comparison("c", "=", 0)

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a < 5")
        assert isinstance(stmt, DeleteStatement)
        assert stmt.where == Comparison("a", "<", 5)

    def test_delete_without_where(self):
        stmt = parse("DELETE FROM t")
        assert stmt.where is None


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELEC * FROM t",
            "SELECT * FROM",
            "SELECT FROM t",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE a",
            "SELECT * FROM t WHERE a = ",
            "SELECT * FROM t LIMIT 'five'",
            "SELECT * FROM t trailing",
            "SELECT * FROM t WHERE a LIKE 5",
            "SELECT * FROM t WHERE a BETWEEN 1",
            "INSERT INTO t VALUES (1)",
            "42",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse(bad)

    def test_where_equals_where_keyword_column_fails(self):
        # Keywords cannot be used as identifiers.
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM t WHERE select = 1")


class TestLikeSemantics:
    @pytest.mark.parametrize(
        ("pattern", "value", "expected"),
        [
            ("abc", "abc", True),
            ("abc", "ABC", True),
            ("a%", "abcdef", True),
            ("%f", "abcdef", True),
            ("a_c", "abc", True),
            ("a_c", "abbc", False),
            ("%b%", "abc", True),
            ("", "", True),
            ("a.c", "abc", False),  # dot is literal, not regex
        ],
    )
    def test_matches(self, pattern, value, expected):
        assert Like("x", pattern).matches(value) is expected

    def test_prefix_extraction(self):
        assert Like("x", "abc%").prefix == "abc"
        assert Like("x", "%abc").prefix is None
        assert Like("x", "a_b").prefix == "a"
