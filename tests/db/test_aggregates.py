"""Tests for aggregate functions and GROUP BY."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.errors import QueryError, SqlSyntaxError, UnknownColumnError


@pytest.fixture
def db():
    database = Database()
    table = database.create_table(
        "sales", [("region", str), ("product", str), ("amount", int), ("price", float)]
    )
    rows = [
        ("east", "widget", 10, 2.5),
        ("east", "gadget", 5, 10.0),
        ("west", "widget", 20, 2.5),
        ("west", "widget", 1, 2.5),
        ("north", "gadget", 7, 9.0),
    ]
    for row in rows:
        table.insert(row)
    return database


class TestPlainAggregates:
    def test_count_star(self, db):
        assert db.execute("SELECT COUNT(*) FROM sales").scalar() == 5

    def test_sum(self, db):
        assert db.execute("SELECT SUM(amount) FROM sales").scalar() == 43

    def test_avg(self, db):
        result = db.execute("SELECT AVG(price) FROM sales")
        assert result.columns == ("avg_price",)
        assert result.scalar() == pytest.approx(5.3)

    def test_min_max(self, db):
        result = db.execute("SELECT MIN(amount), MAX(amount) FROM sales")
        assert result.columns == ("min_amount", "max_amount")
        assert result.rows == ((1, 20),)

    def test_min_max_on_strings(self, db):
        result = db.execute("SELECT MIN(region), MAX(region) FROM sales")
        assert result.rows == (("east", "west"),)

    def test_count_column_skips_nulls(self, db):
        table = db.table("sales")
        table.insert({"region": "south"})  # product/amount/price are NULL
        assert db.execute("SELECT COUNT(*) FROM sales").scalar() == 6
        assert db.execute("SELECT COUNT(amount) FROM sales").scalar() == 5

    def test_aggregate_with_where(self, db):
        assert (
            db.execute("SELECT SUM(amount) FROM sales WHERE region = 'west'").scalar()
            == 21
        )

    def test_aggregates_over_empty_match(self, db):
        result = db.execute("SELECT SUM(amount), MIN(price) FROM sales WHERE amount > 99")
        assert result.rows == ((None, None),)
        assert db.execute("SELECT COUNT(*) FROM sales WHERE amount > 99").scalar() == 0

    def test_sum_on_text_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT SUM(region) FROM sales")

    def test_unknown_column_rejected(self, db):
        with pytest.raises(UnknownColumnError):
            db.execute("SELECT SUM(ghost) FROM sales")


class TestGroupBy:
    def test_group_counts(self, db):
        result = db.execute(
            "SELECT region, COUNT(*) FROM sales GROUP BY region"
        )
        assert result.columns == ("region", "count")
        assert result.rows == (("east", 2), ("north", 1), ("west", 2))

    def test_group_multiple_aggregates(self, db):
        result = db.execute(
            "SELECT region, SUM(amount), AVG(price) FROM sales GROUP BY region"
        )
        as_dict = {r[0]: (r[1], r[2]) for r in result.rows}
        assert as_dict["east"] == (15, pytest.approx(6.25))
        assert as_dict["west"] == (21, pytest.approx(2.5))

    def test_group_without_selecting_key(self, db):
        result = db.execute("SELECT COUNT(*) FROM sales GROUP BY product")
        assert result.columns == ("count",)
        assert sorted(r[0] for r in result.rows) == [2, 3]

    def test_group_with_where(self, db):
        result = db.execute(
            "SELECT region, SUM(amount) FROM sales WHERE product = 'widget' "
            "GROUP BY region"
        )
        assert result.rows == (("east", 10), ("west", 21))

    def test_order_by_aggregate_label(self, db):
        result = db.execute(
            "SELECT region, SUM(amount) FROM sales GROUP BY region "
            "ORDER BY sum_amount DESC LIMIT 2"
        )
        assert result.rows == (("west", 21), ("east", 15))

    def test_order_by_non_output_column_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute(
                "SELECT region, COUNT(*) FROM sales GROUP BY region ORDER BY price"
            )


class TestAggregateSyntaxErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT region, COUNT(*) FROM sales",  # mixed without GROUP BY
            "SELECT product, COUNT(*) FROM sales GROUP BY region",  # not the key
            "SELECT region FROM sales GROUP BY region",  # no aggregate
            "SELECT SUM(*) FROM sales",
            "SELECT COUNT( FROM sales",
            "SELECT COUNT(*) FROM sales GROUP region",
        ],
    )
    def test_rejected(self, db, bad):
        with pytest.raises(SqlSyntaxError):
            db.execute(bad)
