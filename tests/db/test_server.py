"""Integration tests for the networked database server and client."""

from __future__ import annotations

import pytest

from repro.db import CostModel, Database, DatabaseClient, DatabaseServer
from repro.db.executor import ExecutionStats
from repro.errors import ProtocolError, QueryError


@pytest.fixture
def served_db(sim, net):
    database = Database()
    table = database.create_table("kv", [("k", int), ("v", str)])
    for i in range(100):
        table.insert((i, f"v{i}"))
    table.create_index("k", "hash")
    server = DatabaseServer(
        sim, net.node("dbhost"), database, max_workers=2
    )
    client_node = net.node("app")
    return server, client_node


class TestDatabaseServer:
    def test_query_round_trip(self, sim, served_db):
        server, client_node = served_db

        def run():
            conn = yield from DatabaseClient.connect(sim, client_node, server.address)
            result = yield from conn.query("SELECT v FROM kv WHERE k = 7")
            yield from conn.close()
            return result

        result = sim.run(sim.process(run()))
        assert result.rows == (("v7",),)
        assert result.stats["plan"] == "hash-eq"

    def test_query_error_propagates_and_connection_survives(self, sim, served_db):
        server, client_node = served_db

        def run():
            conn = yield from DatabaseClient.connect(sim, client_node, server.address)
            try:
                yield from conn.query("SELECT nope FROM missing")
            except QueryError:
                pass
            result = yield from conn.query("SELECT COUNT(*) FROM kv")
            yield from conn.close()
            return result.rows[0][0]

        assert sim.run(sim.process(run())) == 100

    def test_worker_pool_limits_concurrency(self, sim, served_db):
        server, client_node = served_db
        finish_times = []

        def one(i):
            conn = yield from DatabaseClient.connect(sim, client_node, server.address)
            # Full scan: examined=100 rows -> measurable service time.
            yield from conn.query("SELECT COUNT(*) FROM kv WHERE v != 'x'")
            finish_times.append(sim.now)
            yield from conn.close()

        for i in range(6):
            sim.process(one(i))
        sim.run()
        # With 2 workers the 6 queries finish in 3 distinct waves.
        assert len(finish_times) == 6
        waves = sorted(set(round(t, 6) for t in finish_times))
        assert len(waves) >= 3

    def test_service_time_follows_cost_model(self, sim, net):
        database = Database()
        table = database.create_table("t", [("x", int)])
        for i in range(1000):
            table.insert((i,))
        cost = CostModel(base=0.5, per_row_examined=0.001)
        server = DatabaseServer(sim, net.node("db2"), database, cost_model=cost)
        client_node = net.node("app2")

        def run():
            conn = yield from DatabaseClient.connect(sim, client_node, server.address)
            started = sim.now
            yield from conn.query("SELECT COUNT(*) FROM t")
            elapsed = sim.now - started
            yield from conn.close()
            return elapsed

        elapsed = sim.run(sim.process(run()))
        # base 0.5 + 1000 rows * 1ms = 1.5s, plus small network time.
        assert 1.49 < elapsed < 1.6

    def test_bad_handshake_rejected(self, sim, net, served_db):
        server, client_node = served_db
        from repro.net import Address

        def run():
            stream = yield from client_node.connect_stream(server.address)
            stream.send(("query", "SELECT 1"))  # no hello first
            envelope = yield stream.recv()
            return envelope.payload

        reply = sim.run(sim.process(run()))
        assert reply[0] == "error"

    def test_metrics_counted(self, sim, served_db):
        server, client_node = served_db

        def run():
            conn = yield from DatabaseClient.connect(sim, client_node, server.address)
            yield from conn.query("SELECT v FROM kv WHERE k = 1")
            yield from conn.query("SELECT v FROM kv WHERE k = 2")
            yield from conn.close()

        sim.run(sim.process(run()))
        assert server.metrics.counter("db.queries") == 2
        assert server.metrics.counter("db.connections") == 1


class TestCostModel:
    def test_scan_costs_more_than_lookup(self):
        cost = CostModel()
        scan = ExecutionStats("scan", 42_000, 40, 40)
        lookup = ExecutionStats("hash-eq", 42, 40, 40)
        assert cost.service_time(scan) > 10 * cost.service_time(lookup)

    def test_sort_cost_is_nlogn(self):
        cost = CostModel(base=0, per_row_examined=0, per_row_returned=0)
        small = ExecutionStats("scan", 0, 0, 0, sorted_rows=10)
        large = ExecutionStats("scan", 0, 0, 0, sorted_rows=1000)
        assert cost.service_time(large) > 50 * cost.service_time(small)

    def test_write_cost_counted(self):
        cost = CostModel()
        write = ExecutionStats("insert", 0, 0, 0, rows_written=10)
        assert cost.service_time(write) == pytest.approx(
            cost.base + 10 * cost.per_row_written
        )
