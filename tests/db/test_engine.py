"""Unit tests for tables, indexes, planner, and executor."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.db.index import HashIndex, SortedIndex
from repro.db.planner import plan_access
from repro.db.parser import parse
from repro.errors import QueryError, UnknownColumnError, UnknownTableError


@pytest.fixture
def db():
    database = Database()
    table = database.create_table(
        "movies", [("id", int), ("title", str), ("year", int), ("rating", float)]
    )
    rows = [
        (1, "Heat", 1995, 8.3),
        (2, "Alien", 1979, 8.5),
        (3, "Aliens", 1986, 8.4),
        (4, "Arrival", 2016, 7.9),
        (5, "Amadeus", 1984, 8.4),
    ]
    for row in rows:
        table.insert(row)
    return database


class TestTable:
    def test_insert_and_count(self, db):
        assert db.table("movies").row_count == 5

    def test_insert_mapping_fills_missing_with_none(self, db):
        table = db.table("movies")
        row_id = table.insert({"id": 6, "title": "Solaris"})
        assert table.get(row_id) == (6, "Solaris", None, None)

    def test_type_enforcement(self, db):
        with pytest.raises(QueryError):
            db.table("movies").insert((7, "X", "not-a-year", 1.0))

    def test_int_promotes_to_float_column(self, db):
        table = db.table("movies")
        row_id = table.insert((8, "Y", 2000, 9))
        assert table.get(row_id)[3] == 9.0

    def test_bool_rejected_for_int(self, db):
        with pytest.raises(QueryError):
            db.table("movies").insert((True, "Z", 2000, 1.0))

    def test_delete_tombstones(self, db):
        table = db.table("movies")
        table.delete(0)
        assert table.row_count == 4
        assert table.get(0) is None
        with pytest.raises(QueryError):
            table.delete(0)

    def test_update_changes_value(self, db):
        table = db.table("movies")
        table.update(0, {"year": 1996})
        assert table.get(0)[2] == 1996

    def test_update_unknown_column(self, db):
        with pytest.raises(UnknownColumnError):
            db.table("movies").update(0, {"director": "Mann"})

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(QueryError):
            db.create_table("movies", [("x", int)])

    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.table("nope")
        with pytest.raises(UnknownTableError):
            db.execute("SELECT * FROM nope")


class TestIndexMaintenance:
    def test_hash_index_tracks_inserts_deletes_updates(self, db):
        table = db.table("movies")
        table.create_index("year", "hash")
        index = table.indexes["year"]
        assert index.lookup(1986) == [2]
        table.update(2, {"year": 1987})
        assert index.lookup(1986) == []
        assert index.lookup(1987) == [2]
        table.delete(2)
        assert index.lookup(1987) == []

    def test_sorted_index_range(self, db):
        table = db.table("movies")
        table.create_index("year", "sorted")
        index = table.indexes["year"]
        assert index.range(low=1984, high=1995) == [4, 2, 0]  # by year order

    def test_duplicate_index_rejected(self, db):
        table = db.table("movies")
        table.create_index("year")
        with pytest.raises(QueryError):
            table.create_index("year", "sorted")

    def test_unknown_index_kind(self, db):
        with pytest.raises(QueryError):
            db.table("movies").create_index("year", "btree")

    def test_index_on_unknown_column(self, db):
        with pytest.raises(UnknownColumnError):
            db.table("movies").create_index("ghost")


class TestPlanner:
    def test_no_where_scans(self, db):
        path = plan_access(db.table("movies"), None)
        assert path.kind == "scan"

    def test_equality_prefers_hash(self, db):
        table = db.table("movies")
        table.create_index("year", "hash")
        stmt = parse("SELECT * FROM movies WHERE year = 1986")
        path = plan_access(table, stmt.where)
        assert path.kind == "hash-eq"
        assert path.residual is None

    def test_range_needs_sorted_index(self, db):
        table = db.table("movies")
        table.create_index("year", "hash")
        stmt = parse("SELECT * FROM movies WHERE year > 1986")
        assert plan_access(table, stmt.where).kind == "scan"
        table.create_index("rating", "sorted")
        stmt2 = parse("SELECT * FROM movies WHERE rating >= 8.4")
        assert plan_access(table, stmt2.where).kind == "range"

    def test_conjunction_picks_best_and_keeps_residual(self, db):
        table = db.table("movies")
        table.create_index("year", "hash")
        stmt = parse("SELECT * FROM movies WHERE rating > 8.0 AND year = 1986")
        path = plan_access(table, stmt.where)
        assert path.kind == "hash-eq"
        assert path.residual is not None

    def test_or_forces_scan(self, db):
        table = db.table("movies")
        table.create_index("year", "hash")
        stmt = parse("SELECT * FROM movies WHERE year = 1986 OR year = 1979")
        assert plan_access(table, stmt.where).kind == "scan"

    def test_in_list_uses_index(self, db):
        table = db.table("movies")
        table.create_index("year", "hash")
        stmt = parse("SELECT * FROM movies WHERE year IN (1986, 1979)")
        assert plan_access(table, stmt.where).kind == "in-list"


class TestExecutor:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM movies")
        assert len(result) == 5
        assert result.columns == ("id", "title", "year", "rating")

    def test_projection(self, db):
        result = db.execute("SELECT title FROM movies WHERE id = 2")
        assert result.rows == (("Alien",),)

    def test_indexed_query_examines_fewer_rows(self, db):
        table = db.table("movies")
        scan = db.execute("SELECT * FROM movies WHERE year = 1986")
        table.create_index("year", "hash")
        indexed = db.execute("SELECT * FROM movies WHERE year = 1986")
        assert scan.rows == indexed.rows
        assert scan.stats.rows_examined == 5
        assert indexed.stats.rows_examined == 1

    def test_index_and_scan_agree_on_all_predicates(self, db):
        queries = [
            "SELECT id FROM movies WHERE year = 1986",
            "SELECT id FROM movies WHERE year >= 1986",
            "SELECT id FROM movies WHERE year BETWEEN 1980 AND 1990",
            "SELECT id FROM movies WHERE year IN (1979, 2016)",
            "SELECT id FROM movies WHERE year < 1990 AND rating > 8.3",
        ]
        plain = [sorted(db.execute(q).rows) for q in queries]
        db.table("movies").create_index("year", "sorted")
        indexed = [sorted(db.execute(q).rows) for q in queries]
        assert plain == indexed

    def test_order_by_and_limit(self, db):
        result = db.execute("SELECT title FROM movies ORDER BY year DESC LIMIT 2")
        assert result.rows == (("Arrival",), ("Heat",))

    def test_count_star(self, db):
        assert db.execute("SELECT COUNT(*) FROM movies WHERE year < 1990").scalar() == 3

    def test_count_star_with_limit(self, db):
        # LIMIT applies to the (single-row) aggregate output, as in SQL.
        assert db.execute("SELECT COUNT(*) FROM movies LIMIT 2").scalar() == 5

    def test_insert_via_sql(self, db):
        db.execute("INSERT INTO movies (id, title, year, rating) VALUES (9, 'Ran', 1985, 8.2)")
        assert db.execute("SELECT COUNT(*) FROM movies").scalar() == 6

    def test_update_via_sql(self, db):
        result = db.execute("UPDATE movies SET rating = 9.0 WHERE year < 1990")
        assert result.stats.rows_written == 3
        assert db.execute("SELECT COUNT(*) FROM movies WHERE rating = 9.0").scalar() == 3

    def test_delete_via_sql(self, db):
        db.execute("DELETE FROM movies WHERE year >= 1990")
        assert db.execute("SELECT COUNT(*) FROM movies").scalar() == 3

    def test_unknown_column_in_where(self, db):
        with pytest.raises(UnknownColumnError):
            db.execute("SELECT * FROM movies WHERE director = 'Mann'")

    def test_type_mismatch_comparison_raises(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT * FROM movies WHERE year > 'abc'")

    def test_scalar_requires_single_cell(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT * FROM movies").scalar()

    def test_like_query(self, db):
        result = db.execute("SELECT title FROM movies WHERE title LIKE 'Alien%'")
        assert sorted(r[0] for r in result.rows) == ["Alien", "Aliens"]


class TestLikePrefixOptimization:
    @pytest.fixture
    def titles_db(self):
        database = Database()
        table = database.create_table("t", [("name", str), ("n", int)])
        words = ["alpha", "alphabet", "beta", "betamax", "gamma", "alps", "ALTO"]
        for i, word in enumerate(words):
            table.insert((word, i))
        return database

    def test_prefix_like_uses_sorted_index(self, titles_db):
        table = titles_db.table("t")
        scan = titles_db.execute("SELECT name FROM t WHERE name LIKE 'alp%'")
        assert scan.stats.plan == "scan"
        table.create_index("name", "sorted")
        indexed = titles_db.execute("SELECT name FROM t WHERE name LIKE 'alp%'")
        assert indexed.stats.plan == "prefix-range"
        assert sorted(indexed.rows) == sorted(scan.rows)
        assert indexed.stats.rows_examined < scan.stats.rows_examined

    def test_pattern_still_filters_within_range(self, titles_db):
        # 'al_s' narrows to the 'al' prefix range but must still reject
        # 'alpha'/'alphabet' via the residual LIKE.
        table = titles_db.table("t")
        table.create_index("name", "sorted")
        result = titles_db.execute("SELECT name FROM t WHERE name LIKE 'al_s'")
        assert result.stats.plan == "prefix-range"
        assert result.rows == (("alps",),)

    def test_leading_wildcard_cannot_use_index(self, titles_db):
        table = titles_db.table("t")
        table.create_index("name", "sorted")
        result = titles_db.execute("SELECT name FROM t WHERE name LIKE '%max'")
        assert result.stats.plan == "scan"
        assert result.rows == (("betamax",),)

    def test_hash_index_not_usable_for_prefix(self, titles_db):
        table = titles_db.table("t")
        table.create_index("name", "hash")
        result = titles_db.execute("SELECT name FROM t WHERE name LIKE 'alp%'")
        assert result.stats.plan == "scan"

    def test_equality_still_preferred_over_prefix(self, titles_db):
        table = titles_db.table("t")
        table.create_index("name", "sorted")
        table.create_index("n", "hash")
        result = titles_db.execute(
            "SELECT name FROM t WHERE name LIKE 'alp%' AND n = 0"
        )
        assert result.stats.plan == "hash-eq"
        assert result.rows == (("alpha",),)
