"""Property-based tests: the engine agrees with a naive Python model."""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.db.index import SortedIndex

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),  # key
        st.integers(min_value=0, max_value=9),  # group
    ),
    min_size=0,
    max_size=80,
)


def build(rows: List[Tuple[int, int]], index_kind=None) -> Database:
    db = Database()
    table = db.create_table("t", [("k", int), ("g", int)])
    for k, g in rows:
        table.insert((k, g))
    if index_kind:
        table.create_index("k", index_kind)
    return db


class TestEngineAgainstModel:
    @given(rows_strategy, st.integers(min_value=0, max_value=50))
    @settings(max_examples=60)
    def test_equality_matches_filter(self, rows, key):
        db = build(rows, "hash")
        got = sorted(db.execute(f"SELECT k, g FROM t WHERE k = {key}").rows)
        expected = sorted((k, g) for k, g in rows if k == key)
        assert got == expected

    @given(
        rows_strategy,
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60)
    def test_between_matches_filter(self, rows, lo, hi):
        db = build(rows, "sorted")
        got = sorted(db.execute(f"SELECT k, g FROM t WHERE k BETWEEN {lo} AND {hi}").rows)
        expected = sorted((k, g) for k, g in rows if lo <= k <= hi)
        assert got == expected

    @given(rows_strategy, st.integers(min_value=0, max_value=50))
    @settings(max_examples=60)
    def test_range_ops_match_filter(self, rows, pivot):
        db = build(rows, "sorted")
        for op, pred in (
            ("<", lambda k: k < pivot),
            ("<=", lambda k: k <= pivot),
            (">", lambda k: k > pivot),
            (">=", lambda k: k >= pivot),
            ("!=", lambda k: k != pivot),
        ):
            got = sorted(db.execute(f"SELECT k FROM t WHERE k {op} {pivot}").rows)
            expected = sorted((k,) for k, _ in rows if pred(k))
            assert got == expected, op

    @given(rows_strategy, st.integers(min_value=0, max_value=9))
    @settings(max_examples=60)
    def test_count_star(self, rows, group):
        db = build(rows)
        got = db.execute(f"SELECT COUNT(*) FROM t WHERE g = {group}").scalar()
        assert got == sum(1 for _, g in rows if g == group)

    @given(rows_strategy)
    @settings(max_examples=40)
    def test_order_by_sorts(self, rows):
        db = build(rows)
        got = [r[0] for r in db.execute("SELECT k FROM t ORDER BY k").rows]
        assert got == sorted(k for k, _ in rows)

    @given(rows_strategy, st.integers(min_value=0, max_value=50))
    @settings(max_examples=40)
    def test_delete_then_query_consistent(self, rows, key):
        db = build(rows, "hash")
        db.execute(f"DELETE FROM t WHERE k = {key}")
        assert len(db.execute(f"SELECT * FROM t WHERE k = {key}").rows) == 0
        remaining = db.execute("SELECT COUNT(*) FROM t").scalar()
        assert remaining == sum(1 for k, _ in rows if k != key)


class TestSortedIndexProperties:
    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=100))
    def test_incremental_equals_bulk_load(self, values):
        incremental = SortedIndex("v")
        for row_id, value in enumerate(values):
            incremental.insert(value, row_id)
        bulk = SortedIndex("v")
        bulk.bulk_load((value, row_id) for row_id, value in enumerate(values))
        assert incremental._entries == bulk._entries

    @given(
        st.lists(st.integers(min_value=-50, max_value=50), max_size=80),
        st.integers(min_value=-60, max_value=60),
        st.integers(min_value=-60, max_value=60),
    )
    def test_range_bounds_semantics(self, values, lo, hi):
        index = SortedIndex("v")
        index.bulk_load((value, row_id) for row_id, value in enumerate(values))
        closed = set(index.range(low=lo, high=hi))
        expected = {i for i, v in enumerate(values) if lo <= v <= hi}
        assert closed == expected
        open_both = set(index.range(low=lo, high=hi, low_open=True, high_open=True))
        expected_open = {i for i, v in enumerate(values) if lo < v < hi}
        assert open_both == expected_open

    @given(st.lists(st.integers(min_value=-20, max_value=20), min_size=1, max_size=50))
    def test_remove_really_removes(self, values):
        index = SortedIndex("v")
        for row_id, value in enumerate(values):
            index.insert(value, row_id)
        index.remove(values[0], 0)
        assert 0 not in index.lookup(values[0])
        assert len(index) == len(values) - 1
