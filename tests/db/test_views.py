"""Tests for materialized views and the catalog's write invalidation."""

from __future__ import annotations

import pytest

from repro.db import Database, MaterializedView, ViewCatalog
from repro.errors import QueryError
from repro.metrics import MetricsRegistry


@pytest.fixture
def db():
    database = Database()
    table = database.create_table(
        "records", [("id", int), ("grp", int), ("val", int)]
    )
    for i in range(12):
        table.insert((i, i % 3, i * 10))
    table.create_index("grp")
    return database


@pytest.fixture
def catalog(db):
    catalog = ViewCatalog(MetricsRegistry())
    catalog.create(
        "records_by_grp", db, "SELECT grp, COUNT(*) FROM records GROUP BY grp"
    )
    db.install_views(catalog)
    return catalog


class TestDefinitionValidation:
    def test_plain_select_rejected(self, db):
        with pytest.raises(QueryError):
            MaterializedView("v", db, "SELECT val FROM records")

    def test_ungrouped_aggregate_rejected(self, db):
        with pytest.raises(QueryError):
            MaterializedView("v", db, "SELECT COUNT(*) FROM records")

    def test_filtered_definition_rejected(self, db):
        with pytest.raises(QueryError):
            MaterializedView(
                "v", db,
                "SELECT grp, COUNT(*) FROM records WHERE grp = 1 GROUP BY grp",
            )

    def test_definition_must_select_group_column(self, db):
        with pytest.raises(QueryError):
            MaterializedView(
                "v", db, "SELECT val, COUNT(*) FROM records GROUP BY grp"
            )

    def test_valid_definition_starts_dirty(self, db):
        view = MaterializedView(
            "v", db, "SELECT grp, COUNT(*) FROM records GROUP BY grp"
        )
        assert view.dirty
        assert view.refreshes == 0


class TestAnswering:
    def test_keyed_aggregate_served(self, db, catalog):
        result = db.execute("SELECT COUNT(*) FROM records WHERE grp = 1")
        assert result.stats.plan == "view:records_by_grp"
        assert result.rows == ((4,),)

    def test_absent_group_counts_zero(self, db, catalog):
        result = db.execute("SELECT COUNT(*) FROM records WHERE grp = 99")
        assert result.stats.plan == "view:records_by_grp"
        assert result.rows == ((0,),)

    def test_in_list_probe_per_key(self, db, catalog):
        result = db.execute("SELECT COUNT(*) FROM records WHERE grp IN (0, 2)")
        assert result.stats.plan == "view:records_by_grp"
        assert result.rows == ((4,), (4,))
        assert result.stats.rows_examined == 2

    def test_full_grouped_read_sorted(self, db, catalog):
        result = db.execute("SELECT grp, COUNT(*) FROM records GROUP BY grp")
        assert result.stats.plan == "view:records_by_grp"
        assert result.rows == ((0, 4), (1, 4), (2, 4))
        assert result.columns == ("grp", "count")

    def test_non_matching_select_falls_through(self, db, catalog):
        result = db.execute("SELECT val FROM records WHERE grp = 1")
        assert not result.stats.plan.startswith("view:")
        assert len(result.rows) == 4

    def test_different_aggregate_falls_through(self, db, catalog):
        result = db.execute("SELECT SUM(val) FROM records WHERE grp = 1")
        assert not result.stats.plan.startswith("view:")

    def test_hits_counted(self, db, catalog):
        db.execute("SELECT COUNT(*) FROM records WHERE grp = 0")
        db.execute("SELECT COUNT(*) FROM records WHERE grp = 1")
        assert catalog.metrics.counter("db.view.hits") == 2


class TestInvalidation:
    def test_write_marks_dirty_and_next_read_refreshes(self, db, catalog):
        view = catalog.views[0]
        db.execute("SELECT COUNT(*) FROM records WHERE grp = 0")
        assert not view.dirty
        refreshes = view.refreshes
        db.execute("INSERT INTO records (id, grp, val) VALUES (100, 0, 0)")
        assert view.dirty
        assert catalog.metrics.counter("db.view.invalidations") == 1
        result = db.execute("SELECT COUNT(*) FROM records WHERE grp = 0")
        assert result.rows == ((5,),)
        assert view.refreshes == refreshes + 1

    def test_lazy_refresh_amortized_over_reads(self, db, catalog):
        view = catalog.views[0]
        db.execute("UPDATE records SET val = 1 WHERE id = 0")
        db.execute("SELECT COUNT(*) FROM records WHERE grp = 0")
        db.execute("SELECT COUNT(*) FROM records WHERE grp = 1")
        db.execute("SELECT COUNT(*) FROM records WHERE grp = 2")
        assert view.refreshes == 1

    def test_repeat_writes_invalidate_once(self, db, catalog):
        db.execute("SELECT COUNT(*) FROM records WHERE grp = 0")
        db.execute("DELETE FROM records WHERE id = 0")
        db.execute("DELETE FROM records WHERE id = 1")
        assert catalog.metrics.counter("db.view.invalidations") == 1

    def test_write_to_other_table_ignored(self, db, catalog):
        other = db.create_table("other", [("id", int)])
        other.insert((1,))
        db.execute("SELECT COUNT(*) FROM records WHERE grp = 0")
        db.execute("DELETE FROM other WHERE id = 1")
        assert catalog.views[0].dirty is False


class TestCatalog:
    def test_uninstalled_database_unaffected(self, db):
        result = db.execute("SELECT COUNT(*) FROM records WHERE grp = 1")
        assert not result.stats.plan.startswith("view:")

    def test_catalog_without_matching_table_falls_through(self, db):
        catalog = ViewCatalog()
        db.install_views(catalog)
        result = db.execute("SELECT COUNT(*) FROM records WHERE grp = 1")
        assert not result.stats.plan.startswith("view:")
