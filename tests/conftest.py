"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net import Link, Network
from repro.sim import Simulation


@pytest.fixture
def sim() -> Simulation:
    """A fresh simulation with a fixed seed."""
    return Simulation(seed=42)


@pytest.fixture
def net(sim: Simulation) -> Network:
    """A network where every node pair is joined by a LAN link."""
    return Network(sim, default_link=Link.lan())
