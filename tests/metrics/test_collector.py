"""Unit tests for MetricsRegistry and report rendering."""

from __future__ import annotations

from repro.metrics import MetricsRegistry, render_series, render_table


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.increment("a")
        m.increment("a", 2.5)
        assert m.counter("a") == 3.5
        assert m.counter("missing") == 0.0

    def test_counters_prefix_filter(self):
        m = MetricsRegistry()
        m.increment("broker.drops.qos1")
        m.increment("broker.drops.qos2")
        m.increment("broker.served")
        assert set(m.counters("broker.drops.")) == {
            "broker.drops.qos1",
            "broker.drops.qos2",
        }

    def test_samples_accumulate(self):
        m = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            m.observe("latency", v)
        assert m.sample("latency").count == 3
        assert m.sample("latency").mean == 2.0
        assert m.sample("never").count == 0

    def test_ratio(self):
        m = MetricsRegistry()
        m.increment("hits", 3)
        m.increment("total", 4)
        assert m.ratio("hits", "total") == 0.75
        assert m.ratio("hits", "empty") == 0.0

    def test_events_recorded_in_order(self):
        m = MetricsRegistry()
        m.record_event("arrival", 1.0)
        m.record_event("arrival", 2.5)
        assert m.events("arrival") == [1.0, 2.5]
        assert m.events("none") == []

    def test_iteration_sorted(self):
        m = MetricsRegistry()
        m.increment("z")
        m.increment("a")
        assert [name for name, _ in m] == ["a", "z"]


class TestReportRendering:
    def test_render_table_aligns_columns(self):
        rows = [{"n": 10, "rt": 1.5}, {"n": 100, "rt": 22.25}]
        text = render_table(rows, ["n", "rt"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "n" in lines[1] and "rt" in lines[1]
        assert len(lines) == 5

    def test_render_table_infers_columns(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_float_formatting(self):
        text = render_table([{"v": 0.123456}], ["v"])
        assert "0.1235" in text

    def test_nan_renders_as_dash(self):
        text = render_table([{"v": float("nan")}], ["v"])
        assert "-" in text.splitlines()[-1]

    def test_render_series(self):
        text = render_series([1, 2], [10.0, 20.0], "x", "y")
        assert "10" in text and "20" in text
