"""Unit and property tests for SummaryStats, cross-checked with numpy."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import SummaryStats

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestSummaryStats:
    def test_empty_stats_are_nan(self):
        stats = SummaryStats()
        assert math.isnan(stats.mean)
        assert math.isnan(stats.variance)
        assert math.isnan(stats.minimum)
        assert math.isnan(stats.percentile(50))
        assert stats.count == 0

    def test_single_value(self):
        stats = SummaryStats([5.0])
        assert stats.mean == 5.0
        assert stats.minimum == stats.maximum == 5.0
        assert stats.median == 5.0
        assert math.isnan(stats.variance)

    def test_known_values(self):
        stats = SummaryStats([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.stdev == pytest.approx(np.std([2, 4, 4, 4, 5, 5, 7, 9], ddof=1))

    def test_percentile_bounds_validation(self):
        stats = SummaryStats([1.0])
        with pytest.raises(ValueError):
            stats.percentile(101)
        with pytest.raises(ValueError):
            stats.percentile(-1)

    def test_merge_combines_samples(self):
        a = SummaryStats([1.0, 2.0])
        b = SummaryStats([3.0])
        merged = a.merge(b)
        assert merged.count == 3
        assert merged.mean == pytest.approx(2.0)
        assert a.count == 2  # originals untouched

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_mean_matches_numpy(self, values):
        stats = SummaryStats(values)
        assert stats.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_variance_matches_numpy(self, values):
        stats = SummaryStats(values)
        expected = float(np.var(values, ddof=1))
        assert stats.variance == pytest.approx(expected, rel=1e-6, abs=1e-3)

    @given(
        st.lists(finite_floats, min_size=1, max_size=100),
        st.floats(min_value=0, max_value=100),
    )
    def test_percentile_matches_numpy_linear(self, values, q):
        stats = SummaryStats(values)
        expected = float(np.percentile(values, q, method="linear"))
        assert stats.percentile(q) == pytest.approx(expected, rel=1e-9, abs=1e-6)

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_min_max_bound_all_percentiles(self, values):
        stats = SummaryStats(values)
        assert stats.minimum <= stats.median <= stats.maximum
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)
