"""Unit and property tests for DN parsing and search filters."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FilterSyntaxError, ServiceError
from repro.ldapdir import DN, Entry, parse_filter
from repro.ldapdir.filters import AndF, Compare, Equality, NotF, OrF, Presence


class TestDN:
    def test_parse_and_str_round_trip(self):
        dn = DN.of("cn=Alice, ou=people , dc=example")
        assert str(dn) == "cn=Alice,ou=people,dc=example"

    def test_parent_and_rdn(self):
        dn = DN.of("cn=a,ou=b,dc=c")
        assert str(dn.parent) == "ou=b,dc=c"
        assert dn.rdn == ("cn", "a")
        assert dn.depth == 3

    def test_root_has_no_parent(self):
        with pytest.raises(ServiceError):
            _ = DN.of("").parent

    def test_descendant_check(self):
        base = DN.of("ou=b,dc=c")
        child = DN.of("cn=a,ou=b,dc=c")
        assert child.is_descendant_of(base)
        assert not base.is_descendant_of(child)
        assert not base.is_descendant_of(base)

    def test_malformed_rdn_rejected(self):
        with pytest.raises(ServiceError):
            DN.of("no-equals-sign")
        with pytest.raises(ServiceError):
            DN.of("=value")


class TestEntry:
    def test_rdn_attribute_implicit(self):
        entry = Entry("cn=alice,dc=x", {"mail": "a@x"})
        assert entry.get("cn") == ["alice"]

    def test_multivalued_attributes(self):
        entry = Entry("cn=a,dc=x", {"member": ["u1", "u2"]})
        assert entry.get("member") == ["u1", "u2"]
        assert entry.first("member") == "u1"
        assert entry.first("absent") == ""

    def test_case_insensitive_names(self):
        entry = Entry("cn=a,dc=x", {"Mail": "a@x"})
        assert entry.get("mail") == ["a@x"]
        assert entry.has("MAIL")

    def test_replace_and_remove(self):
        entry = Entry("cn=a,dc=x", {"mail": "old"})
        entry.replace("mail", "new")
        assert entry.get("mail") == ["new"]
        entry.remove("mail")
        assert not entry.has("mail")


class TestFilterParsing:
    def test_equality(self):
        assert parse_filter("(cn=alice)") == Equality("cn", "alice")

    def test_presence(self):
        assert parse_filter("(mail=*)") == Presence("mail")

    def test_comparisons(self):
        assert parse_filter("(age>=30)") == Compare("age", ">=", "30")
        assert parse_filter("(age<=30)") == Compare("age", "<=", "30")

    def test_boolean_combinators(self):
        parsed = parse_filter("(&(a=1)(|(b=2)(c=3))(!(d=4)))")
        assert isinstance(parsed, AndF)
        assert isinstance(parsed.parts[1], OrF)
        assert isinstance(parsed.parts[2], NotF)

    @pytest.mark.parametrize(
        "bad",
        ["", "(", "()", "(cn=alice", "cn=alice", "(&)", "(!)", "(>=5)", "((a=1))x"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(FilterSyntaxError):
            parse_filter(bad)


class TestFilterEvaluation:
    @pytest.fixture
    def entry(self):
        return Entry(
            "cn=alice,ou=people,dc=x",
            {"objectClass": "person", "age": "30", "mail": "alice@x.org"},
        )

    def test_equality_case_insensitive(self, entry):
        assert parse_filter("(CN=ALICE)").matches(entry)

    def test_wildcards(self, entry):
        assert parse_filter("(mail=*@x.org)").matches(entry)
        assert parse_filter("(mail=alice*)").matches(entry)
        assert parse_filter("(mail=*ice*)").matches(entry)
        assert not parse_filter("(mail=bob*)").matches(entry)

    def test_numeric_comparison(self, entry):
        assert parse_filter("(age>=30)").matches(entry)
        assert parse_filter("(age<=30)").matches(entry)
        assert not parse_filter("(age>=31)").matches(entry)

    def test_lexicographic_comparison(self, entry):
        assert parse_filter("(cn>=aaa)").matches(entry)
        assert not parse_filter("(cn>=zzz)").matches(entry)

    def test_boolean_semantics(self, entry):
        assert parse_filter("(&(objectClass=person)(age>=18))").matches(entry)
        assert parse_filter("(|(cn=bob)(cn=alice))").matches(entry)
        assert parse_filter("(!(cn=bob))").matches(entry)
        assert not parse_filter("(&(cn=alice)(cn=bob))").matches(entry)

    def test_presence_semantics(self, entry):
        assert parse_filter("(mail=*)").matches(entry)
        assert not parse_filter("(phone=*)").matches(entry)

    @given(
        st.text(alphabet="abcdef", min_size=1, max_size=8),
        st.text(alphabet="abcdef", min_size=0, max_size=8),
    )
    def test_equality_matches_iff_equal_when_no_wildcard(self, stored, probed):
        entry = Entry("cn=x,dc=y", {"attr": stored})
        assert parse_filter(f"(attr={probed})").matches(entry) == (
            stored == probed if probed else False
        )
