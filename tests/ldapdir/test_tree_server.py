"""Tests for the DIT and the networked directory server."""

from __future__ import annotations

import pytest

from repro.errors import NoSuchEntryError, ServiceError
from repro.ldapdir import (
    SCOPE_BASE,
    SCOPE_ONE,
    SCOPE_SUB,
    DirectoryClient,
    DirectoryServer,
    DirectoryTree,
)


@pytest.fixture
def tree():
    t = DirectoryTree()
    t.add("dc=example", {"objectClass": "domain"})
    t.add("ou=people,dc=example", {"objectClass": "organizationalUnit"})
    t.add("ou=groups,dc=example", {"objectClass": "organizationalUnit"})
    for i in range(4):
        t.add(
            f"cn=user{i},ou=people,dc=example",
            {"objectClass": "person", "age": str(25 + i)},
        )
    t.add("cn=admins,ou=groups,dc=example", {"objectClass": "group"})
    return t


class TestDirectoryTree:
    def test_add_requires_parent(self, tree):
        with pytest.raises(NoSuchEntryError):
            tree.add("cn=x,ou=missing,dc=example", {})

    def test_add_duplicate_rejected(self, tree):
        with pytest.raises(ServiceError):
            tree.add("ou=people,dc=example", {})

    def test_get_and_modify(self, tree):
        tree.modify("cn=user0,ou=people,dc=example", {"age": "99", "mail": "u@x"})
        entry = tree.get("cn=user0,ou=people,dc=example")
        assert entry.first("age") == "99"
        assert entry.first("mail") == "u@x"
        tree.modify("cn=user0,ou=people,dc=example", {"mail": None})
        assert not entry.has("mail")

    def test_delete_leaf_only(self, tree):
        with pytest.raises(ServiceError):
            tree.delete("ou=people,dc=example")
        tree.delete("cn=user0,ou=people,dc=example")
        assert "cn=user0,ou=people,dc=example" not in tree

    def test_scope_base(self, tree):
        matches, examined = tree.search("dc=example", SCOPE_BASE)
        assert [str(e.dn) for e in matches] == ["dc=example"]
        assert examined == 1

    def test_scope_one(self, tree):
        matches, _ = tree.search("dc=example", SCOPE_ONE)
        assert sorted(str(e.dn) for e in matches) == [
            "ou=groups,dc=example",
            "ou=people,dc=example",
        ]

    def test_scope_sub_includes_base(self, tree):
        matches, examined = tree.search("ou=people,dc=example", SCOPE_SUB)
        assert len(matches) == 5  # the OU plus 4 users
        assert examined == 5

    def test_search_with_filter(self, tree):
        matches, _ = tree.search("dc=example", SCOPE_SUB, "(&(objectClass=person)(age>=27))")
        assert sorted(e.first("cn") for e in matches) == ["user2", "user3"]

    def test_search_missing_base(self, tree):
        with pytest.raises(NoSuchEntryError):
            tree.search("dc=nowhere")

    def test_bad_scope(self, tree):
        with pytest.raises(ServiceError):
            tree.search("dc=example", scope="tree")


class TestDirectoryServer:
    def test_search_over_network(self, sim, net, tree):
        server = DirectoryServer(sim, net.node("ldap"), tree)
        client_node = net.node("app")

        def run():
            conn = yield from DirectoryClient.connect(sim, client_node, server.address)
            result = yield from conn.search(
                "dc=example", SCOPE_SUB, "(objectClass=person)"
            )
            yield from conn.unbind()
            return result

        result = sim.run(sim.process(run()))
        assert len(result) == 4
        assert result.examined == 8
        assert all(dn.startswith("cn=user") for dn in result.dns())

    def test_write_operations(self, sim, net, tree):
        server = DirectoryServer(sim, net.node("ldap"), tree)
        client_node = net.node("app")

        def run():
            conn = yield from DirectoryClient.connect(sim, client_node, server.address)
            yield from conn.add(
                "cn=user9,ou=people,dc=example", {"objectClass": "person"}
            )
            yield from conn.modify("cn=user9,ou=people,dc=example", {"age": "40"})
            result = yield from conn.search(
                "ou=people,dc=example", SCOPE_SUB, "(age=40)"
            )
            yield from conn.delete("cn=user9,ou=people,dc=example")
            yield from conn.unbind()
            return result

        result = sim.run(sim.process(run()))
        assert result.dns() == ["cn=user9,ou=people,dc=example"]
        assert "cn=user9,ou=people,dc=example" not in tree

    def test_error_reply_does_not_kill_session(self, sim, net, tree):
        server = DirectoryServer(sim, net.node("ldap"), tree)
        client_node = net.node("app")

        def run():
            conn = yield from DirectoryClient.connect(sim, client_node, server.address)
            try:
                yield from conn.search("dc=nowhere")
            except ServiceError:
                pass
            result = yield from conn.search("dc=example", SCOPE_BASE)
            yield from conn.unbind()
            return result

        assert len(sim.run(sim.process(run()))) == 1

    def test_requires_bind(self, sim, net, tree):
        server = DirectoryServer(sim, net.node("ldap"), tree)
        client_node = net.node("app")

        def run():
            stream = yield from client_node.connect_stream(server.address)
            stream.send(("search", "dc=example", SCOPE_BASE, None))
            envelope = yield stream.recv()
            stream.close()
            return envelope.payload

        reply = sim.run(sim.process(run()))
        assert reply[0] == "error"
