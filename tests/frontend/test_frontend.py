"""Tests for the front-end web server and the API-based baseline."""

from __future__ import annotations

import pytest

from repro.db import Database, DatabaseServer
from repro.frontend import (
    ApiBackendGateway,
    FrontendWebServer,
    WebApplication,
    qos_of,
)
from repro.frontend.app import QOS_HEADER
from repro.http import BackendWebServer, HttpClient, HttpRequest, HttpResponse
from repro.ldapdir import DirectoryServer, DirectoryTree
from repro.mail import MailServer, MessageStore


class TestQosHeader:
    def test_parses_header(self):
        request = HttpRequest(method="GET", path="/", headers={QOS_HEADER: "2"})
        assert qos_of(request) == 2

    def test_default_when_missing_or_garbage(self):
        assert qos_of(HttpRequest(method="GET", path="/")) == 1
        bad = HttpRequest(method="GET", path="/", headers={QOS_HEADER: "high"})
        assert qos_of(bad, default=3) == 3


class TestFrontendWebServer:
    def test_app_dispatch(self, sim, net):
        frontend = FrontendWebServer(sim, net.node("web"))

        def hello(frontend_server, request):
            yield frontend_server.sim.timeout(0.01)
            return f"hello {request.param('name')}"

        frontend.register_app(WebApplication(path="/hello", handler=hello))
        client_node = net.node("client")

        def run():
            return (
                yield from HttpClient.get(
                    sim, client_node, frontend.address, "/hello", {"name": "bob"}
                )
            )

        response = sim.run(sim.process(run()))
        assert response.body == "hello bob"

    def test_unknown_app_404(self, sim, net):
        frontend = FrontendWebServer(sim, net.node("web"))
        client_node = net.node("client")

        def run():
            return (yield from HttpClient.get(sim, client_node, frontend.address, "/none"))

        assert sim.run(sim.process(run())).status == 404

    def test_app_exception_becomes_500(self, sim, net):
        frontend = FrontendWebServer(sim, net.node("web"))

        def broken(frontend_server, request):
            raise KeyError("oops")
            yield  # pragma: no cover

        frontend.register_app(WebApplication(path="/broken", handler=broken))
        client_node = net.node("client")

        def run():
            return (yield from HttpClient.get(sim, client_node, frontend.address, "/broken"))

        response = sim.run(sim.process(run()))
        assert response.status == 500
        assert frontend.metrics.counter("frontend.errors") == 1

    def test_admission_hook_rejects_with_503(self, sim, net):
        frontend = FrontendWebServer(
            sim,
            net.node("web"),
            admission=lambda request: (qos_of(request) == 1, "low class rejected"),
        )
        frontend.register_app(
            WebApplication(path="/p", handler=lambda s, r: HttpResponse.text("in"))
        )
        client_node = net.node("client")

        def run(qos):
            return (
                yield from HttpClient.fetch(
                    sim,
                    client_node,
                    frontend.address,
                    HttpRequest(method="GET", path="/p", headers={QOS_HEADER: str(qos)}),
                )
            )

        ok = sim.run(sim.process(run(1)))
        rejected = sim.run(sim.process(run(2)))
        assert ok.status == 200
        assert rejected.status == 503
        assert frontend.metrics.counter("frontend.rejected.qos2") == 1

    def test_process_pool_limits_concurrency(self, sim, net):
        frontend = FrontendWebServer(sim, net.node("web"), max_processes=2)

        def slow(frontend_server, request):
            yield frontend_server.sim.timeout(1.0)
            return "done"

        frontend.register_app(WebApplication(path="/slow", handler=slow))
        client_node = net.node("client")
        finished = []

        def one(i):
            yield from HttpClient.get(sim, client_node, frontend.address, "/slow")
            finished.append(sim.now)

        for i in range(4):
            sim.process(one(i))
        sim.run()
        assert sum(1 for t in finished if t < 1.5) == 2
        assert sum(1 for t in finished if t > 1.5) == 2

    def test_tenant_throttle_refuses_with_429(self, sim, net):
        from repro.core.autoscale import TenantThrottle
        from repro.frontend.app import TENANT_HEADER

        frontend = FrontendWebServer(
            sim,
            net.node("web"),
            tenant_throttle=TenantThrottle(
                rate=1000.0, burst=1000.0, overrides={"burst": (0.1, 2.0)}
            ),
        )
        frontend.register_app(
            WebApplication(path="/p", handler=lambda s, r: "ok")
        )
        client_node = net.node("client")

        def run(tenant):
            return (
                yield from HttpClient.fetch(
                    sim,
                    client_node,
                    frontend.address,
                    HttpRequest(
                        method="GET", path="/p",
                        headers={TENANT_HEADER: tenant},
                    ),
                )
            )

        statuses = {"burst": [], "standard": []}
        for _ in range(4):
            for tenant in ("burst", "standard"):
                statuses[tenant].append(sim.run(sim.process(run(tenant))).status)
        # The burst tenant exhausts its 2-token bucket and gets 429;
        # other tenants are untouched. 429s are "we refused": counted
        # apart from backpressure 503s (frontend.throttled) and
        # admission 503s (frontend.rejected).
        assert statuses["burst"].count(429) == 2
        assert statuses["standard"] == [200, 200, 200, 200]
        assert frontend.metrics.counter("frontend.throttle.rejected") == 2
        assert frontend.metrics.counter("frontend.throttle.rejected.burst") == 2
        assert frontend.metrics.counter("frontend.throttled") == 0
        assert frontend.metrics.counter("frontend.rejected") == 0

    def test_untagged_requests_share_the_public_bucket(self, sim, net):
        from repro.core.autoscale import TenantThrottle

        frontend = FrontendWebServer(
            sim,
            net.node("web"),
            tenant_throttle=TenantThrottle(rate=0.1, burst=1.0),
        )
        frontend.register_app(
            WebApplication(path="/p", handler=lambda s, r: "ok")
        )
        client_node = net.node("client")

        def run():
            return (
                yield from HttpClient.get(
                    sim, client_node, frontend.address, "/p"
                )
            )

        first = sim.run(sim.process(run())).status
        second = sim.run(sim.process(run())).status
        assert (first, second) == (200, 429)
        assert frontend.metrics.counter("frontend.throttle.rejected.public") == 1

    def test_per_class_metrics_recorded(self, sim, net):
        frontend = FrontendWebServer(sim, net.node("web"))
        frontend.register_app(
            WebApplication(path="/p", handler=lambda s, r: "ok")
        )
        client_node = net.node("client")

        def run():
            for qos in (1, 2, 2):
                yield from HttpClient.fetch(
                    sim,
                    client_node,
                    frontend.address,
                    HttpRequest(method="GET", path="/p", headers={QOS_HEADER: str(qos)}),
                )

        sim.run(sim.process(run()))
        assert frontend.metrics.counter("frontend.completed.qos1") == 1
        assert frontend.metrics.counter("frontend.completed.qos2") == 2
        assert frontend.metrics.sample("frontend.response_time").count == 3


class TestApiBackendGateway:
    def test_db_query_pays_connection_each_time(self, sim, net):
        database = Database()
        table = database.create_table("t", [("k", int)])
        table.insert((1,))
        server = DatabaseServer(sim, net.node("db"), database)
        gateway = ApiBackendGateway(sim, net.node("app"))

        def run():
            for _ in range(3):
                result = yield from gateway.db_query(server.address, "SELECT COUNT(*) FROM t")
                assert result.rows[0][0] == 1

        sim.run(sim.process(run()))
        # Three isolated API calls = three database connections.
        assert server.metrics.counter("db.connections") == 3
        assert gateway.metrics.counter("api.connections") == 3

    def test_http_get(self, sim, net):
        server = BackendWebServer(sim, net.node("origin"))
        server.add_static("/x", "body")
        gateway = ApiBackendGateway(sim, net.node("app"))

        def run():
            return (yield from gateway.http_get(server.address, "/x"))

        assert sim.run(sim.process(run())).body == "body"

    def test_ldap_search(self, sim, net):
        tree = DirectoryTree()
        tree.add("dc=x", {"objectClass": "domain"})
        tree.add("cn=a,dc=x", {"objectClass": "person"})
        server = DirectoryServer(sim, net.node("ldap"), tree)
        gateway = ApiBackendGateway(sim, net.node("app"))

        def run():
            return (
                yield from gateway.ldap_search(server.address, "dc=x", "sub", "(objectClass=person)")
            )

        assert len(sim.run(sim.process(run()))) == 1

    def test_mail_roundtrip(self, sim, net):
        store = MessageStore()
        store.create_mailbox("bob")
        server = MailServer(sim, net.node("mail"), store)
        gateway = ApiBackendGateway(sim, net.node("app"))

        def run():
            message_id = yield from gateway.mail_send(
                server.address, "alice", "bob", "subj", "body"
            )
            ids = yield from gateway.mail_list(server.address, "bob")
            return message_id, ids

        message_id, ids = sim.run(sim.process(run()))
        assert ids == [message_id]
        # Two API operations, two separate connections.
        assert server.metrics.counter("mail.connections") == 2
