"""Failure injection: backends dying mid-flight, lossy broker links.

The broker must degrade gracefully — answer affected requests with ERROR
replies, keep its accounting balanced, and recover when the backend
returns — because in the API model the same failures strand front-end
processes (the paper's §II hot-spot cascade).
"""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerClient,
    HttpAdapter,
    LeastOutstandingBalancer,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
)
from repro.http import BackendWebServer
from repro.net import Link, Network
from repro.sim import Simulation


class TestBackendFailure:
    def test_backend_shutdown_yields_error_replies_and_recovery(self, sim, net):
        node = net.node("web")
        origin_node = net.node("origin")
        server = BackendWebServer(sim, origin_node, max_clients=2)

        def cgi(server, request):
            yield server.sim.timeout(0.1)
            return "ok"

        server.add_cgi("/work", cgi)
        broker = ServiceBroker(
            sim,
            node,
            service="web",
            adapters=[HttpAdapter(sim, node, server.address)],
            qos=QoSPolicy(levels=1, threshold=100),
            pool_size=2,
        )
        client = BrokerClient(sim, node, {"web": broker.address})
        statuses = []

        def caller(i, delay):
            yield sim.timeout(delay)
            reply = yield from client.call(
                "web", "get", ("/work", {"i": i}), cacheable=False
            )
            statuses.append((i, reply.status))

        def chaos():
            # Let a couple of requests succeed, then crash the server:
            # live sessions sever, new connections are refused, until a
            # fresh server binds and the adapter is repointed.
            yield sim.timeout(0.35)
            server.crash()
            yield sim.timeout(1.0)
            revived = BackendWebServer(
                sim, origin_node, port=8080, max_clients=2, name="revived"
            )
            revived.add_cgi("/work", cgi)
            broker.backends[0].adapter.address = revived.address

        sim.process(chaos())
        for i in range(10):
            sim.process(caller(i, 0.3 * i))
        sim.run()

        outcome = dict(statuses)
        assert outcome[0] is ReplyStatus.OK
        assert ReplyStatus.ERROR in outcome.values(), "outage must surface"
        assert outcome[9] is ReplyStatus.OK, "broker recovers after revival"
        # Accounting balanced: nothing leaked.
        assert broker.outstanding == 0
        assert len(broker.queue) == 0

    def test_replica_failover_via_balancer(self, sim, net):
        """With a replicated backend, killing one replica only costs the
        in-flight requests; the balancer routes around it."""
        node = net.node("web")
        servers = []
        for i in range(2):
            server = BackendWebServer(sim, net.node(f"r{i}"), max_clients=4)

            def cgi(server, request):
                yield server.sim.timeout(0.05)
                return "ok"

            server.add_cgi("/work", cgi)
            servers.append(server)
        broker = ServiceBroker(
            sim,
            node,
            service="web",
            adapters=[
                HttpAdapter(sim, node, s.address, name=f"r{i}")
                for i, s in enumerate(servers)
            ],
            qos=QoSPolicy(levels=1, threshold=1000),
            balancer=LeastOutstandingBalancer(),
            pool_size=2,
        )
        client = BrokerClient(sim, node, {"web": broker.address})
        statuses = []

        def caller(i):
            yield sim.timeout(0.02 * i)
            reply = yield from client.call(
                "web", "get", ("/work", {"i": i}), cacheable=False
            )
            statuses.append(reply.status)

        def kill_r0():
            yield sim.timeout(0.3)
            servers[0].crash()

        sim.process(kill_r0())
        for i in range(40):
            sim.process(caller(i))
        sim.run()
        ok = sum(1 for s in statuses if s is ReplyStatus.OK)
        # The healthy replica keeps the service mostly available.
        assert ok >= 30
        assert servers[1].metrics.counter("http.requests") >= 20
        assert broker.outstanding == 0


class TestLossyControlPlane:
    def test_broker_operates_over_lossy_udp_with_retries(self):
        sim = Simulation(seed=31)
        net = Network(sim, default_link=Link.lan())
        web = net.node("web")
        remote = net.node("remote-frontend")
        net.connect(web, remote, Link(latency=0.005, loss=0.3))
        origin = net.node("origin")
        server = BackendWebServer(sim, origin, max_clients=4)
        server.add_static("/x", "content")
        broker = ServiceBroker(
            sim,
            web,
            service="web",
            adapters=[HttpAdapter(sim, web, server.address)],
            qos=QoSPolicy(levels=1, threshold=1000),
        )
        client = BrokerClient(
            sim, remote, {"web": broker.address}, default_timeout=0.2, retries=30
        )
        results = []

        def caller(i):
            reply = yield from client.call("web", "get", ("/x", {}))
            results.append(reply.status)

        processes = [sim.process(caller(i)) for i in range(20)]
        sim.run(sim.all_of(processes))
        assert results == [ReplyStatus.OK] * 20
        assert client.metrics.counter("client.timeouts") > 0  # loss was real
