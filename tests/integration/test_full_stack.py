"""Full-stack integration: clients → front end → brokers → backends.

Also checks the global invariants the paper's accounting relies on:
request conservation (every arrival is served, dropped, degraded,
errored, or still queued/in-flight) and end-to-end determinism.
"""

from __future__ import annotations

import pytest

from repro import (
    BackendWebServer,
    BrokerClient,
    Database,
    DatabaseAdapter,
    DatabaseServer,
    FrontendWebServer,
    HttpAdapter,
    HttpClient,
    HttpRequest,
    HttpResponse,
    Link,
    Network,
    QoSPolicy,
    ReplyStatus,
    ResultCache,
    ServiceBroker,
    Simulation,
    WebApplication,
    qos_of,
)
from repro.frontend.app import QOS_HEADER


def build_shop(seed: int):
    """An online shop: catalog DB + recommendations web service, both
    brokered, behind one front end, driven by mixed-QoS clients."""
    sim = Simulation(seed=seed)
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")

    database = Database()
    catalog = database.create_table("products", [("id", int), ("name", str)])
    for i in range(3000):
        catalog.insert((i, f"product-{i}"))
    catalog.create_index("id", "hash")
    db_server = DatabaseServer(sim, net.node("dbhost"), database, max_workers=4)

    reco = BackendWebServer(sim, net.node("reco"), max_clients=3)

    def reco_cgi(server, request):
        yield server.sim.timeout(0.05)
        return f"reco-for-{request.param('id')}"

    reco.add_cgi("/recommend", reco_cgi)

    db_broker = ServiceBroker(
        sim,
        web_node,
        service="db",
        port=7001,
        adapters=[DatabaseAdapter(sim, web_node, db_server.address)],
        qos=QoSPolicy(levels=3, threshold=15),
        cache=ResultCache(capacity=64, ttl=10, clock=lambda: sim.now),
    )
    reco_broker = ServiceBroker(
        sim,
        web_node,
        service="reco",
        port=7002,
        adapters=[HttpAdapter(sim, web_node, reco.address)],
        qos=QoSPolicy(levels=3, threshold=15),
    )
    client = BrokerClient(
        sim, web_node, {"db": db_broker.address, "reco": reco_broker.address}
    )

    def product_page(frontend_server, request):
        level = qos_of(request)
        product_id = int(request.param("id", 0))
        lookup = yield from client.call(
            "db", "query", f"SELECT name FROM products WHERE id = {product_id}",
            qos_level=level,
        )
        if lookup.status is ReplyStatus.ERROR:
            return HttpResponse.error(500, lookup.error)
        if not lookup.ok:
            return HttpResponse.text("busy", status=200)
        recommendations = yield from client.call(
            "reco", "get", ("/recommend", {"id": product_id}),
            qos_level=level, cacheable=False,
        )
        body = f"{lookup.payload.rows[0][0]}"
        if recommendations.ok and recommendations.status is ReplyStatus.OK:
            body += f" | {recommendations.payload.body}"
        return HttpResponse.text(body)

    frontend = FrontendWebServer(sim, web_node)
    frontend.register_app(WebApplication(path="/product", handler=product_page))
    return sim, net, frontend, (db_broker, reco_broker)


def drive(sim, net, frontend, n_requests: int, seed_tag: str):
    client_node = net.node("shopper")
    rng = sim.rng(f"drive.{seed_tag}")
    bodies = []

    def one(i):
        response = yield from HttpClient.fetch(
            sim,
            client_node,
            frontend.address,
            HttpRequest(
                method="GET",
                path="/product",
                params={"id": rng.randrange(100)},
                headers={QOS_HEADER: str(1 + i % 3)},
            ),
        )
        bodies.append((round(sim.now, 9), response.status, response.body))

    def driver():
        for i in range(n_requests):
            yield sim.timeout(rng.expovariate(100.0))
            sim.process(one(i))

    sim.process(driver())
    sim.run()
    return bodies


class TestFullStack:
    def test_pages_compose_both_backends(self):
        sim, net, frontend, _brokers = build_shop(seed=1)
        bodies = drive(sim, net, frontend, 30, "a")
        assert len(bodies) == 30
        full = [b for _, status, b in bodies if "|" in b]
        assert full, "at least some pages include recommendations"
        assert all(status == 200 for _, status, _ in bodies)
        assert any(b.startswith("product-") for _, _, b in bodies)

    def test_request_conservation_at_brokers(self):
        sim, net, frontend, brokers = build_shop(seed=2)
        drive(sim, net, frontend, 120, "b")
        for broker in brokers:
            m = broker.metrics
            arrivals = m.counter("broker.arrivals")
            accounted = (
                m.counter("broker.served")
                + m.counter("broker.drops")
                + m.counter("broker.cache_replies")
                + m.counter("broker.backend_errors")
            )
            assert arrivals == accounted, broker.name
            assert broker.outstanding == 0
            assert len(broker.queue) == 0

    def test_end_to_end_determinism(self):
        runs = []
        for _ in range(2):
            sim, net, frontend, _ = build_shop(seed=7)
            runs.append(drive(sim, net, frontend, 60, "c"))
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        sim1, net1, fe1, _ = build_shop(seed=7)
        out1 = drive(sim1, net1, fe1, 60, "c")
        sim2, net2, fe2, _ = build_shop(seed=8)
        out2 = drive(sim2, net2, fe2, 60, "c")
        assert out1 != out2
