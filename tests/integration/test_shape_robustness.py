"""The paper's headline shapes hold across seeds (not seed luck).

Reduced-size sweeps of the two experiments at several seeds; the
qualitative claims (clustering U-curve, QoS drop ordering, API
linearity) must hold for every one of them.
"""

from __future__ import annotations

import pytest

from repro.workload import run_clustering_experiment, run_qos_experiment

SEEDS = (1, 7, 42)


class TestClusteringShapeAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sweet_spot_beats_extremes(self, seed):
        unclustered = run_clustering_experiment(1, seed=seed)
        sweet = run_clustering_experiment(8, seed=seed)
        extreme = run_clustering_experiment(40, seed=seed)
        assert sweet.mean_response_time < unclustered.mean_response_time
        assert sweet.mean_response_time < extreme.mean_response_time
        assert all(r.errors == 0 for r in (unclustered, sweet, extreme))


class TestQosShapeAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_drop_ordering_and_api_growth(self, seed):
        light = run_qos_experiment(9, mode="broker", duration=40.0, seed=seed)
        heavy = run_qos_experiment(45, mode="broker", duration=40.0, seed=seed)
        # No drops when lightly loaded.
        for drops in light.drop_ratios.values():
            assert all(ratio == 0.0 for ratio in drops.values())
        # Heavy load: cumulative drops ordered by class.
        totals = {
            level: sum(d[level] for d in heavy.drop_ratios.values())
            for level in (1, 2, 3)
        }
        assert totals[3] > 0
        assert totals[3] >= totals[2] >= totals[1]
        # API baseline grows with load at every seed.
        api_small = run_qos_experiment(9, mode="api", duration=40.0, seed=seed)
        api_large = run_qos_experiment(27, mode="api", duration=40.0, seed=seed)
        assert api_large.mean_response_time > 1.5 * api_small.mean_response_time
