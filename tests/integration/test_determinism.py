"""Seeded end-to-end determinism against a committed golden snapshot.

The performance work on the kernel, pipeline, net and metrics layers is
only acceptable if it changes *nothing* observable: same seeds must
produce byte-identical experiment outputs. This test replays one point
of each experiment family (clustering, QoS, failure recovery) and
compares the result — floats via ``repr``, so even a single ulp of
drift fails — against ``golden_determinism.json``.

The golden file was captured from the pre-optimization tree; it must
only ever be regenerated for a *deliberate* behavioural change (new
RNG draws, different scheduling order), never to paper over an
accidental one::

    PYTHONPATH=src python - <<'EOF'
    import json
    from tests.integration.test_determinism import snapshot
    print(json.dumps(snapshot(), indent=2, sort_keys=True))
    EOF
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.workload.chaos import run_autoscale_experiment
from repro.workload.scenarios import (
    run_clustering_experiment,
    run_failure_recovery_experiment,
    run_qos_experiment,
    run_sharded_qos_experiment,
)

GOLDEN = Path(__file__).resolve().parent / "golden_determinism.json"


def snapshot():
    """One deterministic point per experiment family, floats as repr."""
    snap = {}

    fig7 = {}
    for degree in (1, 4, 8):
        r = run_clustering_experiment(degree, seed=2026)
        fig7[str(degree)] = {
            "requests": r.requests,
            "mean_response_time": repr(r.mean_response_time),
            "max_response_time": repr(r.max_response_time),
            "backend_calls": r.backend_calls,
            "errors": r.errors,
        }
    snap["fig7"] = fig7

    qos = run_qos_experiment(12, mode="broker", duration=30.0, seed=2026)
    snap["table1"] = {
        "completions": {str(k): v for k, v in sorted(qos.completions.items())},
        "full_fidelity": {
            str(k): v for k, v in sorted(qos.full_fidelity.items())
        },
        "drop_ratios": {
            broker: {str(k): repr(v) for k, v in sorted(ratios.items())}
            for broker, ratios in sorted(qos.drop_ratios.items())
        },
        "mean_response": {
            str(k): repr(v.mean) for k, v in sorted(qos.response_times.items())
        },
        "p99_response": {
            str(k): repr(v.p99) for k, v in sorted(qos.response_times.items())
        },
    }

    fr = run_failure_recovery_experiment(
        mtbf=20.0, mttr=5.0, replicas=2, duration=60.0,
        first_crash_at=10.0, seed=2026,
    )
    snap["failure_recovery"] = {
        "outages": fr.outages,
        "downtime": repr(fr.downtime),
        "requests": fr.requests,
        "ok": fr.ok,
        "degraded": fr.degraded,
        "dropped": fr.dropped,
        "errors": fr.errors,
        "timeouts": fr.timeouts,
        "outage_requests": fr.outage_requests,
        "outage_ok": fr.outage_ok,
        "outage_degraded": fr.outage_degraded,
        "latency_mean": repr(fr.latency.mean),
        "latency_p99": repr(fr.latency.p99),
        "retries": fr.retries,
        "retry_recovered": fr.retry_recovered,
        "failovers": fr.failovers,
        "failover_recovered": fr.failover_recovered,
        "breaker_opens": fr.breaker_opens,
        "fault_replies": fr.fault_replies,
    }

    def sharded_section(result):
        return {
            "completions": {
                str(k): v for k, v in sorted(result.completions.items())
            },
            "full_fidelity": {
                str(k): v for k, v in sorted(result.full_fidelity.items())
            },
            "mean_response": {
                str(k): repr(v.mean)
                for k, v in sorted(result.response_times.items())
            },
            "p99_response": {
                str(k): repr(v.p99)
                for k, v in sorted(result.response_times.items())
            },
            "forwards": result.forwards,
            "local_routes": result.local_routes,
            "elections": result.elections,
        }

    # The degenerate single-shard topology and the multi-shard serial
    # (workers=1) path both ride the exact classic code path; their
    # seeded outputs are part of the byte-identical contract.
    snap["sharded_single_shard"] = sharded_section(
        run_sharded_qos_experiment(
            12, shards=1, replicas=1, duration=30.0, seed=2026
        )
    )
    snap["sharded_workers1"] = sharded_section(
        run_sharded_qos_experiment(
            12, shards=2, replicas=2, duration=30.0, seed=2026, workers=1
        )
    )

    # One short elastic-pool point: the autoscaler control loop, the
    # drain protocol, and the tenant throttle all draw from the seeded
    # streams, so their outputs are part of the byte-identical contract.
    scale = run_autoscale_experiment(duration=60.0, seed=2026)
    snap["autoscale"] = {
        "requests": scale.requests,
        "ok": scale.ok,
        "degraded": scale.degraded,
        "throttled": scale.throttled,
        "dropped": scale.dropped,
        "timeouts": scale.timeouts,
        "errors": scale.errors,
        "provisioned": scale.provisioned,
        "scale_outs": scale.scale_outs,
        "scale_ins": scale.scale_ins,
        "drains_completed": scale.drains_completed,
        "handoffs": scale.handoffs,
        "drain_refused": scale.drain_refused,
        "mean_size": repr(scale.mean_size),
        "peak_size": scale.peak_size,
        "premium_p99": repr(scale.premium_p99()),
        "tenants": {
            name: {k: v for k, v in sorted(info.items())}
            for name, info in sorted(scale.tenants.items())
        },
        "timeline_len": len(scale.timeline),
    }
    return snap


def test_experiments_match_golden_snapshot():
    """Same seed, same outputs — bit-for-bit, including float reprs."""
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    current = snapshot()
    assert current == golden, (
        "seeded experiment outputs drifted from the golden snapshot; "
        "see the module docstring before even thinking about "
        "regenerating it"
    )


def test_partitioned_results_are_worker_count_invariant():
    """workers=2 and workers=3 agree exactly on the partitioned run.

    The parallel path is deterministic in ``(seed, shards)`` — never in
    the worker count or scheduling; see DESIGN.md §14.
    """
    runs = [
        run_sharded_qos_experiment(
            12, shards=3, replicas=1, duration=20.0, seed=2026, workers=w
        )
        for w in (2, 3)
    ]
    first, second = runs
    assert first.completions == second.completions
    assert first.full_fidelity == second.full_fidelity
    assert first.local_routes == second.local_routes
    assert {
        k: repr(v.mean) for k, v in first.response_times.items()
    } == {k: repr(v.mean) for k, v in second.response_times.items()}


def test_snapshot_is_itself_deterministic():
    """Two in-process runs of the QoS point agree exactly."""
    first = run_qos_experiment(12, mode="broker", duration=30.0, seed=2026)
    second = run_qos_experiment(12, mode="broker", duration=30.0, seed=2026)
    assert first.completions == second.completions
    assert {
        k: repr(v.mean) for k, v in first.response_times.items()
    } == {k: repr(v.mean) for k, v in second.response_times.items()}
