"""Unit tests for the ``repro bench`` harness (no real benchmark runs).

The throughput-measuring functions themselves are exercised by
``benchmarks/perf/test_perf_regression.py``; here we pin the harness
logic — baseline comparison, regression detection, report rendering,
and the JSON artifact — with fabricated results so the tier-1 suite
stays fast.
"""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.bench import (
    BenchRegression,
    compare_to_baseline,
    render_report,
    run_bench_command,
)


def _fake_results(macro_rps: float = 8000.0) -> dict:
    return {
        "schema": 2,
        "mode": "quick",
        "suite": "default",
        "seed": 2026,
        "kernel": {
            "events": 1000,
            "wall_s": 0.001,
            "events_per_sec": 1_000_000.0,
            "timeout_wall_s": 0.002,
            "timeout_events_per_sec": 500_000.0,
        },
        "pipeline": {
            "clients": 30,
            "duration_virtual_s": 120.0,
            "repeats": 2,
            "requests": 377,
            "wall_s": 0.15,
            "requests_per_sec": 2500.0,
        },
        "macro": {
            "clients": 60,
            "duration_virtual_s": 20.0,
            "repeats": 2,
            "requests": 2332,
            "walls_s": [0.3, 0.31],
            "wall_best_s": 0.3,
            "wall_p50_s": 0.3,
            "wall_p99_s": 0.31,
            "requests_per_sec": macro_rps,
        },
    }


def _baseline_for(results: dict) -> dict:
    return {
        results["mode"]: {
            name: dict(results[name])
            for name in ("kernel", "pipeline", "macro")
        }
    }


class TestCompare:
    def test_within_budget_is_ok(self):
        results = _fake_results()
        lines = compare_to_baseline(results, _baseline_for(results))
        assert len(lines) == 3
        assert all(line.startswith("        ok") for line in lines)

    def test_regression_is_flagged(self):
        baseline = _baseline_for(_fake_results(macro_rps=8000.0))
        lines = compare_to_baseline(
            _fake_results(macro_rps=4000.0), baseline, max_regression=0.30
        )
        flagged = [line for line in lines if line.startswith("REGRESSION")]
        assert len(flagged) == 1 and "macro" in flagged[0]

    def test_shallow_drop_passes_30_percent_gate(self):
        baseline = _baseline_for(_fake_results(macro_rps=8000.0))
        lines = compare_to_baseline(
            _fake_results(macro_rps=6000.0), baseline, max_regression=0.30
        )
        assert not any(line.startswith("REGRESSION") for line in lines)

    def test_missing_mode_section_is_an_error(self):
        with pytest.raises(ValueError, match="no 'quick' section"):
            compare_to_baseline(_fake_results(), {"full": {}})


class TestRunBenchCommand:
    @pytest.fixture
    def fake_suite(self, monkeypatch):
        results = _fake_results()
        monkeypatch.setattr(
            bench,
            "run_suite",
            lambda quick=False, suite="default": results,
        )
        return results

    def test_writes_json_artifact(self, fake_suite, tmp_path, monkeypatch):
        out = tmp_path / "BENCH_pipeline.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_baseline_for(fake_suite)))
        report = run_bench_command(
            quick=True, out=str(out), baseline_path=str(baseline)
        )
        written = json.loads(out.read_text())
        assert written["macro"]["requests_per_sec"] == 8000.0
        assert "macro" in report and "ok" in report

    def test_raises_bench_regression_with_report(
        self, fake_suite, tmp_path
    ):
        inflated = _baseline_for(_fake_results(macro_rps=80_000.0))
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(inflated))
        with pytest.raises(BenchRegression) as excinfo:
            run_bench_command(
                quick=True, out="", baseline_path=str(baseline)
            )
        assert "REGRESSION" in excinfo.value.report

    def test_missing_explicit_baseline_is_an_error(self, fake_suite, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_bench_command(
                quick=True,
                out="",
                baseline_path=str(tmp_path / "nope.json"),
            )

    def test_no_baseline_skips_comparison(
        self, fake_suite, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        report = run_bench_command(quick=True, out="", baseline_path=None)
        assert "comparison skipped" in report

    def test_default_out_is_suite_dependent(
        self, fake_suite, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        run_bench_command(quick=True, baseline_path=None)
        assert (tmp_path / "BENCH_pipeline.json").exists()
        run_bench_command(quick=True, baseline_path=None, suite="parallel")
        assert (tmp_path / "BENCH_parallel.json").exists()


class TestCliIntegration:
    def test_main_exits_nonzero_on_regression(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        monkeypatch.setattr(
            bench,
            "run_suite",
            lambda quick=False, suite="default": _fake_results(),
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(_baseline_for(_fake_results(macro_rps=80_000.0)))
        )
        code = main(
            [
                "bench",
                "--quick",
                "--out", str(tmp_path / "out.json"),
                "--baseline", str(baseline),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "FAILED" in captured.err


class TestReport:
    def test_render_report_mentions_all_three_benchmarks(self):
        report = render_report(_fake_results())
        assert "kernel" in report
        assert "pipeline" in report
        assert "macro" in report
        assert "p99" in report

    def test_percentile_nearest_rank(self):
        walls = [3.0, 1.0, 2.0]
        assert bench._percentile(walls, 0.50) == 2.0
        assert bench._percentile(walls, 0.99) == 3.0
        assert bench._percentile([5.0], 0.99) == 5.0


def _fake_parallel_results() -> dict:
    return {
        "schema": 2,
        "mode": "quick",
        "suite": "parallel",
        "seed": 2026,
        "parallel": {
            "clients": 12,
            "shards": 4,
            "duration_virtual_s": 10.0,
            "repeats": 1,
            "cores": 8,
            "points": [
                {"workers": 1, "wall_s": 2.0, "pages": 600,
                 "speedup_vs_w1": 1.0},
                {"workers": 2, "wall_s": 1.1, "pages": 600,
                 "speedup_vs_w1": 2.0 / 1.1},
            ],
            "wall_w1_s": 2.0,
            "pages_per_sec_w1": 300.0,
            "best_speedup": 2.0 / 1.1,
        },
    }


class TestSuites:
    def test_unknown_suite_is_an_error(self):
        with pytest.raises(ValueError, match="unknown suite"):
            bench.run_suite(suite="nope")

    def test_suite_names_cover_all_benchmarks(self):
        assert set(bench.SUITES["all"]) == {
            "kernel", "pipeline", "macro", "parallel", "telemetry",
            "autoscale",
        }
        assert bench.SUITES["parallel"] == ("parallel",)
        assert bench.SUITES["telemetry"] == ("telemetry",)
        assert bench.SUITES["autoscale"] == ("autoscale",)

    def test_render_report_parallel_section(self):
        report = render_report(_fake_parallel_results())
        assert "parallel" in report
        assert "workers=2" in report
        assert "kernel" not in report

    def test_compare_skips_missing_benchmarks(self):
        results = _fake_parallel_results()
        baseline = {"quick": {"parallel": {"pages_per_sec_w1": 290.0}}}
        lines = compare_to_baseline(results, baseline)
        assert len(lines) == 1
        assert "parallel.pages_per_sec_w1" in lines[0]
        assert lines[0].lstrip().startswith("ok")

    def test_compare_reports_uncompared_benchmarks(self):
        results = _fake_parallel_results()
        lines = compare_to_baseline(results, {"quick": {}})
        assert len(lines) == 1
        assert "not compared" in lines[0]


class TestProfile:
    def test_profile_macro_writes_pstats_file(self, tmp_path, monkeypatch):
        import pstats

        def tiny_macro(*args, **kwargs):
            sum(range(1000))

        monkeypatch.setattr(bench, "run_qos_experiment", tiny_macro)
        out = tmp_path / "BENCH_profile.pstats"
        summary = bench.profile_macro(out=str(out))
        assert out.exists()
        # The dump must be loadable by the stdlib pstats reader.
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0
        assert "BENCH_profile.pstats" in summary
