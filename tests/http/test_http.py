"""Tests for the HTTP message model, backend server, and client."""

from __future__ import annotations

import pytest

from repro.http import BackendWebServer, HttpClient, HttpRequest, HttpResponse


class TestMessages:
    def test_method_validation(self):
        with pytest.raises(ValueError):
            HttpRequest(method="PUT", path="/x")

    def test_mget_requires_paths(self):
        with pytest.raises(ValueError):
            HttpRequest(method="MGET", path="")

    def test_response_helpers(self):
        ok = HttpResponse.text("body")
        assert ok.ok and ok.status == 200 and ok.reason == "OK"
        err = HttpResponse.error(404)
        assert not err.ok and err.body == "Not Found"


@pytest.fixture
def server(sim, net):
    srv = BackendWebServer(sim, net.node("backend"), max_clients=2)
    srv.add_static("/index.html", "<html>hi</html>")

    def cgi(server, request):
        yield server.sim.timeout(float(request.param("t", 0.5)))
        return f"param={request.param('x')}"

    srv.add_cgi("/cgi/work", cgi)
    return srv


class TestBackendWebServer:
    def test_static_get(self, sim, net, server):
        client_node = net.node("app")

        def run():
            response = yield from HttpClient.get(
                sim, client_node, server.address, "/index.html"
            )
            return response

        response = sim.run(sim.process(run()))
        assert response.ok
        assert response.body == "<html>hi</html>"

    def test_missing_resource_404(self, sim, net, server):
        client_node = net.node("app")

        def run():
            return (
                yield from HttpClient.get(sim, client_node, server.address, "/ghost")
            )

        assert sim.run(sim.process(run())).status == 404

    def test_cgi_receives_params(self, sim, net, server):
        client_node = net.node("app")

        def run():
            return (
                yield from HttpClient.get(
                    sim, client_node, server.address, "/cgi/work", {"x": 7, "t": 0.1}
                )
            )

        assert sim.run(sim.process(run())).body == "param=7"

    def test_max_clients_serializes_work(self, sim, net, server):
        client_node = net.node("app")
        finished = []

        def one(i):
            yield from HttpClient.get(
                sim, client_node, server.address, "/cgi/work", {"x": i, "t": 1.0}
            )
            finished.append(sim.now)

        for i in range(4):
            sim.process(one(i))
        sim.run()
        early = [t for t in finished if t < 1.5]
        late = [t for t in finished if t >= 1.5]
        assert len(early) == 2 and len(late) == 2

    def test_mget_served_in_one_slot(self, sim, net, server):
        client_node = net.node("app")

        def run():
            conn = yield from HttpClient.open(sim, client_node, server.address)
            response = yield from conn.mget(["/index.html", "/ghost", "/index.html"])
            conn.close()
            return response

        response = sim.run(sim.process(run()))
        assert response.status == 206
        statuses = [part.status for _, part in response.parts]
        assert statuses == [200, 404, 200]
        assert server.metrics.counter("http.mget_batches") == 1

    def test_cgi_exception_becomes_500(self, sim, net, server):
        def broken(server, request):
            raise RuntimeError("boom")
            yield  # pragma: no cover

        server.add_cgi("/cgi/broken", broken)
        client_node = net.node("app")

        def run():
            return (
                yield from HttpClient.get(sim, client_node, server.address, "/cgi/broken")
            )

        response = sim.run(sim.process(run()))
        assert response.status == 500
        assert "boom" in response.body

    def test_keep_alive_reuses_connection(self, sim, net, server):
        client_node = net.node("app")

        def run():
            conn = yield from HttpClient.open(sim, client_node, server.address)
            first = yield from conn.get("/index.html")
            second = yield from conn.get("/index.html")
            conn.close()
            return first.ok and second.ok

        assert sim.run(sim.process(run()))
        assert net.metrics.counter("net.connections") == 1

    def test_load_inspection(self, sim, net, server):
        client_node = net.node("app")
        seen = {}

        def one(i):
            yield from HttpClient.get(
                sim, client_node, server.address, "/cgi/work", {"t": 1.0}
            )

        def probe():
            yield sim.timeout(0.5)
            seen["active"] = server.active_requests
            seen["queued"] = server.queued_requests

        for i in range(5):
            sim.process(one(i))
        sim.process(probe())
        sim.run()
        assert seen["active"] == 2
        assert seen["queued"] == 3
