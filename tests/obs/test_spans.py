"""Tests for span-based request tracing."""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerClient,
    HttpAdapter,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
)
from repro.http import BackendWebServer
from repro.obs import Span, TraceCollector
from repro.workload import run_clustering_experiment, run_qos_experiment


def run_broker_scenario(sim, net, collector, n_requests=8, service_time=0.05):
    """One broker over one backend; *n_requests* staggered calls."""
    collector.attach(sim)
    node = net.node("web")
    server = BackendWebServer(sim, net.node("origin"), max_clients=2)

    def cgi(server, request):
        yield server.sim.timeout(service_time)
        return "ok"

    server.add_cgi("/s", cgi)
    broker = ServiceBroker(
        sim,
        node,
        service="web",
        adapters=[HttpAdapter(sim, node, server.address)],
        qos=QoSPolicy(levels=3, threshold=100),
        pool_size=2,
    )
    client = BrokerClient(sim, node, {"web": broker.address})
    statuses = []

    def one(i):
        yield sim.timeout(0.01 * i)
        reply = yield from client.call(
            "web", "get", ("/s", {"i": i}), qos_level=(i % 3) + 1, cacheable=False
        )
        statuses.append(reply.status)

    for i in range(n_requests):
        sim.process(one(i))
    sim.run()
    assert all(status is ReplyStatus.OK for status in statuses)
    return broker


class TestSpanTree:
    def test_all_spans_closed_and_nested(self, sim, net):
        collector = TraceCollector()
        run_broker_scenario(sim, net, collector)
        assert len(collector) == 8
        for trace in collector.traces:
            assert trace.validate() == []
            for span in trace.spans():
                assert span.end is not None
                assert span.end >= span.start
                # No span closes before its children (the invariant
                # validate() checks, asserted directly here).
                for child in span.children:
                    assert child.end <= span.end + 1e-9

    def test_expected_spans_present(self, sim, net):
        collector = TraceCollector()
        run_broker_scenario(sim, net, collector)
        trace = collector.traces[0]
        for name in ("net.request", "queue", "net.reply", "stage.execute"):
            assert trace.find(name) is not None, name
        broker_span = trace.find("broker:web")
        assert broker_span is not None
        assert any(c.name.startswith("stage.") for c in broker_span.walk())

    def test_hops_sum_to_end_to_end_latency(self, sim, net):
        collector = TraceCollector()
        run_broker_scenario(sim, net, collector)
        for trace in collector.traces:
            total = sum(hop.duration for hop in trace.hops)
            assert total == pytest.approx(trace.duration, abs=1e-9)
            # Hops telescope: consecutive hops share a boundary.
            for first, second in zip(trace.hops, trace.hops[1:]):
                assert first.end == pytest.approx(second.start, abs=1e-12)

    def test_trace_metadata(self, sim, net):
        collector = TraceCollector()
        run_broker_scenario(sim, net, collector)
        trace = collector.traces[0]
        assert trace.origin == "web"
        assert trace.broker == "broker:web"
        assert trace.status == "ok"
        assert trace.request_id is not None
        assert trace.qos_level in (1, 2, 3)


class TestCollector:
    def test_sampling_keeps_every_nth_root(self, sim, net):
        collector = TraceCollector(sample=3)
        run_broker_scenario(sim, net, collector, n_requests=9)
        assert collector.roots_seen == 9
        assert len(collector) == 3

    def test_limit_bounds_retention(self, sim, net):
        collector = TraceCollector(limit=2)
        run_broker_scenario(sim, net, collector, n_requests=5)
        assert len(collector) == 2
        assert collector.dropped == 3

    def test_histograms_fed_for_every_request(self, sim, net):
        collector = TraceCollector(sample=100)  # retain almost nothing
        run_broker_scenario(sim, net, collector, n_requests=6)
        assert len(collector) == 1
        assert collector.metrics.histogram("obs.latency.all").count == 6
        assert collector.metrics.histogram("obs.stage.execute").count == 6
        by_backend = collector.metrics.histograms("obs.backend.")
        assert sum(h.count for h in by_backend.values()) == 6

    def test_slowest_ranked_descending(self, sim, net):
        collector = TraceCollector()
        run_broker_scenario(sim, net, collector)
        ranked = collector.slowest(3)
        assert len(ranked) == 3
        durations = [trace.duration for trace in ranked]
        assert durations == sorted(durations, reverse=True)

    def test_fold_events_attaches_tracer_records(self, sim, net):
        collector = TraceCollector()
        run_broker_scenario(sim, net, collector)
        folded = collector.fold_events()
        assert folded > 0
        names = {
            event.name
            for trace in collector.traces
            for span in trace.spans()
            for event in span.events
        }
        assert "broker.arrival" in names

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceCollector(sample=0)
        with pytest.raises(ValueError):
            TraceCollector(limit=0)


class TestParentChildTraces:
    def test_frontend_trace_nests_broker_calls(self):
        collector = TraceCollector()
        run_clustering_experiment(2, n_requests=6, seed=7, obs=collector)
        assert collector.roots_seen == 6
        with_children = [t for t in collector.traces if t.children]
        assert with_children, "front-end traces should nest broker calls"
        for trace in with_children:
            assert trace.validate() == []
            child = trace.children[0]
            assert child.broker == "clustering-broker"
            # The child's root span is part of the parent's span tree.
            assert child.root in trace.spans()
            total = sum(hop.duration for hop in trace.hops)
            assert total == pytest.approx(trace.duration, abs=1e-9)


class TestDeterminism:
    def test_tracing_does_not_perturb_seeded_results(self):
        baseline = run_qos_experiment(6, mode="broker", duration=8.0, seed=5)
        traced = run_qos_experiment(
            6, mode="broker", duration=8.0, seed=5, obs=TraceCollector()
        )
        assert traced.completions == baseline.completions
        assert traced.full_fidelity == baseline.full_fidelity
        for level in baseline.response_times:
            assert traced.response_times[level].mean == pytest.approx(
                baseline.response_times[level].mean, abs=0.0
            )


class TestSpanPrimitives:
    def test_contains_and_walk(self):
        outer = Span("outer", "x", 0.0, 10.0)
        inner = Span("inner", "x", 2.0, 4.0)
        outer.add_child(inner)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert [s.name for s in outer.walk()] == ["outer", "inner"]
        assert inner.parent is outer
        assert inner.duration == pytest.approx(2.0)
