"""Tests for the trace exporters and the terminal waterfall renderer."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    TraceCollector,
    critical_path,
    render_attribution,
    render_trace,
    render_waterfall,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

from .test_spans import run_broker_scenario


@pytest.fixture
def collector(sim, net):
    collector = TraceCollector()
    run_broker_scenario(sim, net, collector)
    collector.fold_events()
    return collector


class TestChromeTrace:
    def test_document_is_valid(self, collector):
        doc = to_chrome_trace(collector.traces)
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"

    def test_complete_events_use_microseconds(self, collector):
        trace = collector.traces[0]
        doc = to_chrome_trace([trace])
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        root = next(e for e in events if e["name"] == "request")
        assert root["ts"] == pytest.approx(trace.start * 1e6)
        assert root["dur"] == pytest.approx(trace.duration * 1e6)

    def test_one_thread_lane_per_trace(self, collector):
        doc = to_chrome_trace(collector.traces)
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(tids) == len(collector.traces)
        names = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert len(names) == len(collector.traces)

    def test_folded_events_become_instants(self, collector):
        doc = to_chrome_trace(collector.traces)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants
        assert all(e["s"] == "t" for e in instants)

    def test_write_round_trips_through_json(self, collector, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(collector.traces, str(path))
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []

    def test_validator_catches_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        bad = {"traceEvents": [{"ph": "Z", "name": 3, "pid": "x", "tid": 0}]}
        problems = validate_chrome_trace(bad)
        assert len(problems) >= 2

    def test_write_refuses_invalid_document(self, tmp_path, monkeypatch):
        # Build a trace, then corrupt the exporter's view of it.
        import repro.obs.export as export

        def broken(_traces):
            return {"traceEvents": [{"ph": "Z"}]}

        monkeypatch.setattr(export, "to_chrome_trace", broken)
        with pytest.raises(ValueError):
            export.write_chrome_trace([], str(tmp_path / "bad.json"))


class TestJsonl:
    def test_one_object_per_span(self, collector, tmp_path):
        path = tmp_path / "spans.jsonl"
        written = write_jsonl(collector.traces, str(path))
        lines = path.read_text().splitlines()
        assert written == len(lines) == collector.span_count()
        record = json.loads(lines[0])
        for key in ("trace", "span", "start", "end", "category", "parent"):
            assert key in record

    def test_to_jsonl_parses(self, collector):
        for line in to_jsonl(collector.traces):
            json.loads(line)


class TestTimeline:
    def test_waterfall_shows_hops_and_sum(self, collector):
        trace = collector.traces[0]
        text = render_waterfall(trace)
        for hop in trace.hops:
            assert hop.name in text
        assert "sum" in text
        assert "end-to-end" in text

    def test_attribution_mentions_broker_and_fidelity(self, collector):
        text = render_attribution(collector.traces[0])
        assert "at broker broker:web" in text
        assert "full-fidelity" in text

    def test_critical_path_descends_along_longest_children(self, collector):
        path = critical_path(collector.traces[0])
        assert path[0].name == "request"
        for parent, child in zip(path, path[1:]):
            assert child in parent.children
        # Stops at a leaf or where only zero-width children remain.
        tail = path[-1]
        assert not tail.children or all(
            child.duration <= 0 for child in tail.children
        )

    def test_render_trace_combines_sections(self, collector):
        text = render_trace(collector.traces[0], events=True)
        assert "critical path:" in text
        assert "sum" in text
