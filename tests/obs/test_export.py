"""Tests for the trace exporters and the terminal waterfall renderer."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    TraceCollector,
    critical_path,
    render_attribution,
    render_trace,
    render_waterfall,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

from .test_spans import run_broker_scenario


@pytest.fixture
def collector(sim, net):
    collector = TraceCollector()
    run_broker_scenario(sim, net, collector)
    collector.fold_events()
    return collector


class TestChromeTrace:
    def test_document_is_valid(self, collector):
        doc = to_chrome_trace(collector.traces)
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"

    def test_complete_events_use_microseconds(self, collector):
        trace = collector.traces[0]
        doc = to_chrome_trace([trace])
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        root = next(e for e in events if e["name"] == "request")
        assert root["ts"] == pytest.approx(trace.start * 1e6)
        assert root["dur"] == pytest.approx(trace.duration * 1e6)

    def test_one_thread_lane_per_trace(self, collector):
        doc = to_chrome_trace(collector.traces)
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(tids) == len(collector.traces)
        names = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert len(names) == len(collector.traces)

    def test_folded_events_become_instants(self, collector):
        doc = to_chrome_trace(collector.traces)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants
        assert all(e["s"] == "t" for e in instants)

    def test_write_round_trips_through_json(self, collector, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(collector.traces, str(path))
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []

    def test_validator_catches_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        bad = {"traceEvents": [{"ph": "Z", "name": 3, "pid": "x", "tid": 0}]}
        problems = validate_chrome_trace(bad)
        assert len(problems) >= 2

    def test_write_refuses_invalid_document(self, tmp_path, monkeypatch):
        # Build a trace, then corrupt the exporter's view of it.
        import repro.obs.export as export

        def broken(_traces):
            return {"traceEvents": [{"ph": "Z"}]}

        monkeypatch.setattr(export, "to_chrome_trace", broken)
        with pytest.raises(ValueError):
            export.write_chrome_trace([], str(tmp_path / "bad.json"))


class TestJsonl:
    def test_one_object_per_span(self, collector, tmp_path):
        path = tmp_path / "spans.jsonl"
        written = write_jsonl(collector.traces, str(path))
        lines = path.read_text().splitlines()
        assert written == len(lines) == collector.span_count()
        record = json.loads(lines[0])
        for key in ("trace", "span", "start", "end", "category", "parent"):
            assert key in record

    def test_to_jsonl_parses(self, collector):
        for line in to_jsonl(collector.traces):
            json.loads(line)


class TestTimeline:
    def test_waterfall_shows_hops_and_sum(self, collector):
        trace = collector.traces[0]
        text = render_waterfall(trace)
        for hop in trace.hops:
            assert hop.name in text
        assert "sum" in text
        assert "end-to-end" in text

    def test_attribution_mentions_broker_and_fidelity(self, collector):
        text = render_attribution(collector.traces[0])
        assert "at broker broker:web" in text
        assert "full-fidelity" in text

    def test_critical_path_descends_along_longest_children(self, collector):
        path = critical_path(collector.traces[0])
        assert path[0].name == "request"
        for parent, child in zip(path, path[1:]):
            assert child in parent.children
        # Stops at a leaf or where only zero-width children remain.
        tail = path[-1]
        assert not tail.children or all(
            child.duration <= 0 for child in tail.children
        )

    def test_render_trace_combines_sections(self, collector):
        text = render_trace(collector.traces[0], events=True)
        assert "critical path:" in text
        assert "sum" in text


def _telemetry_scraper():
    """A scraper with counters, a gauge, and a watched histogram."""
    from repro.metrics import MetricsRegistry
    from repro.obs import TelemetryScraper
    from repro.sim import Simulation

    sim = Simulation(seed=9)
    registry = MetricsRegistry()
    hist = registry.histogram_handle("app.latency", edges=(0.01, 0.1, 1.0))

    def ticker():
        while True:
            yield 0.5
            registry.increment("app.requests")
            hist.add(0.05)

    sim.process(ticker(), name="ticker")
    scraper = TelemetryScraper(interval=1.0).attach(sim)
    scraper.watch_registry(registry, prefix="app.")
    scraper.add_gauge("depth", lambda: 3.0)
    scraper.start(until=5.0)
    sim.run(until=5.0)
    return scraper


class TestTelemetryJsonl:
    def test_round_trip_validates_clean(self):
        from repro.obs import telemetry_to_jsonl, validate_telemetry_jsonl

        lines = telemetry_to_jsonl(_telemetry_scraper())
        assert validate_telemetry_jsonl(lines) == []
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["schema"] == 1
        assert header["retained"] == len(lines) - 1

    def test_scrape_lines_carry_all_sections(self):
        from repro.obs import telemetry_to_jsonl

        lines = telemetry_to_jsonl(_telemetry_scraper())
        record = json.loads(lines[1])
        assert record["kind"] == "scrape"
        assert "app.requests" in record["counters"]
        assert "depth" in record["gauges"]
        assert any(".p99." in k for k in record["percentiles"])

    def test_write_creates_file_and_returns_line_count(self, tmp_path):
        from repro.obs import validate_telemetry_jsonl, write_telemetry_jsonl

        path = tmp_path / "t.jsonl"
        written = write_telemetry_jsonl(_telemetry_scraper(), path)
        lines = path.read_text().splitlines()
        assert written == len(lines)
        assert validate_telemetry_jsonl(lines) == []

    def test_validator_rejects_missing_header(self):
        from repro.obs import validate_telemetry_jsonl

        problems = validate_telemetry_jsonl(
            ['{"kind": "scrape", "t": 1, "counters": {}, '
             '"gauges": {}, "percentiles": {}}']
        )
        assert any("header" in p for p in problems)

    def test_validator_rejects_unknown_schema(self):
        from repro.obs import validate_telemetry_jsonl

        problems = validate_telemetry_jsonl(
            ['{"kind": "header", "schema": 99, "interval": 1.0}']
        )
        assert any("schema" in p for p in problems)

    def test_validator_rejects_non_increasing_t(self):
        from repro.obs import validate_telemetry_jsonl

        scrape = (
            '{"kind": "scrape", "t": %d, "counters": {}, '
            '"gauges": {}, "percentiles": {}}'
        )
        problems = validate_telemetry_jsonl(
            [
                '{"kind": "header", "schema": 1, "interval": 1.0}',
                scrape % 2,
                scrape % 1,
            ]
        )
        assert any("does not increase" in p for p in problems)

    def test_validator_rejects_null_counter_and_bad_json(self):
        from repro.obs import validate_telemetry_jsonl

        problems = validate_telemetry_jsonl(
            [
                '{"kind": "header", "schema": 1, "interval": 1.0}',
                '{"kind": "scrape", "t": 1, "counters": {"x": null}, '
                '"gauges": {}, "percentiles": {"p": null}}',
                "not json",
            ]
        )
        assert any("is null" in p for p in problems)
        assert any("invalid JSON" in p for p in problems)
        # A percentile null is legal, so exactly those two problems.
        assert len(problems) == 2


class TestPrometheus:
    def test_snapshot_validates_clean(self):
        from repro.obs import to_prometheus, validate_prometheus

        text = to_prometheus(_telemetry_scraper())
        assert validate_prometheus(text) == []

    def test_names_are_sanitized_under_repro_prefix(self):
        from repro.obs import to_prometheus

        text = to_prometheus(_telemetry_scraper())
        assert "repro_app_requests" in text
        assert "# TYPE repro_app_requests counter" in text
        assert "# TYPE repro_depth gauge" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        from repro.obs import to_prometheus

        text = to_prometheus(_telemetry_scraper())
        buckets = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_app_latency_bucket")
        ]
        assert buckets == sorted(buckets)
        assert 'le="+Inf"' in text
        count = next(
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_app_latency_count")
        )
        assert buckets[-1] == count

    def test_write_prometheus_creates_file(self, tmp_path):
        from repro.obs import validate_prometheus, write_prometheus

        path = tmp_path / "snap.prom"
        text = write_prometheus(_telemetry_scraper(), path)
        assert path.read_text() == text
        assert validate_prometheus(text) == []

    def test_validator_rejects_malformed_lines(self):
        from repro.obs import validate_prometheus

        problems = validate_prometheus(
            "# TYPE bad kind\n9metric 1.0\ngood_metric notanumber\n"
        )
        assert len(problems) >= 3
