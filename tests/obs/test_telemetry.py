"""Tests for the in-flight telemetry scraper and its ring buffers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import LatencyHistogram, MetricsRegistry
from repro.obs import TelemetryScraper, TimeSeries, run_telemetry_command
from repro.obs.telemetry import _HistogramTrack
from repro.sim import Simulation
from repro.workload.scenarios import run_qos_experiment


class TestTimeSeries:
    def test_appends_and_reads_back_in_order(self):
        series = TimeSeries("x", capacity=8)
        series.append(1.0, 10.0)
        series.append(2.0, 20.0)
        assert series.points() == [(1.0, 10.0), (2.0, 20.0)]
        assert series.last() == (2.0, 20.0)
        assert len(series) == 2

    def test_non_monotonic_append_rejected(self):
        series = TimeSeries("x")
        series.append(5.0, 1.0)
        with pytest.raises(ValueError, match="non-monotonic"):
            series.append(4.0, 2.0)

    def test_equal_timestamps_allowed(self):
        series = TimeSeries("x")
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeries("x", capacity=0)

    def test_eviction_drops_oldest_and_counts(self):
        series = TimeSeries("x", capacity=3)
        for i in range(5):
            series.append(float(i), float(i * 10))
        assert series.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert series.dropped == 2

    def test_value_at_picks_newest_at_or_before(self):
        series = TimeSeries("x")
        series.append(1.0, 1.0)
        series.append(3.0, 3.0)
        assert series.value_at(2.5) == 1.0
        assert series.value_at(3.0) == 3.0
        assert series.value_at(0.5) is None

    def test_window_is_half_open(self):
        series = TimeSeries("x")
        for t in (1.0, 2.0, 3.0, 4.0):
            series.append(t, t)
        assert series.window(since=1.0, until=3.0) == [(2.0, 2.0), (3.0, 3.0)]

    def test_delta_over_uses_zero_baseline_before_history(self):
        # Counters start at 0 at t=0, so a window reaching back before
        # the first scrape baselines at zero, not at the first point.
        series = TimeSeries("x")
        series.append(1.0, 5.0)
        series.append(2.0, 8.0)
        assert series.delta_over(10.0) == 8.0

    def test_delta_over_clips_to_retained_history_after_eviction(self):
        series = TimeSeries("x", capacity=2)
        for t, v in ((1.0, 10.0), (2.0, 20.0), (3.0, 30.0)):
            series.append(t, v)
        # Window reaches past the evicted point: baseline is the oldest
        # retained value (20), not an invented zero.
        assert series.delta_over(10.0) == 10.0

    def test_rate_over_rejects_nonpositive_window(self):
        series = TimeSeries("x")
        with pytest.raises(ValueError):
            series.rate_over(0.0)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60)
    def test_capacity_bound_and_oldest_first_eviction(self, values, capacity):
        series = TimeSeries("p", capacity=capacity)
        for i, value in enumerate(values):
            series.append(float(i), value)
        assert len(series) <= capacity
        expected = [
            (float(i), v) for i, v in enumerate(values)
        ][-capacity:]
        assert series.points() == expected
        assert series.dropped == max(0, len(values) - capacity)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=40,
        ),
        st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=60)
    def test_delta_over_matches_brute_force_on_cumulative_series(
        self, increments, window
    ):
        series = TimeSeries("c", capacity=1000)
        total = 0.0
        points = []
        for i, inc in enumerate(increments):
            total += inc
            series.append(float(i), total)
            points.append((float(i), total))
        at = points[-1][0]
        cutoff = at - window
        baseline = 0.0
        for t, v in points:
            if t <= cutoff:
                baseline = v
        expected = points[-1][1] - baseline
        assert series.delta_over(window) == pytest.approx(expected)
        assert series.delta_over(window) >= 0.0


class TestHistogramTrack:
    def _hist(self, values, edges=(1.0, 2.0, 5.0)):
        hist = LatencyHistogram(edges)
        for value in values:
            hist.add(value)
        return hist

    def test_windowed_delta_isolates_recent_observations(self):
        track = _HistogramTrack(edges=(1.0, 2.0, 5.0), capacity=16)
        hist = self._hist([0.5, 0.5])
        track.record(1.0, hist)
        hist.add(4.0)
        hist.add(4.5)
        track.record(2.0, hist)
        delta = track.windowed(window=1.0, at=2.0)
        assert delta.count == 2
        # Only the two 4.x observations are in the window; their bucket
        # is (2, 5], so the bucket-resolution percentile lands there.
        assert 2.0 <= delta.percentile(50) <= 5.0

    def test_window_reaching_before_history_is_whole_run(self):
        track = _HistogramTrack(edges=(1.0, 2.0, 5.0), capacity=16)
        track.record(1.0, self._hist([0.5, 3.0]))
        delta = track.windowed(window=100.0, at=1.0)
        assert delta.count == 2

    def test_empty_track_returns_none(self):
        track = _HistogramTrack(edges=(1.0,), capacity=4)
        assert track.windowed(window=1.0) is None

    def test_all_overflow_window_pins_min_max_to_top_edge(self):
        track = _HistogramTrack(edges=(1.0, 2.0), capacity=4)
        track.record(1.0, self._hist([10.0, 20.0], edges=(1.0, 2.0)))
        delta = track.windowed(window=5.0, at=1.0)
        assert delta._min == 2.0
        assert delta._max == 2.0
        assert delta.percentile(99) == 2.0

    @given(
        st.lists(
            st.lists(
                st.floats(min_value=0.01, max_value=10.0),
                min_size=0,
                max_size=5,
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40)
    def test_full_window_delta_equals_cumulative_histogram(self, batches):
        edges = (0.1, 1.0, 5.0)
        hist = LatencyHistogram(edges)
        track = _HistogramTrack(edges=edges, capacity=64)
        for i, batch in enumerate(batches):
            for value in batch:
                hist.add(value)
            track.record(float(i + 1), hist)
        delta = track.windowed(window=1e9)
        assert delta.count == hist.count
        assert list(delta.counts) == list(hist.counts)
        assert delta.overflow == hist.overflow
        if hist.count:
            # Bucket-resolution estimates bracket the exact percentile.
            exact = hist.percentile(50)
            assert delta.percentile(50) == pytest.approx(exact, abs=5.0)


def _scraped_sim(interval=1.0, until=5.0, **kwargs):
    """A tiny simulation: one counter ticking at 2/s, one gauge."""
    sim = Simulation(seed=7)
    registry = MetricsRegistry()
    hist = registry.histogram_handle("app.latency", edges=(0.01, 0.1, 1.0))

    def ticker():
        while True:
            yield 0.5
            registry.increment("app.requests")
            hist.add(0.05)

    sim.process(ticker(), name="ticker")
    scraper = TelemetryScraper(interval=interval, **kwargs)
    scraper.attach(sim)
    scraper.watch_registry(registry, prefix="app.")
    scraper.add_gauge("depth", lambda: 3.0)
    scraper.start(until=until)
    sim.run(until=until)
    return scraper


class TestTelemetryScraper:
    def test_scrapes_at_every_interval_up_to_horizon(self):
        scraper = _scraped_sim(interval=1.0, until=5.0)
        assert scraper.scrapes == 5
        assert [record.t for record in scraper.records] == [
            1.0, 2.0, 3.0, 4.0, 5.0,
        ]

    def test_counters_sampled_cumulatively(self):
        scraper = _scraped_sim()
        series = scraper.series["app.requests"]
        # The ticker increments at 0.5, 1.0, 1.5, ... but its t=k.0
        # event was scheduled after the scraper's, so each scrape sees
        # the odd count — deterministically, every run.
        assert [v for _, v in series.points()] == [1.0, 3.0, 5.0, 7.0, 9.0]
        assert series.rate_over(2.0) == pytest.approx(2.0)

    def test_gauges_sampled_each_scrape(self):
        scraper = _scraped_sim()
        assert [v for _, v in scraper.series["depth"].points()] == [3.0] * 5

    def test_windowed_percentiles_get_series(self):
        scraper = _scraped_sim()
        key = "app.latency.p99.5s"
        assert key in scraper.series
        # All observations are 0.05s -> inside the (0.01, 0.1] bucket.
        _, p99 = scraper.series[key].last()
        assert 0.01 <= p99 <= 0.1
        assert scraper.windowed_percentile(
            "app.latency", 99, window=5.0
        ) == pytest.approx(p99)

    def test_counter_delta_sums_and_ignores_missing(self):
        scraper = _scraped_sim()
        assert scraper.counter_delta(
            ["app.requests", "nope"], window=2.0
        ) == pytest.approx(4.0)

    def test_requires_attach_before_start(self):
        with pytest.raises(RuntimeError, match="attach"):
            TelemetryScraper().start(until=1.0)

    def test_double_start_rejected(self):
        sim = Simulation(seed=1)
        scraper = TelemetryScraper().attach(sim)
        scraper.start(until=1.0)
        with pytest.raises(RuntimeError, match="started"):
            scraper.start(until=1.0)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetryScraper(interval=0.0)

    def test_subscribers_run_after_each_scrape(self):
        seen = []
        sim = Simulation(seed=1)
        scraper = TelemetryScraper(interval=1.0).attach(sim)
        scraper.subscribe(lambda s, record: seen.append(record.t))
        scraper.start(until=3.0)
        sim.run(until=3.0)
        assert seen == [1.0, 2.0, 3.0]

    def test_records_ring_is_bounded(self):
        scraper = _scraped_sim(interval=0.1, until=5.0, capacity=10)
        assert len(scraper.records) == 10
        assert scraper.scrapes == 50


class TestWorkloadIsolation:
    """Telemetry on vs off must not change workload results."""

    def test_qos_results_identical_with_and_without_scraper(self):
        base = run_qos_experiment(12, mode="broker", duration=30.0, seed=5)
        scraper = TelemetryScraper(interval=1.0)
        scraped = run_qos_experiment(
            12, mode="broker", duration=30.0, seed=5, telemetry=scraper
        )
        assert scraper.scrapes == 30
        assert scraped.completions == base.completions
        assert scraped.full_fidelity == base.full_fidelity
        assert scraped.frontend_rejections == base.frontend_rejections
        assert scraped.drop_ratios == base.drop_ratios
        for level in base.response_times:
            assert (
                scraped.response_times[level].mean
                == base.response_times[level].mean
            )

    def test_scrape_series_deterministic_across_reruns(self):
        def capture():
            scraper = TelemetryScraper(interval=1.0)
            run_qos_experiment(
                12, mode="broker", duration=30.0, seed=5, telemetry=scraper
            )
            return [record.to_dict() for record in scraper.records]

        assert capture() == capture()


class TestTelemetryCommand:
    def test_quick_qos_run_returns_scraper_and_engine(self):
        out = run_telemetry_command(
            scenario="qos", quick=True, seed=3, emit=None
        )
        assert out["scenario"] == "qos"
        assert out["scraper"].scrapes == 30
        assert out["engine"].evaluations == 30
        assert out["exports"] == {}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry scenario"):
            run_telemetry_command(scenario="nope", emit=None)

    def test_export_writes_jsonl_and_prometheus(self, tmp_path):
        jsonl = tmp_path / "TELEMETRY.jsonl"
        out = run_telemetry_command(
            scenario="qos",
            quick=True,
            seed=3,
            export=str(jsonl),
            emit=None,
        )
        assert jsonl.exists()
        prom = tmp_path / "TELEMETRY.prom"
        assert prom.exists()
        assert out["exports"] == {
            "jsonl": str(jsonl),
            "prometheus": str(prom),
        }

    def test_shard_scenario_scrapes_leader_only_shard_table(self):
        out = run_telemetry_command(
            scenario="shard", quick=True, seed=3, shards=2, emit=None
        )
        shard_series = [
            name
            for name in out["scraper"].series
            if name.startswith("shard.load.")
        ]
        assert shard_series, sorted(out["scraper"].series)

    def test_dashboard_and_slo_emit_renderings(self):
        lines = []
        run_telemetry_command(
            scenario="qos",
            quick=True,
            seed=3,
            slo=True,
            dashboard=True,
            emit=lines.append,
        )
        text = "\n".join(lines)
        assert "telemetry dashboard" in text
        assert "alert timeline" in text
