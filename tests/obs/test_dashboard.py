"""Tests for the terminal sparkline dashboard."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import MetricsRegistry
from repro.obs import (
    Panel,
    SloEngine,
    TelemetryScraper,
    default_panels,
    live_panel,
    qos_slos,
    render_dashboard,
    sparkline,
)
from repro.obs.dashboard import SPARK_CHARS
from repro.sim import Simulation


class TestSparkline:
    def test_empty_series_renders_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_lowest_level(self):
        assert sparkline([5.0, 5.0, 5.0]) == SPARK_CHARS[0] * 3

    def test_min_and_max_hit_the_extremes(self):
        out = sparkline([0.0, 1.0])
        assert out == SPARK_CHARS[0] + SPARK_CHARS[-1]

    def test_nan_renders_as_space(self):
        out = sparkline([0.0, math.nan, 1.0])
        assert out[1] == " "

    def test_all_nan_renders_spaces(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_width_takes_the_tail(self):
        out = sparkline([0.0] * 10 + [1.0], width=2)
        assert len(out) == 2
        assert out[-1] == SPARK_CHARS[-1]

    @given(
        st.lists(
            st.floats(min_value=-1e9, max_value=1e9),
            min_size=1,
            max_size=100,
        ),
        st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=60)
    def test_output_width_and_alphabet(self, values, width):
        out = sparkline(values, width)
        assert len(out) == min(len(values), width)
        assert all(c in SPARK_CHARS + " " for c in out)


class TestPanel:
    def test_kind_validated(self):
        with pytest.raises(ValueError, match="value|rate"):
            Panel(title="t", rows=(), kind="bogus")


def _scraper_with_series():
    """A scraper fed from a tiny sim with counter + gauge families."""
    sim = Simulation(seed=3)
    registry = MetricsRegistry()

    def ticker():
        while True:
            yield 1.0
            registry.increment("app.fullfid.qos1")
            registry.increment("app.fullfid.qos2", 2)

    sim.process(ticker(), name="ticker")
    scraper = TelemetryScraper(interval=1.0).attach(sim)
    scraper.watch_registry(registry, prefix="app.")
    scraper.add_gauge("broker.load.b1", lambda: 4.0)
    scraper.add_gauge("broker.load.b1.queue_depth", lambda: 2.0)
    scraper.use_slo(SloEngine(qos_slos()))
    scraper.start(until=6.0)
    sim.run(until=6.0)
    return scraper


class TestDefaultPanels:
    def test_families_with_series_get_panels(self):
        scraper = _scraper_with_series()
        titles = [panel.title for panel in default_panels(scraper)]
        assert any("full-fidelity" in t for t in titles)
        assert any("outstanding" in t for t in titles)
        assert any("queue depth" in t for t in titles)
        assert any("error budget" in t for t in titles)

    def test_empty_scraper_yields_no_panels(self):
        sim = Simulation(seed=1)
        scraper = TelemetryScraper().attach(sim)
        assert default_panels(scraper) == []

    def test_rows_are_capped(self):
        scraper = _scraper_with_series()
        for panel in default_panels(scraper):
            assert len(panel.rows) <= 12


class TestRenderDashboard:
    def test_live_frame_has_header_and_sparklines(self):
        scraper = _scraper_with_series()
        frame = render_dashboard(scraper)
        assert "telemetry dashboard" in frame
        assert "live" in frame
        assert any(c in frame for c in SPARK_CHARS)

    def test_replay_frame_is_deterministic_and_labelled(self):
        scraper = _scraper_with_series()
        first = render_dashboard(scraper, at=3.0)
        second = render_dashboard(scraper, at=3.0)
        assert first == second
        assert "replay" in first
        assert "t=3s" in first

    def test_replay_excludes_future_points(self):
        scraper = _scraper_with_series()
        early = render_dashboard(scraper, at=2.0)
        late = render_dashboard(scraper, at=6.0)
        assert early != late

    def test_rate_panels_divide_by_interval(self):
        scraper = _scraper_with_series()
        frame = render_dashboard(scraper)
        # qos2 increments by 2 each second -> its last rate shows 2.
        lines = [l for l in frame.splitlines() if "fullfid.qos2" in l]
        assert lines and lines[0].rstrip().endswith("2")

    def test_engine_alerts_section(self):
        scraper = _scraper_with_series()
        frame = render_dashboard(scraper, engine=scraper.slo)
        assert "alerts: 0 fired, 0 active" in frame


class TestLivePanel:
    def test_subscriber_emits_every_n_scrapes(self):
        frames = []
        sim = Simulation(seed=2)
        scraper = TelemetryScraper(interval=1.0).attach(sim)
        scraper.add_gauge("g", lambda: 1.0)
        scraper.subscribe(live_panel(frames.append, every=2))
        scraper.start(until=6.0)
        sim.run(until=6.0)
        assert len(frames) == 3
        assert all("telemetry dashboard" in frame for frame in frames)

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            live_panel(print, every=0)
