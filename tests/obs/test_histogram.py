"""Tests for the fixed-bucket latency histogram."""

from __future__ import annotations

import math

import pytest

from repro.metrics import (
    DEFAULT_LATENCY_EDGES,
    LatencyHistogram,
    MetricsRegistry,
    render_histogram,
    render_histograms,
)


class TestBuckets:
    def test_default_edges_are_sorted_and_log_spaced(self):
        edges = DEFAULT_LATENCY_EDGES
        assert list(edges) == sorted(edges)
        assert edges[0] == 1e-4
        assert edges[-1] == 100.0

    def test_value_on_exact_boundary_lands_in_lower_bucket(self):
        # bisect_left makes each bucket upper-edge-inclusive: a value
        # exactly on an edge counts in the bucket that edge closes.
        hist = LatencyHistogram(edges=(1.0, 2.0, 5.0))
        hist.add(1.0)
        hist.add(2.0)
        hist.add(5.0)
        buckets = dict(hist.buckets())
        assert buckets[1.0] == 1
        assert buckets[2.0] == 1
        assert buckets[5.0] == 1
        assert hist.overflow == 0

    def test_value_just_past_boundary_lands_in_next_bucket(self):
        hist = LatencyHistogram(edges=(1.0, 2.0))
        hist.add(1.0000001)
        buckets = dict(hist.buckets())
        assert buckets[1.0] == 0
        assert buckets[2.0] == 1

    def test_overflow_bucket(self):
        hist = LatencyHistogram(edges=(1.0, 2.0))
        hist.add(3.0)
        hist.add(1000.0)
        assert hist.overflow == 2
        assert hist.count == 2
        assert dict(hist.buckets())[math.inf] == 2

    def test_counts_and_mean(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.003):
            hist.add(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(0.002)
        assert hist.minimum == 0.001
        assert hist.maximum == 0.003


class TestQuantiles:
    def test_empty_quantiles_are_nan(self):
        hist = LatencyHistogram()
        assert math.isnan(hist.p50)
        assert math.isnan(hist.p99)
        assert math.isnan(hist.percentile(10.0))
        assert math.isnan(hist.mean)

    def test_single_value_quantiles_clamp_to_it(self):
        hist = LatencyHistogram()
        hist.add(0.05)
        for q in (0.0, 50.0, 90.0, 99.9, 100.0):
            assert hist.percentile(q) == pytest.approx(0.05)

    def test_percentiles_are_monotone(self):
        hist = LatencyHistogram()
        for i in range(1, 1001):
            hist.add(i / 1000.0)
        p50, p90, p99, p999 = hist.p50, hist.p90, hist.p99, hist.p999
        assert p50 <= p90 <= p99 <= p999 <= hist.maximum
        assert p50 == pytest.approx(0.5, rel=0.25)
        assert p99 == pytest.approx(0.99, rel=0.25)

    def test_overflow_quantile_reports_observed_max(self):
        hist = LatencyHistogram(edges=(1.0,))
        hist.add(500.0)
        assert hist.percentile(99.0) == 500.0

    def test_percentile_range_validated(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.percentile(-1.0)
        with pytest.raises(ValueError):
            hist.percentile(101.0)


class TestRegistryIntegration:
    def test_histogram_handle_accumulates(self):
        metrics = MetricsRegistry()
        handle = metrics.histogram_handle("obs.stage.execute")
        handle.add(0.01)
        handle.add(0.02)
        assert metrics.histogram("obs.stage.execute").count == 2
        # Same name returns the same histogram.
        assert metrics.histogram_handle("obs.stage.execute") is handle

    def test_missing_histogram_is_empty(self):
        metrics = MetricsRegistry()
        assert metrics.histogram("nope").count == 0

    def test_prefix_scan_sorted(self):
        metrics = MetricsRegistry()
        metrics.histogram_handle("obs.stage.b").add(1.0)
        metrics.histogram_handle("obs.stage.a").add(1.0)
        metrics.histogram_handle("other").add(1.0)
        assert list(metrics.histograms("obs.stage.")) == [
            "obs.stage.a",
            "obs.stage.b",
        ]


class TestRendering:
    def test_render_histograms_table(self):
        hist = LatencyHistogram()
        hist.add(0.01)
        text = render_histograms({"obs.latency.all": hist}, title="t")
        assert "obs.latency.all" in text
        assert "p99" in text

    def test_render_histogram_bars(self):
        hist = LatencyHistogram(edges=(0.01, 0.1))
        for _ in range(5):
            hist.add(0.005)
        text = render_histogram(hist)
        assert "#" in text

    def test_render_empty_histogram(self):
        assert "empty" in render_histogram(LatencyHistogram())


class TestMerge:
    def test_merge_sums_counts_overflow_and_total(self):
        a = LatencyHistogram(edges=(1.0, 2.0))
        b = LatencyHistogram(edges=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            a.add(v)
        for v in (0.6, 9.5):
            b.add(v)
        merged = a.merge(b)
        assert merged.count == 5
        assert merged.overflow == 2
        assert merged.total == pytest.approx(0.5 + 1.5 + 9.0 + 0.6 + 9.5)
        assert merged.minimum == 0.5
        assert merged.maximum == 9.5

    def test_merge_requires_identical_edges(self):
        a = LatencyHistogram(edges=(1.0, 2.0))
        b = LatencyHistogram(edges=(1.0, 3.0))
        with pytest.raises(ValueError, match="edges"):
            a.merge(b)

    def test_merge_with_empty_operand_keeps_min_max(self):
        a = LatencyHistogram(edges=(1.0, 2.0))
        a.add(0.5)
        empty = LatencyHistogram(edges=(1.0, 2.0))
        merged = a.merge(empty)
        assert merged.minimum == 0.5
        assert merged.maximum == 0.5
        both_empty = empty.merge(LatencyHistogram(edges=(1.0, 2.0)))
        assert both_empty.count == 0
        assert math.isnan(both_empty.percentile(50))

    def test_merge_does_not_mutate_operands(self):
        a = LatencyHistogram(edges=(1.0,))
        b = LatencyHistogram(edges=(1.0,))
        a.add(0.5)
        b.add(0.6)
        a.merge(b)
        assert a.count == 1 and b.count == 1

    def test_merge_equals_adding_all_values_to_one(self):
        import random

        rng = random.Random(4)
        values_a = [rng.uniform(0.0001, 50.0) for _ in range(200)]
        values_b = [rng.uniform(0.0001, 200.0) for _ in range(150)]
        a = LatencyHistogram()
        b = LatencyHistogram()
        combined = LatencyHistogram()
        for v in values_a:
            a.add(v)
            combined.add(v)
        for v in values_b:
            b.add(v)
            combined.add(v)
        merged = a.merge(b)
        assert list(merged.counts) == list(combined.counts)
        assert merged.overflow == combined.overflow
        assert merged.count == combined.count
        assert merged.total == pytest.approx(combined.total)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum
        for q in (50, 90, 99):
            assert merged.percentile(q) == pytest.approx(
                combined.percentile(q)
            )
