"""Tests for the SLO engine, burn-rate math, and alert determinism."""

from __future__ import annotations

import pytest

from repro.obs import (
    BurnAlert,
    SloEngine,
    SloSpec,
    TelemetryScraper,
    chaos_slos,
    qos_slos,
    render_alert_timeline,
    render_slo_table,
    shard_slos,
)
from repro.workload.chaos import run_chaos_experiment


class FakeScraper:
    """A scraper stub exposing just the counter_delta read surface."""

    def __init__(self, deltas):
        self.deltas = deltas
        self.records = []

    def counter_delta(self, names, window, at=None):
        return sum(self.deltas.get((name, window), 0.0) for name in names)


def spec(**overrides):
    base = dict(
        name="s",
        objective=0.9,
        good=("good",),
        total=("total",),
        fast=(5.0, 60.0),
        slow=(30.0, 360.0),
        fast_burn=2.0,
        slow_burn=1.0,
    )
    base.update(overrides)
    return SloSpec(**base)


class TestSloSpec:
    def test_objective_bounds_enforced(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="objective"):
                spec(objective=bad)

    def test_exactly_one_of_good_or_bad(self):
        with pytest.raises(ValueError, match="exactly one"):
            spec(good=("g",), bad=("b",))
        with pytest.raises(ValueError, match="exactly one"):
            spec(good=(), bad=())

    def test_total_required(self):
        with pytest.raises(ValueError, match="total"):
            spec(total=())

    def test_budget_is_one_minus_objective(self):
        assert spec(objective=0.9).budget == pytest.approx(0.1)


class TestBurnMath:
    def test_burn_is_bad_fraction_over_budget(self):
        engine = SloEngine([spec()])
        scraper = FakeScraper(
            {("total", 5.0): 100.0, ("good", 5.0): 98.0}
        )
        # bad fraction 2% against a 10% budget -> burn 0.2.
        burn = engine._burn(engine.specs[0], scraper, 5.0, at=1.0)
        assert burn == pytest.approx(0.2)

    def test_explicit_bad_counters_used_directly(self):
        engine = SloEngine([spec(good=(), bad=("bad",))])
        scraper = FakeScraper({("total", 5.0): 50.0, ("bad", 5.0): 5.0})
        assert engine._burn(
            engine.specs[0], scraper, 5.0, at=1.0
        ) == pytest.approx(1.0)

    def test_zero_total_means_zero_burn(self):
        engine = SloEngine([spec()])
        assert engine._burn(engine.specs[0], FakeScraper({}), 5.0, 1.0) == 0.0

    def test_good_exceeding_total_clamps_to_zero(self):
        engine = SloEngine([spec()])
        scraper = FakeScraper({("total", 5.0): 10.0, ("good", 5.0): 12.0})
        assert engine._burn(engine.specs[0], scraper, 5.0, 1.0) == 0.0


class TestAlertLifecycle:
    def _engine_and_scraper(self, bad_frac):
        engine = SloEngine([spec(good=(), bad=("bad",), fast_burn=2.0)])
        deltas = {}
        for window in (5.0, 30.0, 60.0, 360.0):
            deltas[("total", window)] = 100.0
            deltas[("bad", window)] = bad_frac * 100.0
        return engine, FakeScraper(deltas)

    def test_pair_fires_only_when_both_windows_exceed(self):
        engine, scraper = self._engine_and_scraper(bad_frac=0.5)  # burn 5
        engine.evaluate(scraper, now=10.0)
        severities = {alert.severity for alert in engine.alerts}
        assert severities == {"fast", "slow"}
        assert all(alert.fired_at == 10.0 for alert in engine.alerts)

    def test_short_window_alone_does_not_fire(self):
        engine = SloEngine([spec(good=(), bad=("bad",), fast_burn=2.0)])
        deltas = {("total", w): 100.0 for w in (5.0, 30.0, 60.0, 360.0)}
        deltas[("bad", 5.0)] = 50.0  # burn 5 on the short window only
        engine.evaluate(FakeScraper(deltas), now=1.0)
        assert not [a for a in engine.alerts if a.severity == "fast"]

    def test_alert_resolves_when_burn_subsides(self):
        engine, hot = self._engine_and_scraper(bad_frac=0.5)
        engine.evaluate(hot, now=1.0)
        assert engine.active_alerts()
        _, cold = self._engine_and_scraper(bad_frac=0.0)
        engine.evaluate(cold, now=2.0)
        assert not engine.active_alerts()
        assert all(alert.resolved_at == 2.0 for alert in engine.alerts)

    def test_no_refire_while_active(self):
        engine, scraper = self._engine_and_scraper(bad_frac=0.5)
        engine.evaluate(scraper, now=1.0)
        engine.evaluate(scraper, now=2.0)
        assert len(engine.alerts) == 2  # one fast + one slow, not four

    def test_evaluate_returns_burn_and_budget_gauges(self):
        engine, scraper = self._engine_and_scraper(bad_frac=0.1)
        gauges = engine.evaluate(scraper, now=1.0)
        assert gauges["slo.s.burn5s"] == pytest.approx(1.0)
        assert gauges["slo.s.budget"] == pytest.approx(0.0)

    def test_first_alert_time(self):
        engine, scraper = self._engine_and_scraper(bad_frac=0.5)
        assert engine.first_alert_time() is None
        engine.evaluate(scraper, now=7.0)
        assert engine.first_alert_time() == 7.0


class TestEngineConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine([spec(), spec()])

    def test_spec_named_lookup(self):
        engine = SloEngine([spec()])
        assert engine.spec_named("s").name == "s"
        with pytest.raises(KeyError):
            engine.spec_named("missing")


class TestFactories:
    def test_qos_slos_cover_all_levels(self):
        specs = qos_slos()
        assert [s.name for s in specs] == [
            "qos1-fullfid", "qos2-fullfid", "qos3-fullfid",
        ]
        # Objectives step down with priority, like the broker's policy.
        assert specs[0].objective > specs[1].objective > specs[2].objective

    def test_chaos_slos_track_drops_and_latency(self):
        by_name = {s.name: s for s in chaos_slos()}
        assert "workload.dropped" in by_name["chaos-answered"].bad
        assert by_name["chaos-fast"].good == ("workload.fast",)

    def test_shard_slos_mirror_qos(self):
        assert [s.name for s in shard_slos()] == [s.name for s in qos_slos()]


class TestChaosAlertDeterminism:
    """Burn alerts fire deterministically — and before the floor trips."""

    def _soak(self):
        scraper = TelemetryScraper(interval=1.0)
        engine = SloEngine(chaos_slos())
        scraper.use_slo(engine)
        result = run_chaos_experiment(
            duration=90.0, seed=2026, telemetry=scraper
        )
        return result, engine

    def test_alert_timeline_identical_across_reruns(self):
        _, first = self._soak()
        _, second = self._soak()
        assert render_alert_timeline(first) == render_alert_timeline(second)
        assert [
            (a.slo, a.severity, a.fired_at, a.resolved_at)
            for a in first.alerts
        ] == [
            (a.slo, a.severity, a.fired_at, a.resolved_at)
            for a in second.alerts
        ]

    def test_burn_alert_fires_while_availability_floor_holds(self):
        # ISSUE 9 acceptance: the spike-shed burn alert is the early
        # warning; the steady-workload availability invariant stays
        # green for the same run.
        result, engine = self._soak()
        assert engine.alerts, "chaos soak fired no burn-rate alerts"
        floor = next(
            inv for inv in result.invariants if "availability" in inv.name
        )
        assert floor.passed, floor
        assert engine.first_alert_time() < result.duration


class TestRenderers:
    def test_slo_table_lists_every_spec(self):
        scraper = TelemetryScraper(interval=1.0)
        engine = SloEngine(qos_slos())
        text = render_slo_table(engine, scraper)
        for spec_ in engine.specs:
            assert spec_.name in text

    def test_timeline_empty_case(self):
        assert "no burn-rate alerts" in render_alert_timeline(
            SloEngine([spec()])
        )

    def test_timeline_orders_fire_and_resolve_chronologically(self):
        engine = SloEngine([spec()])
        engine.alerts.append(
            BurnAlert(
                slo="s", severity="fast", fired_at=5.0, threshold=2.0,
                short_window=5.0, long_window=60.0,
                short_burn=3.0, long_burn=2.5, resolved_at=9.0,
            )
        )
        engine.alerts.append(
            BurnAlert(
                slo="s", severity="slow", fired_at=7.0, threshold=1.0,
                short_window=30.0, long_window=360.0,
                short_burn=1.5, long_burn=1.2,
            )
        )
        lines = render_alert_timeline(engine).splitlines()[1:]
        times = [float(line.split("=")[1].split("s")[0]) for line in lines]
        assert times == sorted(times)
        assert "FIRE" in lines[0] and "RESOLVE" in lines[-1]
