"""Tests for the experiment CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig7_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.command == "fig7"
        assert args.degrees[0] == 1
        assert args.seed == 2026

    def test_int_list_parsing(self):
        args = build_parser().parse_args(["fig9", "--clients", "5,10"])
        assert args.clients == [5, 10]

    def test_bad_int_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9", "--clients", "ten"])

    def test_seed_per_subcommand(self):
        args = build_parser().parse_args(["fig7", "--seed", "9"])
        assert args.seed == 9

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.command == "bench"
        assert not args.quick
        assert not args.profile
        assert args.out is None  # auto-named per suite
        assert args.suite == "default"
        assert args.profile_out == "BENCH_profile.pstats"
        assert args.baseline is None
        assert args.max_regression == 0.30

    def test_bench_flags(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--profile", "--out", "x.json",
             "--baseline", "b.json", "--max-regression", "0.5",
             "--suite", "parallel", "--profile-out", "p.pstats"]
        )
        assert args.quick and args.profile
        assert args.out == "x.json"
        assert args.baseline == "b.json"
        assert args.max_regression == 0.5
        assert args.suite == "parallel"
        assert args.profile_out == "p.pstats"

    def test_obs_defaults(self):
        args = build_parser().parse_args(["obs"])
        assert args.command == "obs"
        assert args.scenario == "qos"
        assert args.trace_sample == 1
        assert args.slowest == 5
        assert args.export is None and args.jsonl is None
        assert not args.quick and not args.describe

    def test_obs_flags(self):
        args = build_parser().parse_args(
            ["obs", "--scenario", "fig7", "--trace-sample", "4",
             "--slowest", "2", "--export", "t.json", "--jsonl", "s.jsonl",
             "--quick"]
        )
        assert args.scenario == "fig7"
        assert args.trace_sample == 4
        assert args.slowest == 2
        assert args.export == "t.json"
        assert args.jsonl == "s.jsonl"
        assert args.quick

    def test_obs_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "--scenario", "nope"])

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.command == "chaos"
        assert not args.describe and not args.quick
        assert args.duration == 300.0
        assert args.capacity == 48
        assert args.policy == "drop-lowest"
        assert args.mtbf == 25.0 and args.mttr == 2.0
        assert args.recovery == "replay"
        assert args.availability_floor == 0.99
        assert args.summary_out is None
        assert args.seed == 2026

    def test_chaos_flags(self):
        args = build_parser().parse_args(
            ["chaos", "--quick", "--capacity", "32", "--policy", "reject-new",
             "--mtbf", "10", "--mttr", "1", "--recovery", "shed",
             "--availability-floor", "0.95", "--summary-out", "s.json"]
        )
        assert args.quick
        assert args.capacity == 32
        assert args.policy == "reject-new"
        assert args.mtbf == 10.0 and args.mttr == 1.0
        assert args.recovery == "shed"
        assert args.availability_floor == 0.95
        assert args.summary_out == "s.json"

    def test_chaos_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--policy", "drop-random"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--recovery", "pray"])


class TestCommands:
    def test_fig7_output(self, capsys):
        assert main(["fig7", "--degrees", "1,4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "degree" in out
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == 5  # title + header + rule + 2 rows

    def test_fig9_output(self, capsys):
        assert main(["fig9", "--clients", "4", "--duration", "15"]) == 0
        out = capsys.readouterr().out
        assert "api_s" in out and "broker_s" in out

    def test_fig10_output(self, capsys):
        assert main(["fig10", "--clients", "4", "--duration", "15"]) == 0
        out = capsys.readouterr().out
        assert "qos1_s" in out and "qos3_s" in out

    def test_table1_output(self, capsys):
        assert main(["table1", "--clients", "4", "--duration", "15"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_drops_prints_three_tables(self, capsys):
        assert main(["drops", "--clients", "4", "--duration", "15"]) == 0
        out = capsys.readouterr().out
        for table in ("Table II", "Table III", "Table IV"):
            assert table in out

    def test_pipeline_describe(self, capsys):
        assert main(["pipeline", "--describe"]) == 0
        out = capsys.readouterr().out
        assert "distributed broker pipeline" in out
        assert "centralized broker pipeline" in out
        assert "fault-tolerant broker pipeline" in out
        assert "ingress/dispatch boundary" in out
        # The distributed plan admits at the broker; the centralized
        # section must not list an admission stage.
        _, rest = out.split("centralized broker pipeline")
        centralized = rest.split("fault-tolerant broker pipeline")[0]
        names = [
            line.split()[1]
            for line in centralized.splitlines()
            if line.strip()[:1].isdigit()
        ]
        assert "admission" not in names
        assert "load-report" in names
        # The fault-tolerant plan wraps execution in the fault stages.
        fault_tolerant = rest.split("fault-tolerant broker pipeline")[1]
        ft_names = [
            line.split()[1]
            for line in fault_tolerant.splitlines()
            if line.strip()[:1].isdigit()
        ]
        for stage in ("timeout", "breaker", "retry", "failover"):
            assert stage in ft_names

    def test_faults_describe(self, capsys):
        assert main(["faults", "--describe"]) == 0
        out = capsys.readouterr().out
        for kind in ("backend-crash", "link-down", "link-degrade", "slow-backend"):
            assert kind in out
        assert "fault-tolerant" in out
        assert "broker.retry.attempts" in out
        assert "broker.breaker.state" in out

    def test_faults_sweep_prints_availability_table(self, capsys):
        assert main([
            "faults", "--mtbf", "20", "--mttr", "4",
            "--duration", "30", "--replicas", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Failure recovery" in out
        assert "outage_avail_pct" in out

    def test_pipeline_describe_one_model(self, capsys):
        assert main(["pipeline", "--describe", "--model", "distributed"]) == 0
        out = capsys.readouterr().out
        assert "distributed broker pipeline" in out
        assert "centralized" not in out

    def test_pipeline_stage_order(self, capsys):
        assert main(["pipeline", "--model", "distributed"]) == 0
        lines = [
            line.strip() for line in capsys.readouterr().out.splitlines()
        ]
        names = [line.split()[1] for line in lines if line[:1].isdigit()]
        assert names == [
            "validate", "arrival", "cache-lookup", "admission", "fidelity",
            "enqueue", "cluster", "execute", "cache-fill", "reply",
        ]

    def test_obs_describe(self, capsys):
        assert main(["obs", "--describe"]) == 0
        out = capsys.readouterr().out
        assert "Span model" in out
        assert "Overhead contract" in out
        assert "chrome://tracing" in out

    def test_obs_quick_run_with_export(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        export = tmp_path / "trace.json"
        jsonl = tmp_path / "spans.jsonl"
        assert main([
            "obs", "--quick", "--scenario", "fig7", "--trace-sample", "1",
            "--slowest", "2", "--export", str(export), "--jsonl", str(jsonl),
        ]) == 0
        out = capsys.readouterr().out
        assert "obs report" in out
        assert "slowest 2 request(s):" in out
        assert "end-to-end" in out
        assert "schema ok" in out
        doc = json.loads(export.read_text())
        assert validate_chrome_trace(doc) == []
        assert jsonl.read_text().strip()

    def test_chaos_describe(self, capsys):
        assert main(["chaos", "--describe"]) == 0
        out = capsys.readouterr().out
        assert "Chaos soak" in out
        assert "broker-crash" in out
        assert "no-lost-request" in out
        assert "availability-floor" in out

    def test_chaos_quick_run_with_summary(self, capsys, tmp_path):
        import json

        summary = tmp_path / "CHAOS_soak.json"
        assert main(["chaos", "--quick", "--summary-out", str(summary)]) == 0
        out = capsys.readouterr().out
        assert "Chaos soak" in out
        assert out.count("PASS") == 4
        assert "FAIL" not in out
        payload = json.loads(summary.read_text())
        assert payload["invariants_hold"] is True
        assert payload["requests"] > 0
        assert len(payload["invariants"]) == 4

    def test_chaos_invariant_failure_exits_nonzero(self, capsys):
        # An impossible availability floor makes the invariant fail; the
        # CLI must still print the full report and exit 1.
        code = main(["chaos", "--quick", "--availability-floor", "1.0"])
        captured = capsys.readouterr()
        assert code == 1
        assert "INVARIANT availability-floor" in captured.out
        assert "FAIL" in captured.out
        assert "chaos invariants violated" in captured.err

    def test_determinism_across_invocations(self, capsys):
        main(["fig7", "--degrees", "2", "--seed", "11"])
        first = capsys.readouterr().out
        main(["fig7", "--degrees", "2", "--seed", "11"])
        second = capsys.readouterr().out
        assert first == second


class TestCacheCommand:
    def test_cache_defaults(self):
        args = build_parser().parse_args(["cache"])
        assert args.command == "cache"
        assert not args.describe and not args.quick
        assert args.clients == 600
        assert args.brokers == 4
        assert args.duration == 30.0
        assert args.ttl == 2.0
        assert not args.no_views
        assert args.summary_out is None
        assert args.seed == 2026

    def test_cache_flags(self):
        args = build_parser().parse_args(
            ["cache", "--quick", "--clients", "40", "--brokers", "2",
             "--duration", "4", "--ttl", "1.5", "--no-views",
             "--summary-out", "c.json", "--seed", "7"]
        )
        assert args.quick
        assert args.clients == 40 and args.brokers == 2
        assert args.duration == 4.0 and args.ttl == 1.5
        assert args.no_views
        assert args.summary_out == "c.json"
        assert args.seed == 7

    def test_cache_describe(self, capsys):
        assert main(["cache", "--describe"]) == 0
        out = capsys.readouterr().out
        assert "Cache-tier broker pipeline" in out
        assert "cache-tier" in out and "query-combine" in out
        assert "write-through" in out
        assert "broker.cachetier" in out

    def test_pipeline_describes_cache_tier_model(self, capsys):
        assert main(["pipeline", "--describe", "--model", "cache-tier"]) == 0
        out = capsys.readouterr().out
        assert "cache-tier broker pipeline (12 stages)" in out
        assert "query-combine" in out

    def test_cache_small_run_with_summary(self, capsys, tmp_path):
        import json

        summary = tmp_path / "CACHE_tier.json"
        assert main([
            "cache", "--clients", "24", "--brokers", "2", "--duration", "2",
            "--summary-out", str(summary), "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Cross-request optimization tier" in out
        assert "local-caches" in out and "shared-tier" in out
        assert "backend-load reduction" in out
        payload = json.loads(summary.read_text())
        assert payload["reduction"] > 1.0
        assert payload["modes"]["shared-tier"]["tier_hits"] > 0
        assert payload["modes"]["local-caches"]["tier_hits"] == 0


class TestTelemetryCommand:
    def test_telemetry_defaults(self):
        args = build_parser().parse_args(["telemetry"])
        assert args.command == "telemetry"
        assert args.scenario == "qos"
        assert args.clients == 60
        assert args.duration == 120.0
        assert args.interval == 1.0
        assert args.shards == 4 and args.replicas == 2
        assert args.export is None
        assert not args.slo and not args.dashboard
        assert not args.quick and not args.describe
        assert args.seed == 2026

    def test_telemetry_flags(self):
        args = build_parser().parse_args(
            ["telemetry", "--scenario", "chaos", "--interval", "0.5",
             "--slo", "--dashboard", "--export", "t.jsonl", "--quick",
             "--seed", "7"]
        )
        assert args.scenario == "chaos"
        assert args.interval == 0.5
        assert args.slo and args.dashboard and args.quick
        assert args.export == "t.jsonl"
        assert args.seed == 7

    def test_telemetry_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry", "--scenario", "nope"])

    def test_telemetry_describe(self, capsys):
        assert main(["telemetry", "--describe"]) == 0
        out = capsys.readouterr().out
        assert "TelemetryScraper" in out
        assert "SLO engine" in out
        assert "Determinism" in out

    def test_telemetry_quick_run_with_export(self, capsys, tmp_path):
        from repro.obs import validate_prometheus, validate_telemetry_jsonl

        jsonl = tmp_path / "TELEMETRY_qos.jsonl"
        assert main([
            "telemetry", "--quick", "--slo", "--export", str(jsonl),
        ]) == 0
        out = capsys.readouterr().out
        assert "scrapes=30" in out
        assert "alert timeline" in out
        lines = jsonl.read_text().splitlines()
        assert validate_telemetry_jsonl(lines) == []
        prom = tmp_path / "TELEMETRY_qos.prom"
        assert validate_prometheus(prom.read_text()) == []

    def test_telemetry_deterministic_across_invocations(self, capsys, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main([
                "telemetry", "--quick", "--export", str(path),
            ]) == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_bench_accepts_telemetry_suite(self):
        args = build_parser().parse_args(["bench", "--suite", "telemetry"])
        assert args.suite == "telemetry"


class TestAutoscaleCommand:
    def test_autoscale_defaults(self):
        args = build_parser().parse_args(["autoscale"])
        assert args.command == "autoscale"
        assert args.duration is None
        assert args.period == 120.0
        assert args.swing == 10.0
        assert args.target is None
        assert args.wave_period == 24.0
        assert args.min_scale_ins is None
        assert args.summary_out is None
        assert not args.soak and not args.quick and not args.describe
        assert args.seed == 2026

    def test_autoscale_flags(self):
        args = build_parser().parse_args(
            ["autoscale", "--soak", "--quick", "--duration", "60",
             "--wave-period", "12", "--min-scale-ins", "5",
             "--target", "2.0", "--summary-out", "a.json", "--seed", "7"]
        )
        assert args.soak and args.quick
        assert args.duration == 60.0
        assert args.wave_period == 12.0
        assert args.min_scale_ins == 5
        assert args.target == 2.0
        assert args.summary_out == "a.json"
        assert args.seed == 7

    def test_autoscale_describe(self, capsys):
        assert main(["autoscale", "--describe"]) == 0
        out = capsys.readouterr().out
        assert "Graceful drain" in out
        assert "no-lost-request" in out
        assert "pool-efficiency" in out
        assert "drain sniper" in out

    def test_autoscale_quick_run_with_summary(self, capsys, tmp_path):
        import json

        summary = tmp_path / "AUTOSCALE_run.json"
        assert main([
            "autoscale", "--quick", "--summary-out", str(summary),
        ]) == 0
        out = capsys.readouterr().out
        assert "Autoscale headline" in out
        assert out.count("PASS") == 5
        assert "FAIL" not in out
        payload = json.loads(summary.read_text())
        assert payload["invariants_hold"] is True
        assert payload["scale_ins"] > 0
        assert len(payload["invariants"]) == 5

    def test_autoscale_soak_quick_run_with_summary(self, capsys, tmp_path):
        import json

        summary = tmp_path / "AUTOSCALE_soak.json"
        assert main([
            "autoscale", "--soak", "--quick",
            "--summary-out", str(summary),
        ]) == 0
        out = capsys.readouterr().out
        assert "Scale-chaos soak" in out
        assert out.count("PASS") == 6
        assert "FAIL" not in out
        payload = json.loads(summary.read_text())
        assert payload["invariants_hold"] is True
        assert payload["mid_drain_kills"] >= 1
        assert len(payload["invariants"]) == 6

    def test_autoscale_invariant_failure_exits_nonzero(self, capsys):
        # An impossible scale-in floor fails scale-in-coverage; the CLI
        # must still print the full report and exit 1.
        code = main([
            "autoscale", "--soak", "--quick",
            "--min-scale-ins", "100000",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "INVARIANT scale-in-coverage" in captured.out
        assert "FAIL" in captured.out
        assert "chaos invariants violated" in captured.err

    def test_autoscale_deterministic_across_invocations(self, capsys, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main([
                "autoscale", "--quick", "--summary-out", str(path),
            ]) == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_bench_accepts_autoscale_suite(self):
        args = build_parser().parse_args(["bench", "--suite", "autoscale"])
        assert args.suite == "autoscale"
