"""Tests for the fault-tolerance primitives and pipeline stages."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BreakerState,
    BrokerClient,
    CircuitBreaker,
    HttpAdapter,
    QoSPolicy,
    ReplyStatus,
    RetryPolicy,
    ServiceBroker,
    available_backends,
    fault_tolerant_stage_plan,
    stage_plan,
)
from repro.core.cache import ResultCache
from repro.errors import BrokerError
from repro.http.server import BackendWebServer
from repro.metrics import MetricsRegistry
from repro.net import BackendCrash, FaultInjector, FaultPlan
from repro.sim import Simulation

FT_ORDER = [
    "validate", "arrival", "timeout", "cache-lookup", "admission",
    "fidelity", "enqueue", "cluster", "breaker", "retry", "failover",
    "fidelity", "cache-fill", "reply",
]


class TestCircuitBreaker:
    def test_starts_closed_and_trips_at_threshold(self, sim):
        breaker = CircuitBreaker(sim, name="b", failure_threshold=3)
        assert breaker.current_state() is BreakerState.CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.current_state() is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.current_state() is BreakerState.OPEN
        assert not breaker.allows()

    def test_success_resets_the_failure_count(self, sim):
        breaker = CircuitBreaker(sim, name="b", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.current_state() is BreakerState.CLOSED

    def test_open_goes_half_open_after_reset_timeout(self, sim):
        breaker = CircuitBreaker(sim, name="b", failure_threshold=1, reset_timeout=2.0)
        breaker.record_failure()
        assert breaker.current_state() is BreakerState.OPEN

        def check():
            yield sim.timeout(1.0)
            assert breaker.current_state() is BreakerState.OPEN
            yield sim.timeout(1.0)
            assert breaker.current_state() is BreakerState.HALF_OPEN

        sim.run(sim.process(check()))

    def test_half_open_probe_success_closes(self, sim):
        breaker = CircuitBreaker(sim, name="b", failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure()

        def check():
            yield sim.timeout(1.0)
            assert breaker.allows()  # consumes the probe slot
            assert not breaker.allows()  # budget spent this window
            breaker.record_success()
            assert breaker.current_state() is BreakerState.CLOSED

        sim.run(sim.process(check()))

    def test_half_open_probe_failure_reopens(self, sim):
        breaker = CircuitBreaker(sim, name="b", failure_threshold=3, reset_timeout=1.0)
        for _ in range(3):
            breaker.record_failure()

        def check():
            yield sim.timeout(1.0)
            assert breaker.allows()
            breaker.record_failure()  # a single half-open failure re-trips
            assert breaker.current_state() is BreakerState.OPEN

        sim.run(sim.process(check()))

    def test_probe_budget_replenishes(self, sim):
        breaker = CircuitBreaker(sim, name="b", failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure()

        def check():
            yield sim.timeout(1.0)
            assert breaker.try_probe()
            assert not breaker.try_probe()
            # A probe claimed but never resolved must not wedge the
            # breaker: the budget replenishes a window later.
            yield sim.timeout(1.0)
            assert breaker.try_probe()

        sim.run(sim.process(check()))

    def test_transitions_emit_metrics(self, sim):
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            sim, name="b", failure_threshold=1, reset_timeout=1.0, metrics=metrics
        )
        breaker.record_failure()
        assert metrics.counter("broker.breaker.open") == 1

        def check():
            yield sim.timeout(1.0)
            breaker.allows()
            breaker.record_success()

        sim.run(sim.process(check()))
        assert metrics.counter("broker.breaker.half_open") == 1
        assert metrics.counter("broker.breaker.closed") == 1

    def test_rejects_bad_parameters(self, sim):
        with pytest.raises(BrokerError):
            CircuitBreaker(sim, failure_threshold=0)
        with pytest.raises(BrokerError):
            CircuitBreaker(sim, reset_timeout=0.0)
        with pytest.raises(BrokerError):
            CircuitBreaker(sim, half_open_probes=0)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0, max_delay=0.3)
        rng = Simulation(seed=1).rng("t")
        assert policy.backoff(1, rng) == pytest.approx(0.1)
        assert policy.backoff(2, rng) == pytest.approx(0.2)
        assert policy.backoff(3, rng) == pytest.approx(0.3)  # capped
        assert policy.backoff(4, rng) == pytest.approx(0.3)

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5)
        rng_a = Simulation(seed=1).rng("t")
        rng_b = Simulation(seed=1).rng("t")
        draws_a = [policy.backoff(1, rng_a) for _ in range(20)]
        draws_b = [policy.backoff(1, rng_b) for _ in range(20)]
        assert draws_a == draws_b
        assert all(0.1 <= d <= 0.15 for d in draws_a)

    def test_rejects_bad_parameters(self):
        with pytest.raises(BrokerError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(BrokerError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(BrokerError):
            RetryPolicy(jitter=-0.1)


class TestAvailableBackends:
    def test_filters_open_breakers_and_exclusions(self, sim):
        class FakeBackend:
            def __init__(self, name):
                self.name = name
                self.breaker = None

        a, b, c = FakeBackend("a"), FakeBackend("b"), FakeBackend("c")
        b.breaker = CircuitBreaker(sim, name="b", failure_threshold=1)
        b.breaker.record_failure()
        assert available_backends([a, b, c]) == [a, c]
        assert available_backends([a, b, c], exclude=(a,)) == [c]


# ---------------------------------------------------------------------------
# Pipeline-level behaviour
# ---------------------------------------------------------------------------


def make_ft_broker(sim, net, replicas=2, deadlines=None, **plan_kwargs):
    """A fault-tolerant broker over *replicas* instant web backends."""
    web_node = net.node("webhost")
    backends = []
    for index in range(1, replicas + 1):
        server = BackendWebServer(
            sim, net.node(f"backend{index}"), name=f"backend{index}"
        )

        def cgi(server, request):
            yield server.sim.timeout(0.01 * server.service_time_scale)
            return f"item={request.param('id', '?')}"

        server.add_cgi("/item", cgi)
        backends.append(server)
    broker = ServiceBroker(
        sim,
        web_node,
        service="items",
        adapters=[
            HttpAdapter(sim, web_node, s.address, name=s.name) for s in backends
        ],
        qos=QoSPolicy(levels=1, threshold=10_000, deadlines=deadlines),
        cache=ResultCache(capacity=64, ttl=0.5, clock=lambda: sim.now),
        pool_size=2,
        name="ft",
        stages=fault_tolerant_stage_plan(**plan_kwargs),
    )
    client = BrokerClient(sim, web_node, {"items": broker.address})
    return broker, client, backends


class TestFaultTolerantPlan:
    def test_stage_order(self):
        assert [s.name for s in stage_plan("fault-tolerant")] == FT_ORDER

    def test_breaker_stage_installs_breakers(self, sim, net):
        broker, _, _ = make_ft_broker(sim, net)
        assert all(b.breaker is not None for b in broker.backends)

    def test_timeout_stage_stamps_deadline(self, sim, net):
        broker, client, _ = make_ft_broker(sim, net, deadlines={1: 2.5})
        seen = {}

        def driver():
            reply = yield from client.call("items", "get", ("/item", {"id": 1}))
            seen["reply"] = reply

        sim.run(sim.process(driver()))
        reply = seen["reply"]
        assert reply.status is ReplyStatus.OK
        timeline = [
            (stage, decision) for stage, _, _, decision in reply.context.timeline()
        ]
        assert ("timeout", "budget=2.5") in timeline

    def test_no_deadline_leaves_requests_unbounded(self, sim, net):
        broker, client, _ = make_ft_broker(sim, net)
        seen = {}

        def driver():
            reply = yield from client.call("items", "get", ("/item", {"id": 1}))
            seen["reply"] = reply

        sim.run(sim.process(driver()))
        timeline = [
            (stage, decision)
            for stage, _, _, decision in seen["reply"].context.timeline()
        ]
        assert ("timeout", "unbounded") in timeline

    def test_retry_recovers_through_a_crash(self, sim, net):
        broker, client, backends = make_ft_broker(
            sim, net, replicas=2, reset_timeout=0.5
        )
        plan = FaultPlan().add(
            BackendCrash(target="backend1", at=2.0, duration=3.0)
        )
        FaultInjector(
            sim, plan, network=net, targets={b.name: b for b in backends}
        ).start()
        outcomes = {"ok": 0, "other": 0}

        def one(i):
            reply = yield from client.call(
                "items", "get", ("/item", {"id": i % 8}), cacheable=False
            )
            outcomes["ok" if reply.status is ReplyStatus.OK else "other"] += 1

        def driver():
            for i in range(200):
                sim.process(one(i))
                yield sim.timeout(0.05)

        sim.process(driver())
        sim.run(until=30.0)
        # Every request got a full-fidelity answer despite the crash:
        # retries re-routed to the surviving replica.
        assert outcomes["ok"] == 200
        assert outcomes["other"] == 0
        assert broker.metrics.counter("broker.fault.unreachable") > 0
        assert broker.metrics.counter("broker.retry.recovered") > 0

    def test_single_replica_crash_degrades_from_stale_cache(self, sim, net):
        broker, client, backends = make_ft_broker(
            sim, net, replicas=1, reset_timeout=0.5
        )
        plan = FaultPlan().add(
            BackendCrash(target="backend1", at=2.0, duration=5.0)
        )
        FaultInjector(
            sim, plan, network=net, targets={b.name: b for b in backends}
        ).start()
        statuses = []

        def one(i):
            reply = yield from client.call("items", "get", ("/item", {"id": 0}))
            statuses.append(reply.status)

        def driver():
            for i in range(100):
                sim.process(one(i))
                yield sim.timeout(0.08)

        sim.process(driver())
        sim.run(until=30.0)
        # Nothing is left unanswered, and the outage is bridged by
        # degraded stale-cache replies (the cache saw key 0 before the
        # crash, so §III's fallback has something to serve).
        assert len(statuses) == 100
        assert statuses.count(ReplyStatus.DEGRADED) > 0
        assert statuses.count(ReplyStatus.ERROR) == 0
        assert broker.metrics.counter("broker.fault.replies") > 0
        assert broker.metrics.counter("broker.breaker.open") >= 1

    def test_uncacheable_requests_get_busy_replies_when_all_down(self, sim, net):
        broker, client, backends = make_ft_broker(
            sim, net, replicas=1, reset_timeout=5.0
        )
        plan = FaultPlan().add(
            BackendCrash(target="backend1", at=1.0, duration=8.0)
        )
        FaultInjector(
            sim, plan, network=net, targets={b.name: b for b in backends}
        ).start()
        statuses = []

        def one(i):
            reply = yield from client.call(
                "items", "get", ("/item", {"id": i}), cacheable=False
            )
            statuses.append(reply.status)

        def driver():
            yield sim.timeout(2.0)  # past the crash and the breaker trip
            for i in range(20):
                sim.process(one(i))
                yield sim.timeout(0.1)

        sim.process(driver())
        sim.run(until=30.0)
        assert len(statuses) == 20
        # With no cache entry to fall back on, the broker still answers
        # immediately with the paper's busy indication.
        assert statuses.count(ReplyStatus.DROPPED) > 0
        assert statuses.count(ReplyStatus.ERROR) == 0

    def test_breaker_recovers_after_restart(self, sim, net):
        broker, client, backends = make_ft_broker(
            sim, net, replicas=1, reset_timeout=0.5
        )
        plan = FaultPlan().add(
            BackendCrash(target="backend1", at=1.0, duration=2.0)
        )
        FaultInjector(
            sim, plan, network=net, targets={b.name: b for b in backends}
        ).start()
        tail_statuses = []

        def one(i):
            reply = yield from client.call(
                "items", "get", ("/item", {"id": i}), cacheable=False
            )
            if sim.now > 10.0:
                tail_statuses.append(reply.status)

        def driver():
            for i in range(300):
                sim.process(one(i))
                yield sim.timeout(0.05)

        sim.process(driver())
        sim.run(until=40.0)
        # Long after the restart, service is back to full fidelity: the
        # half-open probe traffic closed the breaker again.
        assert tail_statuses
        assert all(s is ReplyStatus.OK for s in tail_statuses)
        assert broker.metrics.counter("broker.breaker.half_open") >= 1
        assert broker.metrics.counter("broker.breaker.closed") >= 1

    def test_empty_fault_plan_matches_plain_execute(self, sim, net):
        # The fault-tolerant plan without faults behaves like the stock
        # pipeline: same replies, no retries, no degradation.
        broker, client, _ = make_ft_broker(sim, net)
        statuses = []

        def one(i):
            reply = yield from client.call(
                "items", "get", ("/item", {"id": i}), cacheable=False
            )
            statuses.append(reply.status)

        def driver():
            for i in range(50):
                sim.process(one(i))
                yield sim.timeout(0.02)

        sim.process(driver())
        sim.run(until=10.0)
        assert statuses == [ReplyStatus.OK] * 50
        assert broker.metrics.counter("broker.retry.attempts") == 0
        assert broker.metrics.counter("broker.fault.replies") == 0
        assert broker.metrics.counter("broker.breaker.open") == 0


class TestHalfOpenProbeBudget:
    """Property-style checks of the HALF_OPEN probe budget."""

    @given(
        probes=st.integers(min_value=1, max_value=4),
        reset=st.sampled_from([0.5, 1.0, 2.0]),
        steps=st.lists(
            st.floats(min_value=0.0, max_value=0.4),
            min_size=1,
            max_size=50,
        ),
    )
    @settings(max_examples=80, deadline=None, derandomize=True)
    def test_grants_never_exceed_budget_per_window(self, probes, reset, steps):
        """However probe attempts are spaced, a half-open breaker never
        grants more than ``half_open_probes`` per ``reset_timeout``
        window (the budget replenishes once per window)."""
        sim = Simulation(seed=2026)
        breaker = CircuitBreaker(
            sim,
            name="b",
            failure_threshold=1,
            reset_timeout=reset,
            half_open_probes=probes,
        )
        breaker.record_failure()  # trip to OPEN at t=0
        sim.run(until=reset)
        assert breaker.current_state() is BreakerState.HALF_OPEN

        granted = 0
        elapsed = 0.0
        for step in steps:
            if step > 0.0:
                elapsed += step
                sim.run(until=reset + elapsed)
            if breaker.try_probe():
                granted += 1
            windows = 1 + int(elapsed // reset)
            assert granted <= probes * windows
        # No probe outcome was ever recorded: the breaker must still be
        # half-open (a stuck probe cannot wedge it open or closed).
        assert breaker.current_state() is BreakerState.HALF_OPEN

    def test_exact_budget_at_window_entry(self, sim):
        breaker = CircuitBreaker(
            sim, name="b", failure_threshold=1,
            reset_timeout=1.0, half_open_probes=2,
        )
        breaker.record_failure()
        sim.run(until=1.0)
        # Exactly the configured budget is granted, then denial.
        assert breaker.try_probe()
        assert breaker.try_probe()
        assert not breaker.try_probe()
        assert not breaker.allows()

    def test_budget_replenishes_each_window(self, sim):
        breaker = CircuitBreaker(
            sim, name="b", failure_threshold=1,
            reset_timeout=1.0, half_open_probes=1,
        )
        breaker.record_failure()
        sim.run(until=1.0)
        assert breaker.try_probe()
        assert not breaker.try_probe()  # budget spent, still half-open
        sim.run(until=2.5)
        # A full reset_timeout later the claimed-but-unresolved probe
        # slot is replenished — the breaker cannot wedge half-open.
        assert breaker.try_probe()
        assert not breaker.try_probe()

    def test_probe_outcomes_settle_the_state(self, sim):
        breaker = CircuitBreaker(
            sim, name="b", failure_threshold=1,
            reset_timeout=1.0, half_open_probes=1,
        )
        breaker.record_failure()
        sim.run(until=1.0)
        assert breaker.try_probe()
        breaker.record_failure()  # failed probe re-opens immediately
        assert breaker.current_state() is BreakerState.OPEN
        sim.run(until=2.0)
        assert breaker.try_probe()
        breaker.record_success()  # successful probe closes
        assert breaker.current_state() is BreakerState.CLOSED
        assert breaker.allows()
