"""End-to-end tests of the ServiceBroker over the full stack."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import (
    BrokerClient,
    ClusteringConfig,
    DatabaseAdapter,
    HttpAdapter,
    IdenticalRequestCombiner,
    LatencyAwareBalancer,
    MgetCombiner,
    QoSPolicy,
    ReplyStatus,
    ResultCache,
    ServiceBroker,
    TransactionTracker,
)
from repro.db import Database, DatabaseServer
from repro.http import BackendWebServer, HttpResponse


@pytest.fixture
def db_backend(sim, net):
    database = Database()
    table = database.create_table("kv", [("k", int), ("v", str)])
    for i in range(2000):
        table.insert((i, f"v{i}"))
    table.create_index("k", "hash")
    return DatabaseServer(sim, net.node("dbhost"), database, max_workers=4)


def make_broker(sim, net, db_backend, **kwargs):
    node = net.node("webhost")
    defaults = dict(
        service="db",
        adapters=[DatabaseAdapter(sim, node, db_backend.address, name="db0")],
        qos=QoSPolicy(levels=3, threshold=12),
        pool_size=2,
    )
    defaults.update(kwargs)
    broker = ServiceBroker(sim, node, **defaults)
    client = BrokerClient(sim, node, {"db": broker.address})
    return broker, client


class TestBrokerBasics:
    def test_query_through_broker(self, sim, net, db_backend):
        broker, client = make_broker(sim, net, db_backend)

        def run():
            reply = yield from client.call("db", "query", "SELECT v FROM kv WHERE k = 5")
            return reply

        reply = sim.run(sim.process(run()))
        assert reply.status is ReplyStatus.OK
        assert reply.payload.rows == (("v5",),)
        assert reply.full_fidelity
        assert broker.metrics.counter("broker.served") == 1

    def test_unknown_service_is_error_reply(self, sim, net, db_backend):
        broker, client = make_broker(sim, net, db_backend)
        client.add_route("ghost", broker.address)

        def run():
            reply = yield from client.call("ghost", "query", "SELECT 1")
            return reply

        reply = sim.run(sim.process(run()))
        assert reply.status is ReplyStatus.ERROR
        assert "unknown service" in reply.error

    def test_backend_query_error_propagates(self, sim, net, db_backend):
        broker, client = make_broker(sim, net, db_backend)

        def run():
            reply = yield from client.call("db", "query", "SELECT nope FROM missing")
            return reply

        reply = sim.run(sim.process(run()))
        assert reply.status is ReplyStatus.ERROR
        assert "missing" in reply.error
        assert broker.outstanding == 0  # bookkeeping balanced

    def test_persistent_connections_reused(self, sim, net, db_backend):
        broker, client = make_broker(sim, net, db_backend)

        def run():
            for i in range(10):
                yield from client.call(
                    "db", "query", f"SELECT v FROM kv WHERE k = {i}", cacheable=False
                )

        sim.run(sim.process(run()))
        # Sequential calls reuse one pooled connection.
        assert db_backend.metrics.counter("db.connections") == 1
        assert db_backend.metrics.counter("db.queries") == 10


class TestBrokerCaching:
    def test_cache_hit_skips_backend(self, sim, net, db_backend):
        cache = ResultCache(capacity=64, ttl=60, clock=lambda: sim.now)
        broker, client = make_broker(sim, net, db_backend, cache=cache)

        def run():
            first = yield from client.call("db", "query", "SELECT v FROM kv WHERE k = 1")
            second = yield from client.call("db", "query", "SELECT v FROM kv WHERE k = 1")
            return first, second

        first, second = sim.run(sim.process(run()))
        assert not first.from_cache
        assert second.from_cache
        assert second.payload.rows == first.payload.rows
        assert db_backend.metrics.counter("db.queries") == 1

    def test_uncacheable_requests_bypass_cache(self, sim, net, db_backend):
        cache = ResultCache(capacity=64, ttl=60, clock=lambda: sim.now)
        broker, client = make_broker(sim, net, db_backend, cache=cache)

        def run():
            for _ in range(3):
                yield from client.call(
                    "db", "query", "SELECT v FROM kv WHERE k = 1", cacheable=False
                )

        sim.run(sim.process(run()))
        assert db_backend.metrics.counter("db.queries") == 3

    def test_cache_expiry_refetches(self, sim, net, db_backend):
        cache = ResultCache(capacity=64, ttl=1.0, clock=lambda: sim.now)
        broker, client = make_broker(sim, net, db_backend, cache=cache)

        def run():
            yield from client.call("db", "query", "SELECT v FROM kv WHERE k = 1")
            yield sim.timeout(5.0)
            reply = yield from client.call("db", "query", "SELECT v FROM kv WHERE k = 1")
            return reply

        reply = sim.run(sim.process(run()))
        assert not reply.from_cache
        assert db_backend.metrics.counter("db.queries") == 2


class TestBrokerQoS:
    def test_overload_drops_are_class_ordered(self, sim, net, db_backend):
        broker, client = make_broker(sim, net, db_backend)
        statuses = []

        def one(i, qos):
            reply = yield from client.call(
                "db",
                "query",
                f"SELECT COUNT(*) FROM kv WHERE v != 'none{i}'",  # full scan
                qos_level=qos,
                cacheable=False,
            )
            statuses.append((qos, reply.status))

        for i in range(45):
            sim.process(one(i, 1 + i % 3))
        sim.run()
        dropped = Counter(q for q, s in statuses if s is ReplyStatus.DROPPED)
        served = Counter(q for q, s in statuses if s is ReplyStatus.OK)
        assert dropped[3] >= dropped[2] >= dropped[1]
        assert served[1] >= served[3]
        assert broker.drop_ratio(3) >= broker.drop_ratio(1)

    def test_degraded_reply_from_stale_cache(self, sim, net, db_backend):
        cache = ResultCache(capacity=64, ttl=0.5, clock=lambda: sim.now)
        broker, client = make_broker(
            sim, net, db_backend, cache=cache, qos=QoSPolicy(levels=3, threshold=3)
        )
        outcome = {}

        def warm():
            yield from client.call("db", "query", "SELECT v FROM kv WHERE k = 9")

        def flood_and_probe():
            yield sim.process(warm())
            yield sim.timeout(2.0)  # cache entry goes stale
            # Saturate the broker with slow scans...
            for i in range(6):
                sim.process(
                    client.call(
                        "db",
                        "query",
                        f"SELECT COUNT(*) FROM kv WHERE v != '{i}'",
                        cacheable=False,
                    )
                )
            yield sim.timeout(0.001)
            # ...then a level-3 request for the stale key gets a degraded reply.
            reply = yield from client.call(
                "db", "query", "SELECT v FROM kv WHERE k = 9", qos_level=3
            )
            outcome["reply"] = reply

        sim.run(sim.process(flood_and_probe()))
        reply = outcome["reply"]
        assert reply.status is ReplyStatus.DEGRADED
        assert reply.from_cache
        assert reply.payload.rows == (("v9",),)
        assert 0 < reply.fidelity < 1

    def test_priority_queueing_serves_high_class_first(self, sim, net, db_backend):
        broker, client = make_broker(
            sim,
            net,
            db_backend,
            qos=QoSPolicy(levels=3, threshold=1000),
            dispatchers=1,
            pool_size=1,
        )
        completion_order = []

        def one(i, qos):
            # A later-arriving high-priority request should overtake
            # earlier low-priority ones in the queue.
            yield sim.timeout(0.001 * i)
            reply = yield from client.call(
                "db",
                "query",
                f"SELECT COUNT(*) FROM kv WHERE v != 'x{i}'",
                qos_level=qos,
                cacheable=False,
            )
            completion_order.append((qos, i))

        for i in range(6):
            sim.process(one(i, qos=3))
        sim.process(one(6, qos=1))
        sim.run()
        position_of_high = [q for q, _ in completion_order].index(1)
        assert position_of_high <= 2  # jumped ahead of most level-3 work


class TestBrokerTransactions:
    def test_late_step_requests_survive_overload(self, sim, net, db_backend):
        tracker = TransactionTracker(escalation_per_step=1, protect_from_step=3)
        broker, client = make_broker(
            sim,
            net,
            db_backend,
            qos=QoSPolicy(levels=3, threshold=6),
            transactions=tracker,
        )
        results = {}

        def flood():
            for i in range(12):
                sim.process(
                    client.call(
                        "db",
                        "query",
                        f"SELECT COUNT(*) FROM kv WHERE v != 'f{i}'",
                        qos_level=2,
                        cacheable=False,
                    )
                )
            yield sim.timeout(0.001)
            step1 = yield from client.call(
                "db", "query", "SELECT v FROM kv WHERE k = 1",
                qos_level=3, txn_id="order-1", txn_step=1, cacheable=False,
            )
            step3 = yield from client.call(
                "db", "query", "SELECT v FROM kv WHERE k = 2",
                qos_level=3, txn_id="order-2", txn_step=3, cacheable=False,
            )
            results["step1"] = step1.status
            results["step3"] = step3.status

        sim.run(sim.process(flood()))
        # The step-1 access is shed; the protected step-3 access is not.
        assert results["step1"] is ReplyStatus.DROPPED
        assert results["step3"] is ReplyStatus.OK


class TestBrokerReplication:
    def test_load_balancing_spreads_work(self, sim, net):
        node = net.node("webhost")
        backends = []
        for i in range(3):
            server = BackendWebServer(sim, net.node(f"w{i}"), max_clients=4)

            def cgi(server, request):
                yield server.sim.timeout(0.05)
                return "ok"

            server.add_cgi("/work", cgi)
            backends.append(server)
        broker = ServiceBroker(
            sim,
            node,
            service="web",
            adapters=[
                HttpAdapter(sim, node, b.address, name=f"w{i}")
                for i, b in enumerate(backends)
            ],
            qos=QoSPolicy(levels=1, threshold=10_000),
            balancer=LatencyAwareBalancer(),
            pool_size=2,
        )
        client = BrokerClient(sim, node, {"web": broker.address})

        def one(i):
            yield from client.call("web", "get", ("/work", {"i": i}), cacheable=False)

        for i in range(60):
            sim.process(one(i))
        sim.run()
        counts = [b.metrics.counter("http.requests") for b in backends]
        assert sum(counts) == 60
        assert min(counts) >= 10  # no backend starved

    def test_mget_clustering_end_to_end(self, sim, net):
        node = net.node("webhost")
        server = BackendWebServer(sim, net.node("origin"), max_clients=2)
        server.add_static("/1.html", "one")
        server.add_static("/2.html", "two")
        broker = ServiceBroker(
            sim,
            node,
            service="web",
            adapters=[HttpAdapter(sim, node, server.address, name="origin")],
            qos=QoSPolicy(levels=1, threshold=1000),
            clustering=ClusteringConfig(
                combiner=MgetCombiner(), max_batch=4, window=0.01
            ),
            dispatchers=1,
            pool_size=1,
        )
        client = BrokerClient(sim, node, {"web": broker.address})
        bodies = {}

        def one(path):
            reply = yield from client.call("web", "get", (path, {}), cacheable=False)
            bodies[path] = reply.payload.body

        sim.process(one("/1.html"))
        sim.process(one("/2.html"))
        sim.run()
        assert bodies == {"/1.html": "one", "/2.html": "two"}
        assert server.metrics.counter("http.mget_batches") >= 1
