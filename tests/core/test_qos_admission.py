"""Unit tests for QoSPolicy and AdmissionController."""

from __future__ import annotations

import pytest

from repro.core import AdmissionController, AdmissionDecision, QoSPolicy
from repro.errors import BrokerError


class TestQoSPolicy:
    def test_linear_fraction_schedule(self):
        policy = QoSPolicy(levels=3, threshold=20)
        assert policy.fraction(1) == pytest.approx(1.0)
        assert policy.fraction(2) == pytest.approx(2 / 3)
        assert policy.fraction(3) == pytest.approx(1 / 3)
        assert policy.admit_limit(3) == pytest.approx(20 / 3)

    def test_explicit_fractions_override(self):
        policy = QoSPolicy(levels=2, threshold=10, fractions={2: 0.5})
        assert policy.admit_limit(2) == 5.0
        assert policy.admit_limit(1) == 10.0  # falls back to linear

    def test_validation(self):
        with pytest.raises(BrokerError):
            QoSPolicy(levels=0)
        with pytest.raises(BrokerError):
            QoSPolicy(threshold=0)
        with pytest.raises(BrokerError):
            QoSPolicy(levels=2, fractions={2: 1.5})
        with pytest.raises(BrokerError):
            QoSPolicy(levels=2, fractions={5: 0.5})

    def test_level_clamp(self):
        policy = QoSPolicy(levels=3)
        assert policy.clamp(0) == 1
        assert policy.clamp(99) == 3
        assert policy.clamp(2) == 2

    def test_out_of_range_level_queries_raise(self):
        policy = QoSPolicy(levels=3)
        with pytest.raises(BrokerError):
            policy.fraction(4)
        with pytest.raises(BrokerError):
            policy.rate_limit(0)

    def test_describe(self):
        policy = QoSPolicy(levels=2, threshold=10)
        assert policy.describe() == {1: 10.0, 2: 5.0}

    def test_monotone_fractions(self):
        policy = QoSPolicy(levels=5, threshold=100)
        limits = [policy.admit_limit(level) for level in range(1, 6)]
        assert limits == sorted(limits, reverse=True)


class TestAdmissionController:
    def test_threshold_gate_per_level(self, sim):
        policy = QoSPolicy(levels=3, threshold=9)
        ctrl = AdmissionController(sim, policy)
        # Limits: level1=9, level2=6, level3=3.
        for _ in range(3):
            ctrl.request_started()
        assert ctrl.decide(3).admitted is False
        assert ctrl.decide(2).admitted is True
        for _ in range(3):
            ctrl.request_started()
        assert ctrl.decide(2).admitted is False
        assert ctrl.decide(1).admitted is True
        for _ in range(3):
            ctrl.request_started()
        assert ctrl.decide(1).admitted is False

    def test_rejection_reason_is_threshold(self, sim):
        ctrl = AdmissionController(sim, QoSPolicy(levels=1, threshold=1))
        ctrl.request_started()
        decision = ctrl.decide(1)
        assert decision.reason == AdmissionDecision.THRESHOLD_REASON

    def test_finish_releases_slots(self, sim):
        ctrl = AdmissionController(sim, QoSPolicy(levels=1, threshold=1))
        ctrl.request_started()
        assert not ctrl.decide(1).admitted
        ctrl.request_finished()
        assert ctrl.decide(1).admitted

    def test_finish_without_start_raises(self, sim):
        ctrl = AdmissionController(sim, QoSPolicy())
        with pytest.raises(RuntimeError):
            ctrl.request_finished()

    def test_protected_requests_use_hard_threshold(self, sim):
        policy = QoSPolicy(levels=3, threshold=9)
        ctrl = AdmissionController(sim, policy)
        for _ in range(4):
            ctrl.request_started()
        assert not ctrl.decide(3).admitted
        assert ctrl.decide(3, protected=True).admitted
        for _ in range(5):
            ctrl.request_started()
        assert not ctrl.decide(3, protected=True).admitted  # hard cap

    def test_intensity_gate(self, sim):
        policy = QoSPolicy(levels=2, threshold=100, rate_limits={2: 5.0})
        ctrl = AdmissionController(sim, policy, rate_window=1.0)
        for _ in range(6):
            ctrl.record_arrival(2)
        decision = ctrl.decide(2)
        assert not decision.admitted
        assert decision.reason == AdmissionDecision.INTENSITY_REASON
        # Level 1 is unaffected — "other classes are not affected".
        assert ctrl.decide(1).admitted

    def test_intensity_window_slides(self, sim):
        policy = QoSPolicy(levels=1, threshold=100, rate_limits={1: 5.0})
        ctrl = AdmissionController(sim, policy, rate_window=1.0)

        def run():
            for _ in range(6):
                ctrl.record_arrival(1)
            first = ctrl.decide(1).admitted
            yield sim.timeout(2.0)
            second = ctrl.decide(1).admitted
            return first, second

        first, second = sim.run(sim.process(run()))
        assert first is False
        assert second is True

    def test_rate_window_validation(self, sim):
        with pytest.raises(ValueError):
            AdmissionController(sim, QoSPolicy(), rate_window=0)
