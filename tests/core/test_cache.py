"""Unit and property tests for the result cache."""

from __future__ import annotations

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ResultCache


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return ManualClock()


class TestResultCache:
    def test_put_get(self, clock):
        cache = ResultCache(capacity=4, ttl=10, clock=clock)
        cache.put("k", "value")
        assert cache.get("k") == "value"
        assert cache.stats.hits == 1

    def test_miss_counts(self, clock):
        cache = ResultCache(clock=clock)
        assert cache.get("absent") is None
        assert cache.stats.misses == 1

    def test_ttl_expiry(self, clock):
        cache = ResultCache(ttl=5, clock=clock)
        cache.put("k", "v")
        clock.now = 4.9
        assert cache.get("k") == "v"
        clock.now = 5.0
        assert cache.get("k") is None
        assert "k" not in cache

    def test_per_entry_ttl_override(self, clock):
        cache = ResultCache(ttl=5, clock=clock)
        cache.put("long", "v", ttl=100)
        clock.now = 50
        assert cache.get("long") == "v"

    def test_stale_entry_served_via_get_stale(self, clock):
        cache = ResultCache(ttl=5, clock=clock)
        cache.put("k", "v")
        clock.now = 8.0
        assert cache.get("k") is None
        value, age = cache.get_stale("k")
        assert value == "v"
        assert age == pytest.approx(8.0)

    def test_lru_eviction_order(self, clock):
        cache = ResultCache(capacity=2, ttl=100, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_invalidate(self, clock):
        cache = ResultCache(clock=clock)
        cache.put("k", "v")
        assert cache.invalidate("k")
        assert not cache.invalidate("k")
        assert cache.get("k") is None

    def test_clear(self, clock):
        cache = ResultCache(clock=clock)
        cache.put("k", "v")
        cache.clear()
        assert len(cache) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(ttl=0)

    def test_hit_ratio(self, clock):
        cache = ResultCache(clock=clock)
        cache.put("k", "v")
        cache.get("k")
        cache.get("miss")
        assert cache.stats.hit_ratio == pytest.approx(0.5)


class TestCacheLruProperty:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["get", "put"]),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=200,
        ),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60)
    def test_matches_reference_lru_model(self, operations, capacity):
        """The cache agrees with a straightforward OrderedDict LRU model."""
        cache = ResultCache(capacity=capacity, ttl=1e9)
        model: "OrderedDict[str, int]" = OrderedDict()
        for op, key_int in operations:
            key = f"k{key_int}"
            if op == "put":
                cache.put(key, key_int)
                model[key] = key_int
                model.move_to_end(key)
                while len(model) > capacity:
                    model.popitem(last=False)
            else:
                got = cache.get(key)
                expected = model.get(key)
                if expected is not None:
                    model.move_to_end(key)
                assert got == expected
        assert set(cache.keys()) == set(model.keys())
