"""Tests for hot-spot detection and the front-end gate."""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerClient,
    HotSpotGate,
    HotSpotMonitor,
    HotSpotNotice,
    HttpAdapter,
    QoSPolicy,
    ResourceProfileRegistry,
    ServiceBroker,
)
from repro.errors import BrokerError
from repro.http import BackendWebServer, HttpRequest


@pytest.fixture
def slow_stack(sim, net):
    """A capacity-2, 1-second backend behind a threshold-10 broker."""
    node = net.node("web")
    server = BackendWebServer(sim, net.node("origin"), max_clients=2)

    def slow_cgi(server, request):
        yield server.sim.timeout(1.0)
        return "ok"

    server.add_cgi("/slow", slow_cgi)
    broker = ServiceBroker(
        sim,
        node,
        service="slow",
        adapters=[HttpAdapter(sim, node, server.address)],
        qos=QoSPolicy(levels=1, threshold=10),
        pool_size=2,
    )
    client = BrokerClient(sim, node, {"slow": broker.address})
    return node, broker, client


class TestHotSpotMonitor:
    def test_validation(self, sim, slow_stack):
        _node, broker, _client = slow_stack
        with pytest.raises(BrokerError):
            HotSpotMonitor(broker, onset_fraction=0.4, clear_fraction=0.5)
        with pytest.raises(BrokerError):
            HotSpotMonitor(broker, poll_interval=0)

    def test_onset_and_clear_with_hysteresis(self, sim, slow_stack):
        node, broker, client = slow_stack
        monitor = HotSpotMonitor(
            broker, onset_fraction=0.8, clear_fraction=0.3, poll_interval=0.01
        )
        sock = node.datagram_socket()
        monitor.subscribe(sock.address)
        notices = []

        def listen():
            while True:
                envelope = yield sock.recv()
                notices.append(envelope.payload)

        sim.process(listen())

        def load():
            for i in range(9):
                sim.process(
                    client.call("slow", "get", ("/slow", {"i": i}), cacheable=False)
                )
            yield sim.timeout(0.0)

        sim.process(load())
        sim.run(until=10.0)
        assert monitor.metrics.counter("hotspot.onsets") == 1
        assert monitor.metrics.counter("hotspot.clears") == 1
        assert [n.hot for n in notices] == [True, False]
        assert notices[0].service == "slow"
        assert notices[0].outstanding >= 8

    def test_no_flapping_within_band(self, sim, slow_stack):
        node, broker, client = slow_stack
        monitor = HotSpotMonitor(
            broker, onset_fraction=0.8, clear_fraction=0.3, poll_interval=0.01
        )

        def steady_medium_load():
            # Keep outstanding around 4-6: above clear, below onset.
            for wave in range(5):
                for i in range(5):
                    sim.process(
                        client.call(
                            "slow", "get", ("/slow", {"w": wave, "i": i}),
                            cacheable=False,
                        )
                    )
                yield sim.timeout(2.5)

        sim.process(steady_medium_load())
        sim.run(until=15.0)
        assert monitor.metrics.counter("hotspot.onsets") == 0
        assert monitor.metrics.counter("hotspot.clears") == 0


class TestHotSpotGate:
    def test_gate_rejects_while_hot(self, sim, net, slow_stack):
        node, broker, client = slow_stack
        monitor = HotSpotMonitor(
            broker, onset_fraction=0.7, clear_fraction=0.3, poll_interval=0.01
        )
        profiles = ResourceProfileRegistry()
        profiles.register("/page", ["slow"])
        gate = HotSpotGate(sim, node, profiles)
        monitor.subscribe(gate.address)

        decisions = {}

        def scenario():
            request = HttpRequest(method="GET", path="/page")
            decisions["before"] = gate.admit(request)[0]
            for i in range(9):
                sim.process(
                    client.call("slow", "get", ("/slow", {"i": i}), cacheable=False)
                )
            yield sim.timeout(0.1)
            decisions["during"] = gate.admit(request)[0]
            decisions["hot"] = gate.is_hot("slow")
            yield sim.timeout(8.0)  # backlog drains, clear notice arrives
            decisions["after"] = gate.admit(request)[0]

        sim.run(sim.process(scenario()))
        assert decisions == {
            "before": True,
            "during": False,
            "hot": True,
            "after": True,
        }

    def test_unprofiled_paths_unaffected(self, sim, net, slow_stack):
        node, _broker, _client = slow_stack
        gate = HotSpotGate(sim, node, ResourceProfileRegistry())
        gate.hot_services["slow"] = HotSpotNotice("slow", "b", True, 9, 10, 0.0)
        assert gate.admit(HttpRequest(method="GET", path="/other"))[0] is True

    def test_malformed_notices_counted(self, sim, net, slow_stack):
        node, _broker, _client = slow_stack
        gate = HotSpotGate(sim, node, ResourceProfileRegistry())
        sender = net.node("x").datagram_socket()
        sender.sendto("garbage", gate.address)
        sim.run()
        assert gate.metrics.counter("gate.malformed") == 1
