"""Property-based tests of broker-level invariants.

Hypothesis drives randomized (but deterministic per example) request
schedules through a real broker stack and asserts the invariants the
evaluation relies on: request conservation, class-ordered cumulative
drops, and reply addressing.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BrokerClient,
    HttpAdapter,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
)
from repro.http import BackendWebServer
from repro.net import Link, Network
from repro.sim import Simulation

# One scheduled request: (qos level, arrival gap in ms).
request_schedule = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=1,
    max_size=40,
)


def run_schedule(schedule, threshold=6, service_time=0.05):
    sim = Simulation(seed=1234)
    net = Network(sim, default_link=Link.lan())
    node = net.node("web")
    server = BackendWebServer(sim, net.node("origin"), max_clients=2)

    def cgi(server, request):
        yield server.sim.timeout(service_time)
        return "ok"

    server.add_cgi("/s", cgi)
    broker = ServiceBroker(
        sim,
        node,
        service="web",
        adapters=[HttpAdapter(sim, node, server.address)],
        qos=QoSPolicy(levels=3, threshold=threshold),
        pool_size=2,
        priority_queueing=False,
    )
    client = BrokerClient(sim, node, {"web": broker.address})
    replies = []

    def one(index, qos):
        reply = yield from client.call(
            "web", "get", ("/s", {"i": index}), qos_level=qos, cacheable=False
        )
        replies.append((qos, reply))

    def driver():
        for index, (qos, gap_ms) in enumerate(schedule):
            yield sim.timeout(gap_ms / 1000.0)
            sim.process(one(index, qos))

    sim.process(driver())
    sim.run()
    return broker, replies


class TestBrokerInvariants:
    @given(request_schedule)
    @settings(max_examples=25, deadline=None)
    def test_every_request_answered_exactly_once(self, schedule):
        broker, replies = run_schedule(schedule)
        assert len(replies) == len(schedule)
        ids = [reply.request_id for _, reply in replies]
        assert len(set(ids)) == len(ids)
        assert broker.outstanding == 0
        assert len(broker.queue) == 0

    @given(request_schedule)
    @settings(max_examples=25, deadline=None)
    def test_arrivals_equal_served_plus_dropped(self, schedule):
        broker, replies = run_schedule(schedule)
        metrics = broker.metrics
        assert metrics.counter("broker.arrivals") == len(schedule)
        assert metrics.counter("broker.arrivals") == (
            metrics.counter("broker.served")
            + metrics.counter("broker.drops")
            + metrics.counter("broker.backend_errors")
        )

    @given(request_schedule)
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_simultaneous_burst_drops_are_class_ordered(self, schedule):
        """Whatever state a schedule leaves the broker in, a burst of
        simultaneous probes arriving in class order 1..3 can only be
        dropped from some class downward: once a class-k probe is shed,
        every later probe of class >= k is shed too (monotone limits,
        monotone outstanding)."""
        sim = Simulation(seed=1234)
        net = Network(sim, default_link=Link.lan())
        node = net.node("web")
        server = BackendWebServer(sim, net.node("origin"), max_clients=2)

        def cgi(server, request):
            yield server.sim.timeout(0.05)
            return "ok"

        server.add_cgi("/s", cgi)
        broker = ServiceBroker(
            sim,
            node,
            service="web",
            adapters=[HttpAdapter(sim, node, server.address)],
            qos=QoSPolicy(levels=3, threshold=6),
            pool_size=2,
            priority_queueing=False,
        )
        client = BrokerClient(sim, node, {"web": broker.address})
        probe_statuses = []

        def one(index, qos, record=False):
            reply = yield from client.call(
                "web", "get", ("/s", {"i": index}), qos_level=qos, cacheable=False
            )
            if record:
                probe_statuses.append((qos, reply.status))

        def driver():
            for index, (qos, gap_ms) in enumerate(schedule):
                yield sim.timeout(gap_ms / 1000.0)
                sim.process(one(index, qos))
            # The probe burst: same instant, class order 1,1,2,2,3,3.
            for offset, qos in enumerate((1, 1, 2, 2, 3, 3)):
                sim.process(one(1000 + offset, qos, record=True))

        sim.process(driver())
        sim.run()
        assert len(probe_statuses) == 6
        dropped_classes = [q for q, s in probe_statuses if s is ReplyStatus.DROPPED]
        served_classes = [q for q, s in probe_statuses if s is not ReplyStatus.DROPPED]
        if dropped_classes and served_classes:
            assert min(dropped_classes) >= max(served_classes)
