"""Backpressure: bounded-queue shedding, watermarks, frontend throttle."""

from __future__ import annotations

import pytest

from repro.core import (
    BackpressureStage,
    BrokerClient,
    HttpAdapter,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
    overload_protected_stage_plan,
)
from repro.frontend import FrontendWebServer, WebApplication
from repro.frontend.app import QOS_HEADER
from repro.http import BackendWebServer, HttpClient, HttpRequest


@pytest.fixture
def slow_backend(sim, net):
    server = BackendWebServer(sim, net.node("origin"), max_clients=1)

    def cgi(server, request):
        yield server.sim.timeout(0.05)
        return "ok"

    server.add_cgi("/work", cgi)
    return server


def make_broker(sim, net, backend, capacity, policy, **kwargs):
    node = net.node("webhost")
    broker = ServiceBroker(
        sim,
        node,
        service="web",
        adapters=[HttpAdapter(sim, node, backend.address, name="origin")],
        qos=QoSPolicy(levels=3, threshold=10_000),
        stages=overload_protected_stage_plan(capacity, shed_policy=policy),
        dispatchers=1,
        pool_size=1,
        **kwargs,
    )
    client = BrokerClient(sim, node, {"web": broker.address})
    return broker, client


def backpressure_stage(broker: ServiceBroker) -> BackpressureStage:
    return next(
        stage for stage in broker.pipeline.stages
        if isinstance(stage, BackpressureStage)
    )


def flood(sim, client, count, qos, statuses, spacing=0.0001):
    def one(i):
        yield sim.timeout(spacing * i)
        reply = yield from client.call(
            "web", "get", ("/work", {"i": i}), qos_level=qos, cacheable=False
        )
        statuses.append((qos, reply.status))

    for i in range(count):
        sim.process(one(i))


class TestShedAccounting:
    def test_sheds_counted_apart_from_admission_drops(self, sim, net, slow_backend):
        broker, client = make_broker(sim, net, slow_backend, 2, "reject-new")
        statuses = []
        flood(sim, client, 8, qos=2, statuses=statuses)
        sim.run()
        shed = broker.metrics.counter("broker.shed")
        # Every arrival beyond the in-flight one and the 2 queued slots
        # was shed, and every shed landed in the policy + class buckets
        # — not in the admission-drop counters.
        assert shed > 0
        assert broker.metrics.counter("broker.shed.reject-new") == shed
        assert broker.metrics.counter("broker.shed.qos2") == shed
        assert broker.metrics.counter("broker.drops") == 0
        assert broker.drop_ratio(2) == 0.0
        assert broker.shed_ratio(2) == pytest.approx(
            shed / broker.metrics.counter("broker.admitted.qos2")
        )
        # Nobody waits forever: shed arrivals got an immediate reply.
        assert len(statuses) == 8
        terminal = {s for _, s in statuses}
        assert terminal <= {ReplyStatus.OK, ReplyStatus.DROPPED, ReplyStatus.DEGRADED}
        assert broker.outstanding == 0

    def test_drop_lowest_sheds_worst_class_for_premium(self, sim, net, slow_backend):
        broker, client = make_broker(sim, net, slow_backend, 2, "drop-lowest")
        statuses = []
        # Fill the queue with class-3 work, then premium arrivals evict it.
        flood(sim, client, 4, qos=3, statuses=statuses)

        def premium(i):
            yield sim.timeout(0.001 + 0.0001 * i)
            reply = yield from client.call(
                "web", "get", ("/work", {"p": i}), qos_level=1, cacheable=False
            )
            statuses.append((1, reply.status))

        for i in range(2):
            sim.process(premium(i))
        sim.run()
        assert broker.metrics.counter("broker.shed.drop-lowest") > 0
        assert broker.metrics.counter("broker.shed.qos3") > 0
        # Premium work was never shed; every premium call completed OK.
        assert broker.metrics.counter("broker.shed.qos1") == 0
        assert all(s is ReplyStatus.OK for q, s in statuses if q == 1)
        assert broker.shed_ratio(3) > broker.shed_ratio(1) == 0.0
        assert len(statuses) == 6


class TestWatermarks:
    def test_engage_release_hysteresis_notifies_listeners(
        self, sim, net, slow_backend
    ):
        broker, client = make_broker(sim, net, slow_backend, 4, "reject-new")
        stage = backpressure_stage(broker)
        transitions = []
        stage.add_listener(lambda engaged, name: transitions.append((engaged, name)))
        statuses = []
        # high = int(4 * 0.75) = 3, low = min(2, high-1) = 2.
        flood(sim, client, 8, qos=2, statuses=statuses)

        def late_probe():
            # Long after the backlog drained, one more request observes
            # the low watermark and releases the throttle.
            yield sim.timeout(5.0)
            assert stage.engaged
            yield from client.call(
                "web", "get", ("/work", {"late": 1}), cacheable=False
            )

        sim.process(late_probe())
        sim.run()
        assert not stage.engaged
        assert transitions == [(True, broker.name), (False, broker.name)]
        assert broker.metrics.counter("broker.backpressure.engaged") == 1
        assert broker.metrics.counter("broker.backpressure.released") == 1

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            BackpressureStage(0)
        with pytest.raises(ValueError):
            BackpressureStage(10, high_watermark=0.5, low_watermark=0.75)
        with pytest.raises(ValueError):
            BackpressureStage(10, high_watermark=1.5)


class TestFrontendThrottle:
    def make_frontend(self, sim, net):
        frontend = FrontendWebServer(
            sim, net.node("web"), throttle_level=2
        )

        def hello(frontend_server, request):
            yield frontend_server.sim.timeout(0.01)
            return "hello"

        frontend.register_app(WebApplication(path="/hello", handler=hello))
        return frontend

    def fetch(self, sim, net, frontend, qos):
        request = HttpRequest(
            method="GET", path="/hello", headers={QOS_HEADER: str(qos)}
        )
        node = net.node(f"client{len(net.nodes)}")

        def run():
            return (
                yield from HttpClient.fetch(sim, node, frontend.address, request)
            )

        return sim.run(sim.process(run()))

    def test_throttled_classes_get_503(self, sim, net):
        frontend = self.make_frontend(sim, net)
        frontend.set_throttled(True, "broker-a")
        assert frontend.throttled
        response = self.fetch(sim, net, frontend, qos=3)
        assert response.status == 503
        assert "backpressure" in response.body
        assert frontend.metrics.counter("frontend.throttled") == 1
        assert frontend.metrics.counter("frontend.throttled.qos3") == 1

    def test_premium_classes_pass_while_throttled(self, sim, net):
        frontend = self.make_frontend(sim, net)
        frontend.set_throttled(True, "broker-a")
        response = self.fetch(sim, net, frontend, qos=1)
        assert response.status == 200
        assert frontend.metrics.counter("frontend.throttled") == 0

    def test_throttle_clears_when_all_sources_release(self, sim, net):
        frontend = self.make_frontend(sim, net)
        frontend.set_throttled(True, "broker-a")
        frontend.set_throttled(True, "broker-b")
        frontend.set_throttled(False, "broker-a")
        # One broker is still overloaded: stay throttled.
        assert frontend.throttled
        assert self.fetch(sim, net, frontend, qos=2).status == 503
        frontend.set_throttled(False, "broker-b")
        assert not frontend.throttled
        assert self.fetch(sim, net, frontend, qos=2).status == 200
        assert frontend.metrics.counter("frontend.throttle.engaged") == 2
        assert frontend.metrics.counter("frontend.throttle.released") == 2

    def test_unthrottled_frontend_never_503s(self, sim, net):
        frontend = self.make_frontend(sim, net)
        assert self.fetch(sim, net, frontend, qos=3).status == 200
