"""Tests for the shared cache tier and the cross-broker combining stages."""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerClient,
    BrokerPeerGroup,
    ClusteringConfig,
    DatabaseAdapter,
    InListQueryCombiner,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
    SharedCacheTier,
    TransactionTracker,
    cache_tier_stage_plan,
    stage_plan,
)
from repro.db import Database, DatabaseServer
from repro.errors import NetworkError
from repro.metrics import MetricsRegistry


class FakeBroker:
    """Just enough broker surface for tier-level write-behind tests."""

    def __init__(self, sim, name="fake", fail=False):
        self.sim = sim
        self.name = name
        self.fail = fail
        self.transactions = None
        self.cache_tier = None
        self.executed = []

    def execute_direct(self, operation, payload):
        yield self.sim.timeout(0.001)
        if self.fail:
            raise NetworkError("backend unreachable")
        self.executed.append((operation, payload))
        return "ok"


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def tier(sim, registry):
    return SharedCacheTier(sim, capacity=8, ttl=10.0, metrics=registry)


class TestSharedCacheTier:
    def test_put_get_and_mirrored_counters(self, tier, registry):
        assert tier.get("k") is None
        tier.put("k", "v")
        assert tier.get("k") == "v"
        assert tier.stats.hits == 1
        assert tier.stats.misses == 1
        assert registry.counter("broker.cachetier.hits") == 1
        assert registry.counter("broker.cachetier.misses") == 1
        assert registry.counter("broker.cachetier.puts") == 1

    def test_ttl_expiry_uses_sim_clock(self, sim, tier):
        tier.put("k", "v")

        def later():
            yield sim.timeout(11.0)
            assert tier.get("k") is None

        sim.run(sim.process(later()))

    def test_invalidate_counts(self, tier, registry):
        tier.put("k", "v")
        assert tier.invalidate("k")
        assert not tier.invalidate("k")
        assert registry.counter("broker.cachetier.invalidations") == 1

    def test_attach_sets_broker_and_is_idempotent(self, sim, tier):
        broker = FakeBroker(sim)
        tier.attach(broker)
        tier.attach(broker)
        assert broker.cache_tier is tier
        assert tier.brokers == [broker]

    def test_validates_queue_parameters(self, sim):
        with pytest.raises(ValueError):
            SharedCacheTier(sim, flush_queue_depth=0)
        with pytest.raises(ValueError):
            SharedCacheTier(sim, flush_interval=0.0)


class TestWriteBehind:
    def test_accepted_write_invalidates_and_flushes(self, sim, tier, registry):
        broker = FakeBroker(sim)
        tier.put("k", "old")
        assert tier.write_behind(broker, "query", "UPDATE ...", keys=("k",))
        assert tier.get("k") is None  # invalidated before the flush
        assert tier.pending_writes == 1
        sim.run(until=1.0)
        assert tier.pending_writes == 0
        assert broker.executed == [("query", "UPDATE ...")]
        assert registry.counter("broker.cachetier.writebehind.enqueued") == 1
        assert registry.counter("broker.cachetier.writebehind.flushed") == 1

    def test_overflow_refused_but_keys_still_invalidated(self, sim, registry):
        tier = SharedCacheTier(
            sim, metrics=registry, flush_queue_depth=1
        )
        broker = FakeBroker(sim)
        tier.put("k2", "old")
        assert tier.write_behind(broker, "query", "w1", keys=("k1",))
        assert not tier.write_behind(broker, "query", "w2", keys=("k2",))
        assert tier.get("k2") is None
        assert registry.counter("broker.cachetier.writebehind.overflow") == 1
        assert tier.pending_writes == 1

    def test_flush_drains_everything_now(self, sim, tier):
        broker = FakeBroker(sim)
        for i in range(5):
            tier.write_behind(broker, "query", f"w{i}")
        sim.run(sim.process(tier.flush()))
        assert tier.pending_writes == 0
        assert len(broker.executed) == 5

    def test_flush_error_counted_not_raised(self, sim, tier, registry):
        broker = FakeBroker(sim, fail=True)
        tier.write_behind(broker, "query", "w", keys=("k",))
        sim.run(until=1.0)
        assert registry.counter("broker.cachetier.writebehind.errors") == 1
        assert registry.counter("broker.cachetier.writebehind.flushed") == 0

    def test_flush_reinvalidates_raced_fill(self, sim, tier):
        broker = FakeBroker(sim)
        tier.write_behind(broker, "query", "w", keys=("k",))
        tier.put("k", "stale-refill")  # a read-through fill racing the queue
        sim.run(until=1.0)
        assert tier.get("k") is None


class TestTransactionInvalidation:
    def test_write_set_invalidated_on_complete(self, sim, tier, registry):
        tracker = TransactionTracker()
        tier.watch_transactions(tracker)
        broker = FakeBroker(sim)
        tracker.observe_remote("T1", 1)
        tier.write_behind(broker, "query", "w", keys=("k",), txn_id="T1")
        tier.put("k", "refill")
        tracker.complete("T1")
        assert tier.get("k") is None
        assert registry.counter("broker.cachetier.txn_invalidations") == 1

    def test_watch_is_idempotent_per_tracker(self, sim, tier):
        tracker = TransactionTracker()
        tier.watch_transactions(tracker)
        tier.watch_transactions(tracker)
        assert len(tracker._on_complete) == 1

    def test_note_txn_write_without_queue(self, sim, tier):
        tracker = TransactionTracker()
        tier.watch_transactions(tracker)
        tracker.observe_remote("T2", 1)
        tier.note_txn_write("T2", "k")
        tier.put("k", "v")
        tracker.complete("T2")
        assert tier.get("k") is None


def make_db_fixture(groups=5, rows=20):
    database = Database()
    table = database.create_table(
        "records", [("id", int), ("grp", int), ("val", int)]
    )
    for i in range(rows):
        table.insert((i, i % groups, i * 10))
    table.create_index("grp")
    return database


def make_broker(
    sim, net, web, server, name, port, tier=None,
    cluster_window=0.0, combine_window=0.05, registry=None,
):
    stages = cache_tier_stage_plan(
        tier, combine_window=combine_window, combine_max_batch=8
    )
    return ServiceBroker(
        sim,
        web,
        service="db",
        adapters=[DatabaseAdapter(sim, web, server.address)],
        port=port,
        qos=QoSPolicy(levels=1, threshold=100),
        clustering=ClusteringConfig(
            InListQueryCombiner(), max_batch=8, window=cluster_window
        ),
        transactions=TransactionTracker(),
        pool_size=2,
        dispatchers=1,
        metrics=registry,
        name=name,
        stages=stages,
    )


class TestCacheTierStage:
    def test_tier_hit_across_brokers(self, sim, net, registry):
        web = net.node("web")
        server = DatabaseServer(sim, net.node("dbhost"), make_db_fixture())
        tier = SharedCacheTier(sim, metrics=registry)
        broker_a = make_broker(
            sim, net, web, server, "tier-a", 7411, tier=tier, registry=registry
        )
        broker_b = make_broker(
            sim, net, web, server, "tier-b", 7412, tier=tier, registry=registry
        )
        client_a = BrokerClient(sim, web, {"db": broker_a.address})
        client_b = BrokerClient(sim, web, {"db": broker_b.address})
        sql = "SELECT val FROM records WHERE grp = 1"
        replies = {}

        def run():
            replies["a"] = yield from client_a.call("db", "query", sql)
            replies["b"] = yield from client_b.call("db", "query", sql)

        sim.run(sim.process(run()))
        assert replies["a"].status is ReplyStatus.OK
        assert not replies["a"].from_cache
        assert replies["b"].status is ReplyStatus.OK
        assert replies["b"].from_cache  # broker B never touched the backend
        assert replies["b"].payload.rows == replies["a"].payload.rows
        assert registry.counter("broker.cachetier.replies") == 1
        assert server.database is not None

    def test_degenerate_plan_without_tier_passes_through(self, sim, net):
        web = net.node("web")
        server = DatabaseServer(sim, net.node("dbhost"), make_db_fixture())
        stages = stage_plan("cache-tier")
        broker = ServiceBroker(
            sim, web, service="db",
            adapters=[DatabaseAdapter(sim, web, server.address)],
            port=7413, stages=stages, name="no-tier",
        )
        client = BrokerClient(sim, web, {"db": broker.address})
        replies = {}

        def run():
            replies["r"] = yield from client.call(
                "db", "query", "SELECT val FROM records WHERE grp = 1"
            )

        sim.run(sim.process(run()))
        assert replies["r"].status is ReplyStatus.OK
        assert not replies["r"].from_cache


class TestQueryCombineStage:
    def make_pair(self, sim, net, registry, window_a=0.0, window_b=0.2):
        web = net.node("web")
        server = DatabaseServer(
            sim, net.node("dbhost"), make_db_fixture(), max_workers=8
        )
        broker_a = make_broker(
            sim, net, web, server, "comb-a", 7421,
            cluster_window=window_a, registry=registry,
        )
        broker_b = make_broker(
            sim, net, web, server, "comb-b", 7422,
            cluster_window=window_b, registry=registry,
        )
        group = BrokerPeerGroup()
        group.join(broker_a)
        group.join(broker_b)
        client_a = BrokerClient(sim, web, {"db": broker_a.address})
        client_b = BrokerClient(sim, web, {"db": broker_b.address})
        return broker_a, broker_b, client_a, client_b

    @staticmethod
    def keyed_sql(grp):
        return f"SELECT val FROM records WHERE grp = {grp}"

    def test_advertiser_claims_from_peer_queue(self, sim, net, registry):
        broker_a, broker_b, client_a, client_b = self.make_pair(
            sim, net, registry, window_a=0.0, window_b=0.2
        )
        replies = {}

        def call(client, tag, grp):
            def proc():
                replies[tag] = yield from client.call(
                    "db", "query", self.keyed_sql(grp), cacheable=False
                )
            return proc()

        # Broker B's single dispatcher opens a long local window on the
        # first request; the second sits queued and is claimed by A.
        sim.process(call(client_a, "a1", 1))
        sim.process(call(client_b, "b1", 2))
        sim.process(call(client_b, "b2", 3))
        sim.run(until=2.0)

        for tag, grp in (("a1", 1), ("b1", 2), ("b2", 3)):
            assert replies[tag].status is ReplyStatus.OK
            expected = {(i * 10,) for i in range(20) if i % 5 == grp}
            assert set(replies[tag].payload.rows) == expected
        assert registry.counter("broker.cachetier.combine.batches") == 1
        assert registry.counter("broker.cachetier.combine.remote_items") == 1
        assert registry.counter("peering.combinable_adverts_sent") >= 1
        assert registry.counter("peering.combinable_adverts_applied") >= 1
        # Ledger transfer balanced: nothing outstanding on either side.
        assert broker_a.admission.outstanding == 0
        assert broker_b.admission.outstanding == 0

    def test_peer_yields_while_advert_is_fresh(self, sim, net, registry):
        _a, _b, client_a, client_b = self.make_pair(
            sim, net, registry, window_a=0.0, window_b=0.02
        )
        replies = {}

        def call(client, tag, grp):
            def proc():
                replies[tag] = yield from client.call(
                    "db", "query", self.keyed_sql(grp), cacheable=False
                )
            return proc()

        # B's short local window closes while A's advert is still fresh:
        # B combines its own pair locally and yields instead of opening a
        # competing cross-broker window.
        sim.process(call(client_a, "a1", 1))
        sim.process(call(client_b, "b1", 2))
        sim.process(call(client_b, "b2", 3))
        sim.run(until=2.0)

        assert all(r.status is ReplyStatus.OK for r in replies.values())
        assert registry.counter("broker.cachetier.combine.yields") == 1
        assert registry.counter("broker.cachetier.combine.remote_items") == 0

    def test_plain_plan_outputs_unchanged_without_peers(self, sim, net):
        """A cache-tier plan broker with no peer group and no tier answers
        exactly like a distributed-plan broker at the same seed."""
        web = net.node("web")
        server = DatabaseServer(sim, net.node("dbhost"), make_db_fixture())
        broker = make_broker(sim, net, web, server, "solo", 7431)
        client = BrokerClient(sim, web, {"db": broker.address})
        replies = {}

        def run():
            replies["r"] = yield from client.call(
                "db", "query", self.keyed_sql(1), cacheable=False
            )

        sim.run(sim.process(run()))
        assert replies["r"].status is ReplyStatus.OK
        assert set(replies["r"].payload.rows) == {
            (i * 10,) for i in range(20) if i % 5 == 1
        }
