"""Each ServiceAdapter exercised through a real broker."""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerClient,
    DirectoryAdapter,
    MailAdapter,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
)
from repro.ldapdir import DirectoryServer, DirectoryTree
from repro.mail import MailServer, MessageStore


@pytest.fixture
def directory_stack(sim, net):
    tree = DirectoryTree()
    tree.add("dc=corp", {"objectClass": "domain"})
    tree.add("ou=people,dc=corp", {"objectClass": "organizationalUnit"})
    for i in range(6):
        tree.add(
            f"cn=emp{i},ou=people,dc=corp",
            {"objectClass": "person", "dept": "eng" if i % 2 else "sales"},
        )
    server = DirectoryServer(sim, net.node("ldap"), tree)
    node = net.node("web")
    broker = ServiceBroker(
        sim,
        node,
        service="ldap",
        adapters=[DirectoryAdapter(sim, node, server.address)],
        qos=QoSPolicy(levels=1, threshold=100),
    )
    client = BrokerClient(sim, node, {"ldap": broker.address})
    return tree, server, broker, client


class TestDirectoryAdapter:
    def test_search_through_broker(self, sim, directory_stack):
        _tree, _server, _broker, client = directory_stack

        def run():
            reply = yield from client.call(
                "ldap", "search", ("ou=people,dc=corp", "sub", "(dept=eng)")
            )
            return reply

        reply = sim.run(sim.process(run()))
        assert reply.status is ReplyStatus.OK
        assert len(reply.payload.entries) == 3

    def test_modify_through_broker(self, sim, directory_stack):
        tree, _server, _broker, client = directory_stack

        def run():
            reply = yield from client.call(
                "ldap",
                "modify",
                ("cn=emp0,ou=people,dc=corp", {"dept": "mgmt"}),
                cacheable=False,
            )
            return reply

        reply = sim.run(sim.process(run()))
        assert reply.status is ReplyStatus.OK
        assert tree.get("cn=emp0,ou=people,dc=corp").first("dept") == "mgmt"

    def test_search_error_surfaces(self, sim, directory_stack):
        _tree, _server, _broker, client = directory_stack

        def run():
            reply = yield from client.call(
                "ldap", "search", ("dc=nowhere", "sub", None)
            )
            return reply

        reply = sim.run(sim.process(run()))
        assert reply.status is ReplyStatus.ERROR
        assert "nowhere" in reply.error

    def test_unknown_operation_is_error_reply(self, sim, directory_stack):
        _tree, _server, broker, client = directory_stack

        def run():
            reply = yield from client.call("ldap", "frobnicate", ())
            return reply

        reply = sim.run(sim.process(run()))
        assert reply.status is ReplyStatus.ERROR
        assert broker.outstanding == 0


class TestMailAdapter:
    @pytest.fixture
    def mail_stack(self, sim, net):
        store = MessageStore()
        store.create_mailbox("ops")
        server = MailServer(sim, net.node("mail"), store)
        node = net.node("web")
        broker = ServiceBroker(
            sim,
            node,
            service="mail",
            adapters=[MailAdapter(sim, node, server.address)],
            qos=QoSPolicy(levels=1, threshold=100),
        )
        client = BrokerClient(sim, node, {"mail": broker.address})
        return store, client

    def test_send_list_retrieve_via_broker(self, sim, mail_stack):
        store, client = mail_stack

        def run():
            sent = yield from client.call(
                "mail", "send", ("alerts", "ops", "disk", "disk 91% full"),
                cacheable=False,
            )
            listed = yield from client.call("mail", "list", "ops", cacheable=False)
            fetched = yield from client.call(
                "mail", "retr", ("ops", sent.payload), cacheable=False
            )
            return sent, listed, fetched

        sent, listed, fetched = sim.run(sim.process(run()))
        assert sent.status is ReplyStatus.OK
        assert listed.payload == [sent.payload]
        assert fetched.payload["subject"] == "disk"
        assert len(store.mailbox("ops")) == 1
