"""Unit tests for combiners and clustering config."""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerRequest,
    ClusteringConfig,
    IdenticalRequestCombiner,
    MgetCombiner,
    RepeatWorkloadCombiner,
)
from repro.errors import BrokerError
from repro.http import HttpResponse
from repro.net import Address

REPLY_TO = Address("web", 50000)


def get_request(request_id: int, path: str, params=None, service="web") -> BrokerRequest:
    return BrokerRequest(
        request_id=request_id,
        service=service,
        operation="get",
        payload=(path, params or {}),
        reply_to=REPLY_TO,
    )


class TestClusteringConfig:
    def test_validation(self):
        combiner = IdenticalRequestCombiner()
        with pytest.raises(BrokerError):
            ClusteringConfig(combiner=combiner, max_batch=0)
        with pytest.raises(BrokerError):
            ClusteringConfig(combiner=combiner, window=-1)


class TestIdenticalRequestCombiner:
    def test_key_is_request_key(self):
        combiner = IdenticalRequestCombiner()
        a = get_request(1, "/x", {"q": 1})
        b = get_request(2, "/x", {"q": 1})
        c = get_request(3, "/x", {"q": 2})
        assert combiner.key(a) == combiner.key(b)
        assert combiner.key(a) != combiner.key(c)

    def test_combine_split_shares_result(self):
        combiner = IdenticalRequestCombiner()
        batch = [get_request(i, "/x") for i in range(3)]
        operation, payload = combiner.combine(batch)
        assert operation == "get"
        results = combiner.split(batch, "shared")
        assert results == ["shared"] * 3

    def test_explicit_cache_key_groups(self):
        combiner = IdenticalRequestCombiner()
        a = BrokerRequest(1, "db", "query", "SELECT 1", REPLY_TO, cache_key="same")
        b = BrokerRequest(2, "db", "query", "SELECT 1 ", REPLY_TO, cache_key="same")
        assert combiner.key(a) == combiner.key(b)


class TestRepeatWorkloadCombiner:
    def test_clusters_by_path_ignoring_params(self):
        combiner = RepeatWorkloadCombiner()
        a = get_request(1, "/lookup", {"grp": 5})
        b = get_request(2, "/lookup", {"grp": 9})
        assert combiner.key(a) == combiner.key(b)

    def test_does_not_cluster_non_get(self):
        combiner = RepeatWorkloadCombiner()
        req = BrokerRequest(1, "db", "query", "SELECT 1", REPLY_TO)
        assert combiner.key(req) is None

    def test_combine_adds_repeat_count(self):
        combiner = RepeatWorkloadCombiner()
        batch = [get_request(i, "/lookup", {"grp": i}) for i in range(4)]
        operation, (path, params) = combiner.combine(batch)
        assert operation == "get"
        assert path == "/lookup"
        assert params["repeat"] == 4
        assert params["grp"] == 0  # head request's params win

    def test_split_fans_out_same_body(self):
        combiner = RepeatWorkloadCombiner()
        batch = [get_request(i, "/lookup") for i in range(3)]
        response = HttpResponse.text("rows=126")
        assert combiner.split(batch, response) == [response] * 3

    def test_custom_repeat_param_name(self):
        combiner = RepeatWorkloadCombiner(repeat_param="n")
        _, (_, params) = combiner.combine([get_request(1, "/x")])
        assert params["n"] == 1


class TestMgetCombiner:
    def test_key_clusters_all_gets_per_service(self):
        combiner = MgetCombiner()
        a = get_request(1, "/1.html")
        b = get_request(2, "/2.html")
        assert combiner.key(a) == combiner.key(b)
        other = get_request(3, "/1.html", service="other")
        assert combiner.key(a) != combiner.key(other)

    def test_single_request_passes_through(self):
        combiner = MgetCombiner()
        batch = [get_request(1, "/1.html", {"h": 1})]
        operation, payload = combiner.combine(batch)
        assert operation == "get"
        assert payload == ("/1.html", {"h": 1})
        assert combiner.split(batch, "resp") == ["resp"]

    def test_combine_builds_mget(self):
        combiner = MgetCombiner()
        batch = [get_request(1, "/1.html"), get_request(2, "/2.html")]
        operation, (paths, _params) = combiner.combine(batch)
        assert operation == "mget"
        assert paths == ("/1.html", "/2.html")

    def test_split_maps_parts_positionally(self):
        combiner = MgetCombiner()
        batch = [get_request(1, "/1.html"), get_request(2, "/2.html")]
        parts = (
            ("/1.html", HttpResponse.text("one")),
            ("/2.html", HttpResponse.text("two")),
        )
        result = HttpResponse(status=206, parts=parts)
        split = combiner.split(batch, result)
        assert [r.body for r in split] == ["one", "two"]

    def test_split_rejects_mismatched_parts(self):
        combiner = MgetCombiner()
        batch = [get_request(1, "/1.html"), get_request(2, "/2.html")]
        bad = HttpResponse(status=206, parts=(("/1.html", HttpResponse.text("x")),))
        with pytest.raises(BrokerError):
            combiner.split(batch, bad)

    def test_split_rejects_partless_response(self):
        combiner = MgetCombiner()
        batch = [get_request(1, "/1.html"), get_request(2, "/2.html")]
        with pytest.raises(BrokerError):
            combiner.split(batch, HttpResponse.text("flat"))
