"""Elastic autoscaling: token buckets, the scale law, the drain protocol.

Unit tests pin down the pure pieces (:class:`TokenBucket`,
:func:`decide_scale`), hypothesis drives the safety properties the
robustness story rests on (bucket level bounded, pool size bounded, no
opposing scale decisions within one cooldown window), and simulation
tests walk the graceful drain protocol end to end — including the
hand-off and raced-arrival refusal paths the macro experiments rarely
reach because their drains quiesce before the grace deadline.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BrokerClient, ReplyStatus
from repro.core.autoscale import (
    AutoscalerPolicy,
    Autoscaler,
    TenantThrottle,
    TokenBucket,
    decide_scale,
)
from repro.metrics import MetricsRegistry
from repro.workload.chaos import _elastic_pool


class TestTokenBucket:
    def test_starts_full_and_spends_down(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert bucket.level == 3.0
        assert [bucket.allow(0.0) for _ in range(4)] == [True, True, True, False]
        assert bucket.level == 0.0

    def test_refill_is_proportional_and_clamped(self):
        bucket = TokenBucket(rate=2.0, burst=4.0)
        for _ in range(4):
            assert bucket.allow(0.0)
        assert bucket.allow(1.0)  # 2 tokens accrued over 1s
        assert bucket.allow(1.0)
        assert not bucket.allow(1.0)
        bucket.refill(100.0)
        assert bucket.level == 4.0  # clamped at burst, not 200

    def test_refused_call_consumes_nothing(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.allow(0.0)
        before = bucket.level
        assert not bucket.allow(0.0)
        assert bucket.level == before

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


# Arbitrary monotone clock with interleaved spend attempts.
bucket_events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(events=bucket_events, rate=st.floats(min_value=0.1, max_value=20.0),
       burst=st.floats(min_value=0.5, max_value=10.0))
def test_bucket_level_always_within_bounds(events, rate, burst):
    """Satellite property: the level provably stays in [0, burst]."""
    bucket = TokenBucket(rate=rate, burst=burst)
    now = 0.0
    for gap, cost in events:
        now += gap
        bucket.allow(now, cost)
        assert 0.0 <= bucket.level <= burst


class TestTenantThrottle:
    def test_buckets_are_lazy_and_isolated(self):
        throttle = TenantThrottle(rate=1.0, burst=1.0)
        assert throttle.allow("a", 0.0)
        assert not throttle.allow("a", 0.0)
        # Tenant b has its own untouched bucket.
        assert throttle.allow("b", 0.0)
        assert set(throttle.buckets) == {"a", "b"}

    def test_overrides_give_named_tenants_their_own_shape(self):
        throttle = TenantThrottle(
            rate=100.0, burst=100.0, overrides={"burst": (1.0, 2.0)}
        )
        assert throttle.bucket("burst").burst == 2.0
        assert throttle.bucket("anyone").burst == 100.0
        assert [throttle.allow("burst", 0.0) for _ in range(3)] == [
            True, True, False,
        ]


class TestDecideScale:
    POLICY = AutoscalerPolicy(
        target=4.0, hysteresis=0.25, scale_out_cooldown=5.0,
        scale_in_cooldown=30.0, max_step=2, min_size=1, max_size=8,
    )

    def test_in_band_holds(self):
        decision = decide_scale(self.POLICY, 4, 4.0, 100.0, float("-inf"))
        assert (decision.action, decision.reason) == ("hold", "in-band")

    def test_scales_out_proportionally_with_step_limit(self):
        # ceil(4 * 12 / 4) = 12, but the step limit clamps to 6.
        decision = decide_scale(self.POLICY, 4, 12.0, 100.0, float("-inf"))
        assert (decision.action, decision.desired) == ("out", 6)

    def test_scales_in_proportionally(self):
        # ceil(4 * 1 / 4) = 1, step-limited to 2.
        decision = decide_scale(self.POLICY, 4, 1.0, 100.0, float("-inf"))
        assert (decision.action, decision.desired) == ("in", 2)

    def test_cooldown_holds_both_directions(self):
        out = decide_scale(self.POLICY, 4, 12.0, 3.0, 0.0)
        assert (out.action, out.reason) == ("hold", "out-cooldown")
        inward = decide_scale(self.POLICY, 4, 0.5, 20.0, 0.0)
        assert (inward.action, inward.reason) == ("hold", "in-cooldown")

    def test_alert_vetoes_scale_in_only(self):
        vetoed = decide_scale(
            self.POLICY, 4, 0.5, 100.0, float("-inf"), alert_active=True
        )
        assert (vetoed.action, vetoed.reason) == ("hold", "slo-burn-alert")
        out = decide_scale(
            self.POLICY, 4, 12.0, 100.0, float("-inf"), alert_active=True
        )
        assert out.action == "out"

    def test_clamped_at_bounds(self):
        at_max = decide_scale(self.POLICY, 8, 40.0, 100.0, float("-inf"))
        assert (at_max.action, at_max.reason) == ("hold", "at-max")
        at_min = decide_scale(self.POLICY, 1, 0.0, 100.0, float("-inf"))
        assert (at_min.action, at_min.reason) == ("hold", "at-min")

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(target=0.0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(target=1.0, hysteresis=1.0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(target=1.0, max_step=0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(target=1.0, min_size=5, max_size=2)


# An arbitrary control-loop input: per-tick load signal and alert flag.
control_traces = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.booleans(),
    ),
    min_size=1,
    max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(trace=control_traces, target=st.floats(min_value=0.5, max_value=10.0))
def test_control_loop_safety_properties(trace, target):
    """Satellite properties, under arbitrary metric sequences:

    1. the applied pool size stays within ``[min_size, max_size]``;
    2. no two *opposing* scale decisions ever land within one scale-in
       cooldown window of each other (flap suppression).
    """
    policy = AutoscalerPolicy(
        target=target, hysteresis=0.2, scale_out_cooldown=3.0,
        scale_in_cooldown=12.0, max_step=2, min_size=1, max_size=6,
    )
    size = 2
    last_scale_at = float("-inf")
    events = []  # (time, action)
    for tick, (signal, alert) in enumerate(trace):
        now = float(tick)
        decision = decide_scale(policy, size, signal, now, last_scale_at, alert)
        if decision.action != "hold":
            events.append((now, decision.action))
            size = decision.desired
            last_scale_at = now
        assert policy.min_size <= size <= policy.max_size
    for (t1, a1), (t2, a2) in zip(events, events[1:]):
        if a1 != a2:
            window = (
                policy.scale_in_cooldown if a2 == "in"
                else policy.scale_out_cooldown
            )
            assert t2 - t1 >= window, (
                f"opposing {a1}->{a2} within {t2 - t1:g}s"
            )


def _pool_fixture(sim, net, **kwargs):
    """A small elastic pool plus a client routed to every unit."""
    metrics = MetricsRegistry()
    defaults = dict(
        capacity=16, shed_policy="drop-lowest", service_time=0.2,
        backend_capacity=1, base_port=7500, prefix="t", seed=0,
    )
    defaults.update(kwargs)
    pool, supervisor, listener, group, _watches = _elastic_pool(
        sim, net, metrics, **defaults
    )
    client = BrokerClient(sim, net.nodes["web"], {})
    pool.on_provision = lambda broker: client.add_route(
        broker.service, broker.address
    )
    return pool, supervisor, listener, group, client


class TestDrainProtocol:
    def test_quiesced_drain_retires_and_purges_everywhere(self, sim, net):
        pool, supervisor, listener, group, client = _pool_fixture(sim, net)
        pool.scale_to(2)
        victim = pool.every[-1]

        def run():
            reply = yield from client.call(
                victim.service, "get", ("/item", {"id": 1}),
                cacheable=False, timeout=5.0,
            )
            assert reply.status is ReplyStatus.OK
            yield 1.0  # let a load report land so the listener knows it
            pool.scale_to(1)
            yield 5.0

        sim.run(sim.process(run()))
        assert victim.retired and not victim.alive
        assert pool.drains_completed == 1
        assert victim in pool.retired and not pool.draining
        # Shard group handed leadership off and forgot the member.
        assert victim.name not in [m.name for m in group.members]
        assert group.leader is not None and group.leader.name != victim.name
        # Listener purged immediately (the satellite-2 fix): no stale
        # routing entry survives the drain.
        assert all(
            report.broker != victim.name for report in listener.table.values()
        )
        assert pool.metrics.counter("listener.deregistered") == 1
        # Released from supervision before the heartbeats stopped, so
        # the silence is never declared a death.
        assert pool.metrics.counter("lifecycle.released") == 1
        assert supervisor.metrics.counter("lifecycle.detected") == 0

    def test_drain_hands_queued_orphans_to_live_peer(self, sim, net):
        pool, _sup, _lis, _grp, client = _pool_fixture(
            sim, net, drain_grace=0.0
        )
        pool.scale_to(2)
        victim = pool.every[0]
        statuses = []

        def call_one(i):
            reply = yield from client.call(
                victim.service, "get", ("/item", {"id": i}),
                cacheable=False, timeout=10.0,
            )
            statuses.append(reply.status)

        def run():
            for i in range(6):
                sim.process(call_one(i))
            yield 0.05  # enough to enqueue, not enough to finish
            assert len(victim.queue) > 0
            pool.drain(victim.name)
            yield 10.0

        sim.run(sim.process(run()))
        assert pool.handoffs > 0
        assert victim.retired
        # Every orphan reached a terminal outcome — answered by the
        # peer (service rewritten to its alias) or refused, never lost.
        assert len(statuses) == 6
        assert statuses.count(ReplyStatus.OK) >= pool.handoffs

    def test_drain_with_no_peer_refuses_orphans(self, sim, net):
        pool, _sup, _lis, _grp, client = _pool_fixture(
            sim, net, drain_grace=0.0
        )
        pool.scale_to(1)
        victim = pool.every[0]
        statuses = []

        def call_one(i):
            reply = yield from client.call(
                victim.service, "get", ("/item", {"id": i}),
                cacheable=False, timeout=10.0,
            )
            statuses.append((reply.status, reply.error))

        def run():
            for i in range(4):
                sim.process(call_one(i))
            yield 0.05
            pool.drain(victim.name)
            yield 10.0

        sim.run(sim.process(run()))
        assert victim.retired
        assert len(statuses) == 4
        refused = [s for s in statuses if s == (ReplyStatus.DROPPED, "drain-no-peer")]
        assert refused  # the queued orphans were refused, not lost
        assert pool.metrics.counter("autoscaler.drain.no_peer") == len(refused)

    def test_draining_broker_refuses_raced_arrivals(self, sim, net):
        pool, _sup, _lis, _grp, client = _pool_fixture(
            sim, net, service_time=1.0
        )
        pool.scale_to(2)
        victim = pool.every[-1]
        outcome = {}

        def run():
            # An in-flight slow request keeps the victim quiescing, so
            # the drain is still in progress when the raced call lands.
            sim.process(
                client.call(
                    victim.service, "get", ("/item", {"id": 1}),
                    cacheable=False, timeout=10.0,
                )
            )
            yield 0.1
            pool.drain(victim.name)
            yield 0.01  # let the drain coordinator run begin_drain
            assert victim.draining
            reply = yield from client.call(
                victim.service, "get", ("/item", {"id": 9}),
                cacheable=False, timeout=5.0,
            )
            outcome["reply"] = reply
            yield 5.0

        sim.run(sim.process(run()))
        reply = outcome["reply"]
        assert reply.status is ReplyStatus.DROPPED
        assert reply.error == "draining"
        assert victim.metrics.counter("broker.drain.refused") == 1

    def test_retired_broker_refuses_restart(self, sim, net):
        pool, _sup, _lis, _grp, _client = _pool_fixture(sim, net)
        pool.scale_to(1)
        victim = pool.every[0]

        def run():
            pool.drain(victim.name)
            yield 5.0

        sim.run(sim.process(run()))
        assert victim.retired and not victim.alive
        victim.restart()
        assert not victim.alive  # permanently gone

    def test_draining_flag_survives_crash_and_restart(self, sim, net):
        pool, _sup, _lis, _grp, client = _pool_fixture(sim, net)
        pool.scale_to(2)
        victim = pool.every[-1]

        def run():
            for i in range(4):
                sim.process(
                    client.call(
                        victim.service, "get", ("/item", {"id": i}),
                        cacheable=False, timeout=10.0,
                    )
                )
            yield 0.05
            pool.drain(victim.name)
            yield 0.05
            victim.crash()
            yield 1.0  # supervisor fail-fasts the journal meanwhile
            victim.restart()
            assert victim.draining  # still refusing new work
            yield 10.0

        sim.run(sim.process(run()))
        assert victim.retired
        assert pool.drains_completed == 1
        assert pool.metrics.counter("autoscaler.drain.interrupted") >= 1


class TestThrottleStage:
    def test_broker_refuses_over_budget_tenant_before_admission(self, sim, net):
        throttle = TenantThrottle(
            rate=1000.0, burst=1000.0, overrides={"burst": (0.1, 2.0)}
        )
        pool, _sup, _lis, _grp, client = _pool_fixture(
            sim, net, throttle=throttle, service_time=0.01,
        )
        pool.scale_to(1)
        broker = pool.every[0]
        replies = []

        def call_one(i, tenant):
            reply = yield from client.call(
                broker.service, "get",
                ("/item", {"id": i, "tenant": tenant}),
                cacheable=False, timeout=5.0,
            )
            replies.append((tenant, reply))

        def run():
            for i in range(5):
                yield from call_one(i, "burst")
            for i in range(5):
                yield from call_one(i, "standard")

        sim.run(sim.process(run()))
        burst = [r for t, r in replies if t == "burst"]
        standard = [r for t, r in replies if t == "standard"]
        refused = [r for r in burst if r.status is ReplyStatus.DROPPED]
        assert refused and all(r.error == "throttled" for r in refused)
        assert all(r.status is ReplyStatus.OK for r in standard)
        # Refusals are counted under their own taxonomy ("we refused"),
        # never as admission drops or sheds ("we lost"), and they never
        # touched the admission ledger or the journal.
        metrics = broker.metrics
        assert metrics.counter("broker.throttle.rejected") == len(refused)
        assert metrics.counter("broker.throttle.rejected.burst") == len(refused)
        assert metrics.counter("broker.drops") == 0
        assert metrics.counter("broker.shed") == 0
        assert broker.admission.outstanding == 0


class TestAutoscalerLoop:
    def test_scales_out_under_load_and_back_when_idle(self, sim, net):
        pool, _sup, _lis, _grp, client = _pool_fixture(
            sim, net, service_time=0.3
        )
        policy = AutoscalerPolicy(
            target=1.0, hysteresis=0.2, scale_out_cooldown=0.5,
            scale_in_cooldown=2.0, max_step=2, min_size=1, max_size=4,
        )
        pool.scale_to(1)
        scaler = Autoscaler(sim, pool, policy, interval=0.25)
        scaler.start(until=40.0)

        def call_one(i):
            broker = pool.route(f"k{i}")
            yield from client.call(
                broker.service, "get", ("/item", {"id": i}),
                cacheable=False, timeout=10.0,
            )

        def run():
            for i in range(40):
                sim.process(call_one(i))
                yield 0.05
            yield 35.0  # idle tail: the pool should shrink back

        sim.run(sim.process(run()))
        sizes = [size for _, size, _, _ in scaler.history]
        assert max(sizes) > 1  # tracked the burst up
        assert pool.size == policy.min_size  # and the idle back down
        assert pool.scale_out_events >= 1
        assert pool.drains_completed >= 1
        assert all(
            policy.min_size <= size <= policy.max_size for size in sizes
        )
