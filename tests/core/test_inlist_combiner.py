"""Tests for the multiple-query-optimization combiner (IN-list rewrite)."""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerClient,
    BrokerRequest,
    ClusteringConfig,
    DatabaseAdapter,
    InListQueryCombiner,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
)
from repro.db import Database, DatabaseServer
from repro.net import Address

REPLY_TO = Address("web", 50000)


def query_request(request_id: int, sql: str) -> BrokerRequest:
    return BrokerRequest(
        request_id=request_id,
        service="db",
        operation="query",
        payload=sql,
        reply_to=REPLY_TO,
    )


@pytest.fixture
def combiner():
    return InListQueryCombiner()


class TestPatternMatching:
    def test_keyed_selects_cluster_together(self, combiner):
        a = query_request(1, "SELECT name FROM users WHERE id = 1")
        b = query_request(2, "SELECT name FROM users WHERE id = 2")
        assert combiner.key(a) == combiner.key(b)
        assert combiner.key(a) is not None

    def test_different_tables_or_columns_do_not_cluster(self, combiner):
        a = query_request(1, "SELECT name FROM users WHERE id = 1")
        b = query_request(2, "SELECT name FROM orders WHERE id = 1")
        c = query_request(3, "SELECT name FROM users WHERE email = 'x'")
        d = query_request(4, "SELECT email FROM users WHERE id = 1")
        keys = {combiner.key(r) for r in (a, b, c, d)}
        assert len(keys) == 4

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT name FROM users WHERE id > 1",
            "SELECT name FROM users WHERE id = 1 AND age = 2",
            "SELECT name FROM users WHERE id = 1 ORDER BY name",
            "SELECT name FROM users WHERE id = 1 LIMIT 1",
            "SELECT COUNT(*) FROM users WHERE id = 1",
            "DELETE FROM users WHERE id = 1",
            "not sql at all",
        ],
    )
    def test_non_candidates_rejected(self, combiner, sql):
        assert combiner.key(query_request(1, sql)) is None

    def test_non_query_operations_rejected(self, combiner):
        request = BrokerRequest(1, "web", "get", ("/x", {}), REPLY_TO)
        assert combiner.key(request) is None


class TestCombine:
    def test_single_request_passthrough(self, combiner):
        request = query_request(1, "SELECT name FROM users WHERE id = 1")
        operation, payload = combiner.combine([request])
        assert operation == "query"
        assert payload == request.payload

    def test_combined_sql_uses_in_list(self, combiner):
        batch = [
            query_request(i, f"SELECT name FROM users WHERE id = {i}")
            for i in (1, 2, 3)
        ]
        _, sql = combiner.combine(batch)
        assert "IN (1, 2, 3)" in sql
        assert "id" in sql and "name" in sql

    def test_duplicate_values_deduplicated(self, combiner):
        batch = [
            query_request(1, "SELECT name FROM users WHERE id = 5"),
            query_request(2, "SELECT name FROM users WHERE id = 5"),
        ]
        _, sql = combiner.combine(batch)
        assert sql.count("5") == 1

    def test_string_keys_quoted(self, combiner):
        batch = [
            query_request(1, "SELECT id FROM users WHERE name = 'bob'"),
            query_request(2, "SELECT id FROM users WHERE name = 'o''brien'"),
        ]
        _, sql = combiner.combine(batch)
        assert "'bob'" in sql and "'o''brien'" in sql


class TestEndToEnd:
    @pytest.fixture
    def stack(self, sim, net):
        database = Database()
        table = database.create_table(
            "users", [("id", int), ("name", str), ("age", int)]
        )
        for i in range(100):
            table.insert((i, f"user-{i}", 20 + i % 50))
        table.create_index("id", "hash")
        server = DatabaseServer(sim, net.node("dbhost"), database, max_workers=4)
        node = net.node("web")
        broker = ServiceBroker(
            sim,
            node,
            service="db",
            adapters=[DatabaseAdapter(sim, node, server.address)],
            qos=QoSPolicy(levels=1, threshold=1000),
            clustering=ClusteringConfig(
                combiner=InListQueryCombiner(), max_batch=10, window=0.005
            ),
            dispatchers=1,
            pool_size=1,
        )
        client = BrokerClient(sim, node, {"db": broker.address})
        return server, broker, client

    def test_each_requester_gets_its_own_rows(self, sim, stack):
        server, broker, client = stack
        results = {}

        def one(key):
            reply = yield from client.call(
                "db", "query", f"SELECT name FROM users WHERE id = {key}",
                cacheable=False,
            )
            results[key] = reply

        for key in (3, 7, 7, 11, 999):  # includes a duplicate and a miss
            sim.process(one(key))
        sim.run()
        assert results[3].payload.rows == (("user-3",),)
        assert results[7].payload.rows == (("user-7",),)
        assert results[11].payload.rows == (("user-11",),)
        assert results[999].payload.rows == ()  # missing key: empty result
        assert all(r.status is ReplyStatus.OK for r in results.values())
        # The five requests collapsed into fewer backend queries.
        assert server.metrics.counter("db.queries") < 5

    def test_select_star_round_trip(self, sim, stack):
        server, broker, client = stack
        results = {}

        def one(key):
            reply = yield from client.call(
                "db", "query", f"SELECT * FROM users WHERE id = {key}",
                cacheable=False,
            )
            results[key] = reply.payload

        for key in (1, 2):
            sim.process(one(key))
        sim.run()
        assert results[1].columns == ("id", "name", "age")
        assert results[1].rows == ((1, "user-1", 21),)
        assert results[2].rows == ((2, "user-2", 22),)
