"""Tests for the centralized model: load listener, profiles, controller."""

from __future__ import annotations

import pytest

from repro.core import (
    CentralizedController,
    HttpAdapter,
    LoadListener,
    LoadReport,
    QoSPolicy,
    ResourceProfileRegistry,
    ServiceBroker,
)
from repro.frontend.app import QOS_HEADER
from repro.http import BackendWebServer, HttpRequest


def page_request(qos: int = 1, path: str = "/page") -> HttpRequest:
    return HttpRequest(method="GET", path=path, headers={QOS_HEADER: str(qos)})


class TestLoadListener:
    def test_reports_update_table(self, sim, net):
        node = net.node("web")
        listener = LoadListener(sim, node)
        sender = net.node("brokerhost").datagram_socket()
        report = LoadReport("b1", "db", outstanding=7, queue_depth=3, threshold=20, sent_at=0.0)
        sender.sendto(report, listener.address)
        sim.run()
        assert listener.load_of("db").outstanding == 7
        assert listener.staleness("db") < 1.0
        assert listener.staleness("never") == float("inf")

    def test_updates_queue_behind_processing_time(self, sim, net):
        node = net.node("web")
        listener = LoadListener(sim, node, process_time=0.1)
        sender = net.node("brokerhost").datagram_socket()
        for i in range(10):
            sender.sendto(
                LoadReport("b1", "db", i, 0, 20, sent_at=sim.now), listener.address
            )
        sim.run()
        # 10 updates x 0.1s serial processing: the last applies near t=1.
        assert sim.now == pytest.approx(1.0, abs=0.05)
        assert listener.load_of("db").outstanding == 9
        assert listener.metrics.sample("listener.update_lag").maximum > 0.8

    def test_reports_feed_broker_load_samples(self, sim, net):
        node = net.node("web")
        listener = LoadListener(sim, node)
        sender = net.node("brokerhost").datagram_socket()
        for outstanding in (3, 9):
            sender.sendto(
                LoadReport("b1", "db", outstanding, 4, 20, sent_at=sim.now),
                listener.address,
            )
        sim.run()
        load = listener.metrics.sample("broker.load.b1")
        assert load.count == 2
        assert load.maximum == 9.0
        depth = listener.metrics.sample("broker.load.b1.queue_depth")
        assert depth.mean == pytest.approx(4.0)

    def test_negative_lag_clamped_and_counted(self, sim, net):
        node = net.node("web")
        listener = LoadListener(sim, node, process_time=0.0)
        sender = net.node("brokerhost").datagram_socket()
        # A report stamped ahead of the listener's clock (queued across
        # a broker restart) must not produce a negative lag sample.
        sender.sendto(
            LoadReport("b1", "db", 2, 0, 20, sent_at=sim.now + 10.0),
            listener.address,
        )
        sim.run()
        assert listener.metrics.counter("listener.clock_skew") == 1
        lag = listener.metrics.sample("listener.update_lag")
        assert lag.count == 1
        assert lag.minimum == 0.0
        # The report itself is still applied.
        assert listener.load_of("db").outstanding == 2

    def test_malformed_updates_ignored(self, sim, net):
        node = net.node("web")
        listener = LoadListener(sim, node)
        sender = net.node("x").datagram_socket()
        sender.sendto({"not": "a report"}, listener.address)
        sim.run()
        assert listener.metrics.counter("listener.malformed") == 1


class TestResourceProfiles:
    def test_register_and_lookup(self):
        profiles = ResourceProfileRegistry()
        profiles.register("/page", ["db", "mail"])
        assert profiles.services_for("/page") == ("db", "mail")
        assert profiles.services_for("/other") == ()
        assert "/page" in profiles
        assert len(profiles) == 1


class TestCentralizedController:
    @pytest.fixture
    def controller(self, sim, net):
        listener = LoadListener(sim, net.node("web"))
        profiles = ResourceProfileRegistry()
        profiles.register("/page", ["db"])
        policy = QoSPolicy(levels=3, threshold=20)
        return CentralizedController(listener, profiles, policy), listener

    def _report(self, outstanding: int) -> LoadReport:
        return LoadReport("b1", "db", outstanding, 0, 20, sent_at=0.0)

    def test_admits_when_unreported(self, controller):
        ctrl, _listener = controller
        accepted, _ = ctrl.admit(page_request(qos=3))
        assert accepted

    def test_rejects_by_class_limit(self, controller):
        ctrl, listener = controller
        listener.table["db"] = self._report(10)
        assert ctrl.admit(page_request(qos=1))[0] is True
        assert ctrl.admit(page_request(qos=3))[0] is False  # limit 20/3

    def test_unprofiled_path_always_admitted(self, controller):
        ctrl, listener = controller
        listener.table["db"] = self._report(1000)
        assert ctrl.admit(page_request(qos=3, path="/static"))[0] is True

    def test_rejection_reason_names_service(self, controller):
        ctrl, listener = controller
        listener.table["db"] = self._report(30)
        accepted, reason = ctrl.admit(page_request(qos=1))
        assert not accepted
        assert "db" in reason

    def test_disabled_state_machine_never_degrades(self, sim, net, controller):
        ctrl, listener = controller
        listener.table["db"] = self._report(30)
        sim.run(until=100.0)  # the report is now very stale
        accepted, _ = ctrl.admit(page_request(qos=1))
        # Without a staleness threshold the stale table still decides.
        assert not accepted
        assert ctrl.mode == "centralized"
        assert ctrl.transitions == 0

    def test_integration_with_broker_reports(self, sim, net):
        """Brokers stream reports; the controller reacts to real load."""
        web_node = net.node("web")
        listener = LoadListener(sim, web_node, process_time=0.0001)
        backend = BackendWebServer(sim, net.node("origin"), max_clients=1)

        def slow_cgi(server, request):
            yield server.sim.timeout(5.0)
            return "ok"

        backend.add_cgi("/slow", slow_cgi)
        broker = ServiceBroker(
            sim,
            web_node,
            service="web",
            adapters=[HttpAdapter(sim, web_node, backend.address)],
            qos=QoSPolicy(levels=3, threshold=4),
        )
        broker.report_load_to(listener.address, interval=0.05)
        profiles = ResourceProfileRegistry()
        profiles.register("/page", ["web"])
        controller = CentralizedController(
            listener, profiles, QoSPolicy(levels=3, threshold=4)
        )
        from repro.core import BrokerClient

        client = BrokerClient(sim, web_node, {"web": broker.address})

        def load_then_check():
            before = controller.admit(page_request(qos=3))
            for i in range(4):
                sim.process(client.call("web", "get", ("/slow", {"i": i}), cacheable=False))
            yield sim.timeout(0.5)  # let reports arrive
            after = controller.admit(page_request(qos=3))
            return before[0], after[0]

        before, after = sim.run(sim.process(load_then_check()))
        assert before is True
        assert after is False


class TestListenerOverloadDegradation:
    """The controller's freshness state machine (tentpole part 3)."""

    @pytest.fixture
    def setup(self, sim, net):
        listener = LoadListener(sim, net.node("web"), process_time=0.0)
        profiles = ResourceProfileRegistry()
        profiles.register("/page", ["db"])
        controller = CentralizedController(
            listener,
            profiles,
            QoSPolicy(levels=3, threshold=20),
            staleness_threshold=1.0,
        )
        sender = net.node("brokerhost").datagram_socket()
        return controller, listener, sender

    def overloaded_report(self, sim) -> LoadReport:
        return LoadReport("b1", "db", 30, 0, 20, sent_at=sim.now)

    def test_degrades_on_stale_table_and_recovers(self, sim, net, setup):
        controller, listener, sender = setup
        sender.sendto(self.overloaded_report(sim), listener.address)
        sim.run()
        # Fresh report, overloaded service: centralized mode rejects.
        assert controller.admit(page_request(qos=1))[0] is False
        assert controller.mode == "centralized"

        # Past the staleness threshold the controller stops trusting
        # the table and hands the decision back to the brokers.
        sim.run(until=sim.now + 2.0)
        assert controller.admit(page_request(qos=1))[0] is True
        assert controller.mode == "degraded"
        assert controller.transitions == 1
        assert controller.metrics.counter("centralized.degraded_transitions") == 1
        assert controller.metrics.counter("centralized.degraded_admits") == 1

        # A fresh report restores centralized admission.
        sender.sendto(self.overloaded_report(sim), listener.address)
        sim.run()
        assert controller.admit(page_request(qos=1))[0] is False
        assert controller.mode == "centralized"
        assert controller.transitions == 2
        assert controller.metrics.counter("centralized.recovered_transitions") == 1

    def test_recovery_hysteresis(self, sim, net, setup):
        controller, listener, sender = setup
        # recover_staleness defaults to threshold / 2.
        assert controller.recover_staleness == pytest.approx(0.5)
        sender.sendto(self.overloaded_report(sim), listener.address)
        sim.run()
        sim.run(until=sim.now + 2.0)
        assert controller.admit(page_request(qos=1))[0] is True
        assert controller.mode == "degraded"
        # Staleness 0.75 is below the degrade threshold but above the
        # recover point: stay degraded rather than flap.
        listener._applied["db"] = sim.now - 0.75
        assert controller.admit(page_request(qos=1))[0] is True
        assert controller.mode == "degraded"
        # Only genuinely fresh data recovers.
        listener._applied["db"] = sim.now - 0.1
        assert controller.admit(page_request(qos=1))[0] is False
        assert controller.mode == "centralized"

    def test_unreported_service_does_not_trigger_degradation(
        self, sim, net, setup
    ):
        controller, listener, sender = setup
        # No report ever arrived: staleness is inf, but the controller
        # stays optimistic-centralized exactly like admit() does.
        sim.run(until=5.0)
        assert controller.admit(page_request(qos=1))[0] is True
        assert controller.mode == "centralized"
        assert controller.transitions == 0
