"""Tests for transaction escalation and fidelity degradation."""

from __future__ import annotations

import pytest

from repro.core import BrokerRequest, FidelityPolicy, ReplyStatus, ResultCache, TransactionTracker
from repro.net import Address

REPLY_TO = Address("web", 50000)


def txn_request(request_id: int, qos: int, txn_id=None, step=0) -> BrokerRequest:
    return BrokerRequest(
        request_id=request_id,
        service="svc",
        operation="get",
        payload=("/p", {}),
        reply_to=REPLY_TO,
        qos_level=qos,
        txn_id=txn_id,
        txn_step=step,
    )


class TestTransactionTracker:
    def test_non_transactional_unchanged(self):
        tracker = TransactionTracker()
        request = txn_request(1, qos=3)
        assert tracker.effective_level(request) == 3
        assert not tracker.protected(request)

    def test_escalation_per_step(self):
        tracker = TransactionTracker(escalation_per_step=1)
        assert tracker.effective_level(txn_request(1, 3, "t1", step=1)) == 3
        assert tracker.effective_level(txn_request(2, 3, "t1", step=2)) == 2
        assert tracker.effective_level(txn_request(3, 3, "t1", step=3)) == 1

    def test_escalation_floors_at_one(self):
        tracker = TransactionTracker(escalation_per_step=2)
        assert tracker.effective_level(txn_request(1, 2, "t1", step=5)) == 1

    def test_protection_threshold(self):
        tracker = TransactionTracker(protect_from_step=3)
        assert not tracker.protected(txn_request(1, 3, "t1", step=2))
        assert tracker.protected(txn_request(2, 3, "t1", step=3))

    def test_observe_tracks_highest_step(self):
        tracker = TransactionTracker()
        tracker.observe(txn_request(1, 1, "t1", step=1))
        tracker.observe(txn_request(2, 1, "t1", step=3))
        tracker.observe(txn_request(3, 1, "t1", step=2))
        assert tracker.step_of("t1") == 3
        assert tracker.active == 1

    def test_complete_forgets(self):
        tracker = TransactionTracker()
        tracker.observe(txn_request(1, 1, "t1", step=1))
        tracker.complete("t1")
        assert tracker.step_of("t1") == 0
        assert tracker.active == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TransactionTracker(escalation_per_step=-1)


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestFidelityPolicy:
    def test_busy_reply_without_cache(self):
        policy = FidelityPolicy()
        reply = policy.degrade(txn_request(1, 3), None, "qos-threshold", "b1")
        assert reply.status is ReplyStatus.DROPPED
        assert reply.fidelity == 0.0
        assert reply.payload == policy.busy_message
        assert reply.error == "qos-threshold"
        assert reply.broker == "b1"
        assert not reply.full_fidelity

    def test_stale_cache_gives_degraded_reply(self):
        clock = ManualClock()
        cache = ResultCache(ttl=5, clock=clock)
        policy = FidelityPolicy(max_stale_age=100)
        request = txn_request(1, 3)
        cache.put(request.key(), "old-result")
        clock.now = 10.0  # entry is stale
        reply = policy.degrade(request, cache, "qos-threshold")
        assert reply.status is ReplyStatus.DEGRADED
        assert reply.payload == "old-result"
        assert reply.from_cache
        assert 0.0 < reply.fidelity <= policy.stale_fidelity
        assert reply.ok  # degraded still counts as answered

    def test_fidelity_decays_with_age(self):
        clock = ManualClock()
        cache = ResultCache(ttl=1, clock=clock)
        policy = FidelityPolicy(max_stale_age=100)
        request = txn_request(1, 3)
        cache.put(request.key(), "v")
        clock.now = 10.0
        young = policy.degrade(request, cache, "r").fidelity
        cache.put(request.key(), "v")  # reset stored_at
        clock.now = 105.0
        old = policy.degrade(request, cache, "r")
        assert old.status is ReplyStatus.DEGRADED
        assert old.fidelity < young

    def test_too_old_entries_fall_back_to_busy(self):
        clock = ManualClock()
        cache = ResultCache(ttl=1, clock=clock)
        policy = FidelityPolicy(max_stale_age=50)
        request = txn_request(1, 3)
        cache.put(request.key(), "v")
        clock.now = 60.0
        reply = policy.degrade(request, cache, "r")
        assert reply.status is ReplyStatus.DROPPED

    def test_stale_serving_disabled(self):
        clock = ManualClock()
        cache = ResultCache(ttl=100, clock=clock)
        policy = FidelityPolicy(serve_stale=False)
        request = txn_request(1, 3)
        cache.put(request.key(), "fresh")
        reply = policy.degrade(request, cache, "r")
        assert reply.status is ReplyStatus.DROPPED

    def test_uncacheable_request_never_gets_stale_data(self):
        clock = ManualClock()
        cache = ResultCache(ttl=100, clock=clock)
        policy = FidelityPolicy()
        request = BrokerRequest(
            request_id=1,
            service="svc",
            operation="get",
            payload=("/p", {}),
            reply_to=REPLY_TO,
            cacheable=False,
        )
        cache.put(request.key(), "secret")
        reply = policy.degrade(request, cache, "r")
        assert reply.status is ReplyStatus.DROPPED
