"""Tests for the broker stage pipeline and end-to-end request context."""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerClient,
    BrokerStage,
    DatabaseAdapter,
    QoSPolicy,
    ReplyStatus,
    RequestContext,
    ServiceBroker,
    StageOutcome,
    StagePipeline,
    centralized_stage_plan,
    distributed_stage_plan,
    stage_plan,
)
from repro.db import Database, DatabaseServer
from repro.errors import BrokerError
from repro.workload import run_qos_experiment

DISTRIBUTED_ORDER = [
    "validate", "arrival", "cache-lookup", "admission", "fidelity",
    "enqueue", "cluster", "execute", "cache-fill", "reply",
]
CENTRALIZED_ORDER = [
    "validate", "arrival", "cache-lookup", "fidelity", "enqueue",
    "cluster", "execute", "cache-fill", "reply", "load-report",
]


@pytest.fixture
def db_backend(sim, net):
    database = Database()
    table = database.create_table("kv", [("k", int), ("v", str)])
    for i in range(100):
        table.insert((i, f"v{i}"))
    table.create_index("k", "hash")
    return DatabaseServer(sim, net.node("dbhost"), database, max_workers=4)


def make_broker(sim, net, db_backend, **kwargs):
    node = net.node("webhost")
    defaults = dict(
        service="db",
        adapters=[DatabaseAdapter(sim, node, db_backend.address, name="db0")],
        qos=QoSPolicy(levels=3, threshold=12),
        pool_size=2,
    )
    defaults.update(kwargs)
    broker = ServiceBroker(sim, node, **defaults)
    client = BrokerClient(sim, node, {"db": broker.address})
    return broker, client


class TestStageOrdering:
    def test_distributed_is_the_default_plan(self, sim, net, db_backend):
        broker, _ = make_broker(sim, net, db_backend)
        assert broker.describe_pipeline() == DISTRIBUTED_ORDER

    def test_centralized_plan_order(self):
        assert [s.name for s in centralized_stage_plan()] == CENTRALIZED_ORDER

    def test_stage_plan_factory_matches_model(self):
        assert [s.name for s in stage_plan("distributed")] == DISTRIBUTED_ORDER
        assert [s.name for s in stage_plan("centralized")] == CENTRALIZED_ORDER

    def test_stage_plan_rejects_unknown_model(self):
        with pytest.raises(BrokerError, match="unknown broker model"):
            stage_plan("hierarchical")

    def test_pipeline_splits_at_enqueue_boundary(self, sim, net, db_backend):
        broker, _ = make_broker(sim, net, db_backend)
        ingress = [s.name for s in broker.pipeline.ingress_stages]
        dispatch = [s.name for s in broker.pipeline.dispatch_stages]
        assert ingress == DISTRIBUTED_ORDER[:6]
        assert dispatch == DISTRIBUTED_ORDER[6:]

    def test_stages_bind_to_exactly_one_broker(self, sim, net, db_backend):
        node = net.node("webhost")
        plan = distributed_stage_plan()

        def build(port, stages):
            return ServiceBroker(
                sim,
                node,
                service="db",
                adapters=[DatabaseAdapter(sim, node, db_backend.address)],
                port=port,
                stages=stages,
            )

        build(7000, plan)
        with pytest.raises(BrokerError, match="already bound"):
            build(7001, plan)

    def test_empty_plan_rejected(self, sim, net, db_backend):
        with pytest.raises(BrokerError, match="at least one stage"):
            make_broker(sim, net, db_backend, stages=[])


class TestContextTimeline:
    def test_reply_carries_per_stage_timestamps(self, sim, net, db_backend):
        broker, client = make_broker(sim, net, db_backend)

        def run():
            return (
                yield from client.call(
                    "db", "query", "SELECT v FROM kv WHERE k = 5"
                )
            )

        reply = sim.run(sim.process(run()))
        assert reply.status is ReplyStatus.OK
        ctx = reply.context
        assert isinstance(ctx, RequestContext)
        # Originated at the client, adopted over the net, run through
        # every broker stage, then stamped back at the client.
        assert ctx.stage_names() == ["net"] + DISTRIBUTED_ORDER + ["client"]
        assert ctx.finished and not ctx.rejected
        for name, entered, exited, _decision in ctx.timeline():
            assert exited >= entered, name
        # The ingress section is synchronous: it costs no simulated time.
        for name in DISTRIBUTED_ORDER[:6]:
            assert ctx.duration_of(name) == 0.0
        # Execution talks to the backend, so it must advance the clock.
        assert ctx.duration_of("execute") > 0.0
        assert ctx.created_at <= ctx.received_at <= ctx.completed_at

    def test_timeline_records_stage_decisions(self, sim, net, db_backend):
        broker, client = make_broker(sim, net, db_backend)

        def run():
            return (
                yield from client.call(
                    "db", "query", "SELECT v FROM kv WHERE k = 7"
                )
            )

        reply = sim.run(sim.process(run()))
        decisions = {name: d for name, _, _, d in reply.context.timeline()}
        assert decisions["cache-lookup"] == "bypass"  # no cache configured
        assert decisions["admission"] == "admitted"
        assert decisions["enqueue"].startswith("depth=")
        assert decisions["reply"] == "done"
        assert decisions["client"] == "ok"

    def test_per_stage_metrics_mirrored_to_registry(self, sim, net, db_backend):
        broker, client = make_broker(sim, net, db_backend)

        def run():
            return (
                yield from client.call(
                    "db", "query", "SELECT v FROM kv WHERE k = 9"
                )
            )

        sim.run(sim.process(run()))
        for name in DISTRIBUTED_ORDER:
            assert broker.metrics.sample(f"broker.stage.{name}.time").count == 1
        assert broker.metrics.counter("broker.stage.admission.admitted") == 1
        # The enqueue decision carries the queue depth; the metric name
        # keeps only the key before '='.
        assert broker.metrics.counter("broker.stage.enqueue.depth") == 1
        assert broker.metrics.sample("broker.pipeline.time").count == 1

    def test_rejected_request_timeline_ends_at_fidelity(
        self, sim, net, db_backend
    ):
        broker, client = make_broker(
            sim, net, db_backend, qos=QoSPolicy(levels=3, threshold=1)
        )

        def run():
            # Two simultaneous calls against a threshold of one: the
            # second to arrive is shed by the admission stage.
            return (
                yield from client.call_parallel(
                    [
                        ("db", "query", "SELECT v FROM kv WHERE k = 1", 1),
                        ("db", "query", "SELECT v FROM kv WHERE k = 2", 1),
                    ]
                )
            )

        replies = sim.run(sim.process(run()))
        dropped = [r for r in replies if r.status is ReplyStatus.DROPPED]
        assert len(dropped) == 1
        ctx = dropped[0].context
        assert ctx.rejected
        assert ctx.stage_names() == [
            "net", "validate", "arrival", "cache-lookup", "admission",
            "fidelity", "client",
        ]
        assert ctx.duration_of("fidelity") == 0.0


class NoOpStage(BrokerStage):
    """A do-nothing ingress stage used to prove third-party insertion."""

    name = "no-op"

    def __init__(self) -> None:
        super().__init__()
        self.seen = 0

    def on_request(self, ctx):
        self.seen += 1
        return StageOutcome.CONTINUE


class TaggingBatchStage(BrokerStage):
    """A custom dispatch stage annotating every context it sees."""

    name = "tagging"

    def on_batch(self, batch):
        for ctx in batch.contexts:
            ctx.annotate("tagged", True)
        return StageOutcome.CONTINUE


class TestCustomStageInjection:
    def test_noop_stage_inserted_without_touching_core(
        self, sim, net, db_backend
    ):
        broker, client = make_broker(sim, net, db_backend)
        probe = NoOpStage()
        broker.pipeline.insert_before("admission", probe)
        assert broker.describe_pipeline() == (
            DISTRIBUTED_ORDER[:3] + ["no-op"] + DISTRIBUTED_ORDER[3:]
        )

        def run():
            return (
                yield from client.call(
                    "db", "query", "SELECT v FROM kv WHERE k = 3"
                )
            )

        reply = sim.run(sim.process(run()))
        assert reply.status is ReplyStatus.OK
        assert probe.seen == 1
        assert "no-op" in reply.context.stage_names()
        assert broker.metrics.counter("broker.stage.no-op.continue") == 1

    def test_custom_dispatch_stage_annotates_context(
        self, sim, net, db_backend
    ):
        broker, client = make_broker(sim, net, db_backend)
        broker.pipeline.insert_after("execute", TaggingBatchStage())

        def run():
            return (
                yield from client.call(
                    "db", "query", "SELECT v FROM kv WHERE k = 4"
                )
            )

        reply = sim.run(sim.process(run()))
        assert reply.status is ReplyStatus.OK
        assert reply.context.annotations["tagged"] is True
        assert "tagging" in reply.context.stage_names()

    def test_insert_before_unknown_stage_is_an_error(
        self, sim, net, db_backend
    ):
        broker, _ = make_broker(sim, net, db_backend)
        with pytest.raises(BrokerError, match="no stage named"):
            broker.pipeline.insert_before("ghost", NoOpStage())

    def test_custom_plan_via_constructor(self, sim, net, db_backend):
        plan = distributed_stage_plan()
        plan.insert(3, NoOpStage())
        broker, client = make_broker(sim, net, db_backend, stages=plan)
        assert "no-op" in broker.describe_pipeline()

        def run():
            return (
                yield from client.call(
                    "db", "query", "SELECT v FROM kv WHERE k = 2"
                )
            )

        assert sim.run(sim.process(run())).status is ReplyStatus.OK

    def test_pipeline_requires_binding_broker(self, sim, net, db_backend):
        broker, _ = make_broker(sim, net, db_backend)
        stage = NoOpStage()
        pipeline = StagePipeline(broker, [stage])
        assert stage.broker is broker
        assert len(pipeline) == 1 and list(pipeline) == [stage]


class TestModelEquivalence:
    def test_models_agree_under_light_load(self):
        """With no overload neither model sheds: identical completions."""
        results = {
            mode: run_qos_experiment(
                6, mode=mode, duration=15.0, seed=5, think_time=0.05
            )
            for mode in ("broker", "centralized")
        }
        broker_r, central_r = results["broker"], results["centralized"]
        assert broker_r.completions == central_r.completions
        assert broker_r.full_fidelity == central_r.full_fidelity
        assert all(
            ratio == 0.0
            for per_broker in central_r.drop_ratios.values()
            for ratio in per_broker.values()
        )
        assert all(v == 0 for v in central_r.frontend_rejections.values())
