"""Edge cases of the broker: intensity gates, malformed input, stats."""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerClient,
    HttpAdapter,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
)
from repro.http import BackendWebServer


@pytest.fixture
def rate_limited_stack(sim, net):
    node = net.node("web")
    server = BackendWebServer(sim, net.node("origin"), max_clients=8)
    server.add_static("/x", "payload")
    broker = ServiceBroker(
        sim,
        node,
        service="web",
        adapters=[HttpAdapter(sim, node, server.address)],
        qos=QoSPolicy(
            levels=2,
            threshold=1000,
            rate_limits={2: 10.0},  # class 2 contracted to 10 req/s
        ),
        rate_window=1.0,
    )
    client = BrokerClient(sim, node, {"web": broker.address})
    return broker, client


class TestIntensityGateEndToEnd:
    def test_class_exceeding_contract_is_shed(self, sim, rate_limited_stack):
        broker, client = rate_limited_stack
        statuses = {1: [], 2: []}

        def one(qos):
            reply = yield from client.call(
                "web", "get", ("/x", {}), qos_level=qos, cacheable=False
            )
            statuses[qos].append(reply.status)

        def driver():
            # 40 class-2 requests in one second: 4x its contract.
            for i in range(40):
                sim.process(one(2))
                sim.process(one(1))
                yield sim.timeout(0.025)

        sim.process(driver())
        sim.run()
        dropped_2 = sum(1 for s in statuses[2] if s is ReplyStatus.DROPPED)
        dropped_1 = sum(1 for s in statuses[1] if s is ReplyStatus.DROPPED)
        assert dropped_2 > 10, "over-contract class must be shed"
        assert dropped_1 == 0, "other classes are not affected"
        assert (
            broker.metrics.counter("admission.rejected.intensity.qos2") == dropped_2
        )


class TestBrokerRobustness:
    def test_malformed_datagram_ignored(self, sim, net, rate_limited_stack):
        broker, _client = rate_limited_stack
        stranger = net.node("stranger").datagram_socket()
        stranger.sendto({"not": "a request"}, broker.address)
        stranger.sendto(42, broker.address)
        sim.run()
        assert broker.metrics.counter("broker.malformed") == 2
        assert broker.outstanding == 0

    def test_drop_ratio_zero_without_arrivals(self, sim, rate_limited_stack):
        broker, _client = rate_limited_stack
        assert broker.drop_ratio(1) == 0.0

    def test_qos_level_clamped(self, sim, rate_limited_stack):
        broker, client = rate_limited_stack

        def run():
            high = yield from client.call(
                "web", "get", ("/x", {}), qos_level=99, cacheable=False
            )
            low = yield from client.call(
                "web", "get", ("/x", {}), qos_level=-3, cacheable=False
            )
            return high, low

        high, low = sim.run(sim.process(run()))
        assert high.status is ReplyStatus.OK
        assert low.status is ReplyStatus.OK
        # Clamped into 1..levels for accounting.
        assert broker.metrics.counter("broker.arrivals.qos2") == 1
        assert broker.metrics.counter("broker.arrivals.qos1") == 1

    def test_dispatcher_count_validation(self, sim, net):
        server = BackendWebServer(sim, net.node("o2"), max_clients=1)
        from repro.errors import BrokerError

        with pytest.raises(BrokerError):
            ServiceBroker(
                sim,
                net.node("w2"),
                service="web",
                adapters=[HttpAdapter(sim, net.node("w3"), server.address)],
                dispatchers=0,
            )

    def test_broker_requires_adapters(self, sim, net):
        from repro.errors import BrokerError

        with pytest.raises(BrokerError):
            ServiceBroker(sim, net.node("w4"), service="web", adapters=[])
