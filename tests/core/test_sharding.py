"""Tests for the shard tier: hash ring, replica groups, routing, peering.

Unit tests pin the deterministic building blocks (ring placement,
bully elections, the directory), hypothesis drives the consistent-
hashing remap bound and election convergence, and the integration
tests run real brokers through :class:`ShardRouteStage` forwarding —
including the cross-shard span attribution and exporter round-trip.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BrokerClient,
    HashRing,
    HttpAdapter,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
    ShardDirectory,
    ShardGroup,
    ShardPeerGroup,
    sharded_stage_plan,
)
from repro.core.centralized import LoadListener, ShardLoadReport
from repro.core.peering import JournalSync, RouteAdvert
from repro.errors import BrokerError
from repro.http import BackendWebServer
from repro.metrics import MetricsRegistry
from repro.net import Link, Network
from repro.obs import TraceCollector
from repro.obs.export import to_chrome_trace, to_jsonl, validate_chrome_trace
from repro.sim import Simulation
from repro.workload import run_shard_chaos_experiment, run_sharded_qos_experiment


class FakeReplica:
    """Just enough broker surface for ShardGroup unit tests."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.address = ("web", 7000)
        self.alive = True


def make_group(n: int = 3, service: str = "svc", index: int = 0):
    group = ShardGroup(service, index, MetricsRegistry())
    members = [FakeReplica(f"r{i}") for i in range(n)]
    for member in members:
        group.add(member)
    return group, members


# ---------------------------------------------------------------------------
# HashRing
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_owner_deterministic_across_instances(self):
        nodes = [f"n{i}" for i in range(5)]
        a = HashRing(seed=9, nodes=nodes)
        b = HashRing(seed=9, nodes=nodes)
        for i in range(100):
            assert a.owner(f"key{i}") == b.owner(f"key{i}")

    def test_seed_changes_placement(self):
        nodes = [f"n{i}" for i in range(4)]
        a = HashRing(seed=1, nodes=nodes)
        b = HashRing(seed=2, nodes=nodes)
        assert any(a.owner(f"key{i}") != b.owner(f"key{i}") for i in range(50))

    def test_duplicate_add_rejected(self):
        ring = HashRing(nodes=["n0"])
        with pytest.raises(BrokerError):
            ring.add("n0")

    def test_remove_missing_rejected(self):
        with pytest.raises(BrokerError):
            HashRing(nodes=["n0"]).remove("n1")

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(BrokerError):
            HashRing().owner("key")

    def test_zero_vnodes_rejected(self):
        with pytest.raises(BrokerError):
            HashRing(vnodes=0)

    def test_preference_starts_with_owner_and_is_distinct(self):
        ring = HashRing(seed=3, nodes=[f"n{i}" for i in range(4)])
        for i in range(20):
            prefs = ring.preference(f"key{i}")
            assert prefs[0] == ring.owner(f"key{i}")
            assert len(prefs) == len(set(prefs)) == 4
            assert ring.preference(f"key{i}", n=2) == prefs[:2]

    def test_average_remap_fraction_near_one_over_n(self):
        """Growing 8 -> 9 nodes moves about 1/9 of the keyspace."""
        keys = [f"key{i}" for i in range(2000)]
        ring = HashRing(seed=7, nodes=[f"n{i}" for i in range(8)])
        before = {key: ring.owner(key) for key in keys}
        ring.add("n8")
        moved = sum(1 for key in keys if ring.owner(key) != before[key])
        assert moved <= 2 * len(keys) / 9

    @given(
        keys=st.lists(
            st.text(alphabet="abcdef0123456789", min_size=1, max_size=8),
            min_size=1,
            max_size=50,
            unique=True,
        ),
        n=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_add_remaps_keys_only_to_the_new_node(self, keys, n, seed):
        """The consistent-hashing bound: an added node only *steals*."""
        ring = HashRing(seed=seed, nodes=[f"n{i}" for i in range(n)])
        before = {key: ring.owner(key) for key in keys}
        ring.add("fresh")
        for key in keys:
            after = ring.owner(key)
            assert after == before[key] or after == "fresh"

    @given(
        keys=st.lists(
            st.text(alphabet="abcdef0123456789", min_size=1, max_size=8),
            min_size=1,
            max_size=50,
            unique=True,
        ),
        n=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_remove_remaps_only_the_removed_nodes_keys(self, keys, n, seed):
        ring = HashRing(seed=seed, nodes=[f"n{i}" for i in range(n)])
        before = {key: ring.owner(key) for key in keys}
        ring.remove("n0")
        for key in keys:
            after = ring.owner(key)
            if before[key] == "n0":
                assert after != "n0"
            else:
                assert after == before[key]

    @given(
        order=st.permutations([f"n{i}" for i in range(5)]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_placement_independent_of_construction_order(self, order, seed):
        canonical = HashRing(seed=seed, nodes=[f"n{i}" for i in range(5)])
        shuffled = HashRing(seed=seed, nodes=order)
        for i in range(30):
            assert canonical.owner(f"key{i}") == shuffled.owner(f"key{i}")


# ---------------------------------------------------------------------------
# ShardGroup elections
# ---------------------------------------------------------------------------


class TestShardGroup:
    def test_join_order_is_priority(self):
        group, members = make_group(3)
        assert group.leader is members[0]

    def test_duplicate_member_rejected(self):
        group, members = make_group(2)
        with pytest.raises(BrokerError):
            group.add(members[0])

    def test_leader_death_promotes_next_replica(self):
        group, members = make_group(3)
        members[0].alive = False
        group.note_down("r0")
        assert group.leader is members[1]

    def test_returning_senior_replica_bullies_back(self):
        group, members = make_group(3)
        members[0].alive = False
        group.note_down("r0")
        members[0].alive = True
        group.note_up("r0")
        assert group.leader is members[0]

    def test_route_self_heals_on_undetected_crash(self):
        """A dead-but-not-yet-flagged leader is replaced inline."""
        group, members = make_group(2)
        members[0].alive = False  # crash, no note_down yet
        assert group.route() is members[1]
        assert group.leader is members[1]

    def test_route_none_when_all_replicas_down(self):
        group, members = make_group(2)
        for member in members:
            member.alive = False
            group.note_down(member.name)
        assert group.route() is None

    def test_elections_counted(self):
        group, members = make_group(2)
        start = group.elections
        members[0].alive = False
        group.note_down("r0")
        assert group.elections == start + 1

    @given(
        ops=st.lists(
            st.tuples(st.integers(min_value=0, max_value=4), st.booleans()),
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_election_converges_to_first_live_member(self, ops):
        """Any interleaving of failures and recoveries converges on the
        highest-priority live replica (or no leader at all)."""
        group, members = make_group(5)
        for index, up in ops:
            members[index].alive = up
            if up:
                group.note_up(members[index].name)
            else:
                group.note_down(members[index].name)
        expected = next((m for m in members if m.alive), None)
        assert group.route() is expected


# ---------------------------------------------------------------------------
# ShardDirectory
# ---------------------------------------------------------------------------


class TestShardDirectory:
    def make_directory(self, shards=3, replicas=2, service="items", seed=11):
        directory = ShardDirectory()
        groups = []
        for shard in range(shards):
            group = ShardGroup(service, shard, MetricsRegistry())
            for replica in range(replicas):
                group.add(FakeReplica(f"s{shard}r{replica}"))
            groups.append(group)
        directory.register(service, groups, seed=seed)
        return directory, groups

    def test_duplicate_service_rejected(self):
        directory, groups = self.make_directory()
        with pytest.raises(BrokerError):
            directory.register("items", groups)

    def test_empty_group_list_rejected(self):
        with pytest.raises(BrokerError):
            ShardDirectory().register("items", [])

    def test_shard_of_is_stable_and_in_range(self):
        directory, _groups = self.make_directory(shards=3)
        for i in range(50):
            shard = directory.shard_of("items", f"item{i}")
            assert 0 <= shard < 3
            assert directory.shard_of("items", f"item{i}") == shard

    def test_route_returns_owning_shards_leader(self):
        directory, groups = self.make_directory()
        shard = directory.shard_of("items", "item0")
        assert directory.route("items", "item0") is groups[shard].leader

    def test_address_for_raises_when_shard_has_no_live_replica(self):
        directory, groups = self.make_directory(shards=1, replicas=2)
        for group in groups:
            for member in group.members:
                member.alive = False
                group.note_down(member.name)
        with pytest.raises(BrokerError):
            directory.address_for("items", "item0")

    def test_describe_names_leaders(self):
        directory, _groups = self.make_directory(shards=2)
        text = directory.describe()
        assert "items: 2 shard(s)" in text
        assert "leader=s0r0" in text and "s0r0*" in text
        assert "leader=s1r0" in text

    def test_partition_covers_every_key_exactly_once(self):
        ring = HashRing(seed=11, nodes=["0", "1", "2"])
        keys = [f"item{i}" for i in range(200)]
        buckets = ring.partition(keys)
        assert sorted(buckets) == ["0", "1", "2"]
        scattered = [key for node in buckets for key in buckets[node]]
        assert sorted(scattered) == sorted(keys)
        for node, owned in buckets.items():
            assert all(ring.owner(key) == node for key in owned)

    def test_partition_slice_ring_matches_full_directory(self):
        """A slice registered over the full universe places keys like
        the unpartitioned directory does."""
        full, _groups = self.make_directory(shards=3, seed=11)
        sliced = ShardDirectory()
        group = ShardGroup("items", 1, MetricsRegistry())
        group.add(FakeReplica("s1r0"))
        sliced.register("items", [group], seed=11, universe=range(3))
        for i in range(100):
            assert sliced.shard_of("items", f"item{i}") == full.shard_of(
                "items", f"item{i}"
            )

    def test_universe_must_cover_instantiated_groups(self):
        group = ShardGroup("items", 5, MetricsRegistry())
        group.add(FakeReplica("s5r0"))
        with pytest.raises(BrokerError, match="not in the ring universe"):
            ShardDirectory().register(
                "items", [group], seed=11, universe=range(3)
            )

    def test_uninstantiated_shard_fails_loudly(self):
        """A key owned by a shard outside this partition must not
        silently rehash onto a local group."""
        sliced = ShardDirectory()
        group = ShardGroup("items", 1, MetricsRegistry())
        group.add(FakeReplica("s1r0"))
        sliced.register("items", [group], seed=11, universe=range(3))
        foreign = next(
            key
            for key in (f"item{i}" for i in range(200))
            if sliced.shard_of("items", key) != 1
        )
        with pytest.raises(BrokerError, match="not instantiated"):
            sliced.route("items", foreign)


# ---------------------------------------------------------------------------
# ShardRouteStage + peering integration (real brokers)
# ---------------------------------------------------------------------------


def build_sharded_service(sim, net, shards=2, replicas=2, service="items"):
    """N shards x R replicas over per-shard backends, fully peered."""
    web = net.node("web")
    directory = ShardDirectory()
    groups, peers, brokers = [], [], []
    port = 7400
    for shard in range(shards):
        server = BackendWebServer(
            sim, net.node(f"origin{shard}"), max_clients=4
        )

        def cgi(server, request, shard=shard):
            yield server.sim.timeout(0.05)
            return f"ok-s{shard}"

        server.add_cgi("/s", cgi)
        group = ShardGroup(service, shard, MetricsRegistry())
        peer = ShardPeerGroup(group)
        for replica in range(replicas):
            broker = ServiceBroker(
                sim,
                web,
                service=service,
                port=port,
                adapters=[HttpAdapter(sim, web, server.address)],
                qos=QoSPolicy(levels=3, threshold=100),
                pool_size=2,
                name=f"s{shard}r{replica}",
                stages=sharded_stage_plan(directory, shard=shard),
            )
            port += 1
            group.add(broker)
            peer.join(broker)
            brokers.append(broker)
        groups.append(group)
        peers.append(peer)
    for peer in peers:
        peer.set_roster(brokers)
    directory.register(service, groups, seed=5)
    return web, directory, groups, peers, brokers


def key_owned_by(directory, service, shard):
    """A request key the given shard owns, by construction."""
    for i in range(10_000):
        if directory.shard_of(service, f"item{i}") == shard:
            return f"item{i}"
    raise AssertionError(f"no key found for shard {shard}")


class TestShardRouteStage:
    def test_local_key_stays_local(self, sim, net):
        web, directory, groups, _peers, brokers = build_sharded_service(sim, net)
        key = key_owned_by(directory, "items", 0)
        client = BrokerClient(sim, web, {"items": brokers[0].address})
        replies = []

        def run():
            reply = yield from client.call(
                "items", "get", ("/s", {}), cacheable=False, cache_key=key
            )
            replies.append(reply)

        sim.run(sim.process(run()))
        assert replies[0].status is ReplyStatus.OK
        assert replies[0].broker == "s0r0"
        assert brokers[0].metrics.counter("broker.shard.local") == 1
        assert brokers[0].metrics.counter("broker.shard.forwarded") == 0

    def test_misdirected_key_is_forwarded_to_owner(self, sim, net):
        web, directory, groups, _peers, brokers = build_sharded_service(sim, net)
        key = key_owned_by(directory, "items", 1)
        # Address shard 0's leader with a shard-1 key on purpose.
        client = BrokerClient(sim, web, {"items": brokers[0].address})
        replies = []

        def run():
            reply = yield from client.call(
                "items", "get", ("/s", {}), cacheable=False, cache_key=key
            )
            replies.append(reply)

        sim.run(sim.process(run()))
        reply = replies[0]
        assert reply.status is ReplyStatus.OK
        assert reply.payload.body == "ok-s1"
        # The owner replied straight to the caller.
        assert reply.broker == groups[1].leader.name
        assert brokers[0].metrics.counter("broker.shard.forwarded") == 1
        assert brokers[0].metrics.counter("broker.shard.local") == 0
        owner = groups[1].leader
        assert owner.metrics.counter("broker.shard.local") == 1

    def test_forward_spans_nest_under_relay_broker(self, sim, net):
        """Cross-shard hops appear as child spans of the relay broker."""
        collector = TraceCollector()
        collector.attach(sim)
        web, directory, groups, _peers, brokers = build_sharded_service(sim, net)
        key = key_owned_by(directory, "items", 1)
        client = BrokerClient(sim, web, {"items": brokers[0].address})

        def run():
            yield from client.call(
                "items", "get", ("/s", {}), cacheable=False, cache_key=key
            )

        sim.run(sim.process(run()))
        assert len(collector) == 1
        trace = collector.traces[0]
        assert trace.validate() == []
        relay = trace.find("s0r0")
        owner = trace.find(groups[1].leader.name)
        assert relay is not None and owner is not None
        forward = trace.find("net.forward")
        assert forward is not None
        # The broker->broker leg is attributed to the forwarding broker.
        assert any(span.name == "net.forward" for span in relay.walk())
        assert all(span.name != "net.forward" for span in owner.walk())

    def test_forwarded_trace_round_trips_through_exporters(self, sim, net):
        collector = TraceCollector()
        collector.attach(sim)
        web, directory, groups, _peers, brokers = build_sharded_service(sim, net)
        key = key_owned_by(directory, "items", 1)
        client = BrokerClient(sim, web, {"items": brokers[0].address})

        def run():
            yield from client.call(
                "items", "get", ("/s", {}), cacheable=False, cache_key=key
            )

        sim.run(sim.process(run()))
        doc = to_chrome_trace(collector.traces)
        assert validate_chrome_trace(doc) == []
        names = {
            event["name"] for event in doc["traceEvents"] if event["ph"] == "X"
        }
        assert "net.forward" in names and "s0r0" in names
        records = [json.loads(line) for line in to_jsonl(collector.traces)]
        forwards = [r for r in records if r["span"] == "net.forward"]
        assert forwards and forwards[0]["parent"] == "s0r0"

    def test_degenerate_plan_is_a_pass_through(self):
        """No directory -> the sharded plan behaves like distributed."""

        def run_one(stages):
            sim = Simulation(seed=7)
            net = Network(sim, default_link=Link.lan())
            node = net.node("web")
            server = BackendWebServer(sim, net.node("origin"), max_clients=2)

            def cgi(server, request):
                yield server.sim.timeout(0.05)
                return "ok"

            server.add_cgi("/s", cgi)
            broker = ServiceBroker(
                sim,
                node,
                service="web",
                adapters=[HttpAdapter(sim, node, server.address)],
                qos=QoSPolicy(levels=3, threshold=6),
                pool_size=2,
                stages=stages,
            )
            client = BrokerClient(sim, node, {"web": broker.address})
            out = []

            def one(i):
                yield sim.timeout(0.01 * i)
                reply = yield from client.call(
                    "web", "get", ("/s", {"i": i}),
                    qos_level=(i % 3) + 1, cacheable=False,
                )
                out.append((i, reply.status.value, round(sim.now, 9)))

            for i in range(10):
                sim.process(one(i))
            sim.run()
            return out, broker

        base, _ = run_one(None)
        degenerate, broker = run_one(sharded_stage_plan())
        assert degenerate == base
        assert broker.metrics.counter("broker.shard.local") == 10
        assert broker.metrics.counter("broker.shard.forwarded") == 0


class TestShardPeering:
    def test_journal_sync_maintains_shadow(self, sim, net):
        _web, _dir, _groups, _peers, brokers = build_sharded_service(sim, net)
        sender = net.node("ext").datagram_socket()
        sender.sendto(
            JournalSync(
                origin="s0r1", request_id=7, request=None,
                answered=False, sent_at=0.0,
            ),
            brokers[0].address,
        )
        sim.run()
        assert 7 in brokers[0].shard_shadow["s0r1"]
        assert brokers[0].metrics.counter("peering.journal_syncs_applied") == 1
        sender.sendto(
            JournalSync(
                origin="s0r1", request_id=7, request=None,
                answered=True, sent_at=0.0,
            ),
            brokers[0].address,
        )
        sim.run()
        assert 7 not in brokers[0].shard_shadow["s0r1"]

    def test_route_advert_updates_shard_view(self, sim, net):
        _web, _dir, _groups, _peers, brokers = build_sharded_service(sim, net)
        sender = net.node("ext").datagram_socket()
        sender.sendto(
            RouteAdvert(
                service="items", shard=1, leader="s1r1",
                members=("s1r0", "s1r1"), sent_at=0.0,
            ),
            brokers[0].address,
        )
        sim.run()
        assert brokers[0].shard_view[("items", 1)] == "s1r1"

    def test_election_advertises_new_leader_to_roster(self, sim, net):
        web, directory, groups, _peers, brokers = build_sharded_service(sim, net)

        def run():
            yield sim.timeout(0.1)
            groups[0].leader.crash()
            assert groups[0].route().name == "s0r1"  # self-heal + advert
            yield sim.timeout(0.5)

        sim.run(sim.process(run()))
        assert groups[0].leader.name == "s0r1"
        for broker in brokers:
            if broker.name.startswith("s1"):
                assert broker.shard_view[("items", 0)] == "s0r1"


class TestListenerLeaderTracking:
    def report(self, broker, leader=True, outstanding=1):
        return ShardLoadReport(
            broker=broker, service="items", outstanding=outstanding,
            queue_depth=0, threshold=10, sent_at=0.0,
            shard=0, leader=leader,
        )

    def test_reporting_role_failover_counted(self, sim, net):
        web = net.node("web")
        listener = LoadListener(sim, web, process_time=0.0)
        sender = net.node("ext").datagram_socket()

        def run():
            sender.sendto(self.report("s0r0"), listener.address)
            yield sim.timeout(0.1)
            sender.sendto(self.report("s0r0"), listener.address)
            yield sim.timeout(0.1)
            sender.sendto(self.report("s0r1"), listener.address)
            yield sim.timeout(0.1)

        sim.run(sim.process(run()))
        assert listener.shard_leaders[("items", 0)] == "s0r1"
        assert listener.leader_failovers == 1

    def test_non_leader_claims_do_not_move_the_role(self, sim, net):
        web = net.node("web")
        listener = LoadListener(sim, web, process_time=0.0)
        sender = net.node("ext").datagram_socket()

        def run():
            sender.sendto(self.report("s0r0"), listener.address)
            yield sim.timeout(0.1)
            sender.sendto(self.report("s0r1", leader=False), listener.address)
            yield sim.timeout(0.1)

        sim.run(sim.process(run()))
        assert listener.shard_leaders[("items", 0)] == "s0r0"
        assert listener.leader_failovers == 0


# ---------------------------------------------------------------------------
# Workload-level behavior
# ---------------------------------------------------------------------------


class TestShardedWorkloads:
    def test_sharded_qos_runs_and_is_deterministic(self):
        first = run_sharded_qos_experiment(
            6, shards=2, replicas=2, mode="broker", duration=10.0, seed=5
        )
        second = run_sharded_qos_experiment(
            6, shards=2, replicas=2, mode="broker", duration=10.0, seed=5
        )
        assert first.brokers == 12  # 3 services x 2 shards x 2 replicas
        assert sum(first.completions.values()) > 0
        assert first.local_routes > 0
        assert first.completions == second.completions
        assert first.full_fidelity == second.full_fidelity

    def test_parallel_workers_match_each_other_and_do_real_work(self):
        """The partitioned path is worker-count invariant and sane."""
        serial = run_sharded_qos_experiment(
            6, shards=2, replicas=1, duration=10.0, seed=5
        )
        two = run_sharded_qos_experiment(
            6, shards=2, replicas=1, duration=10.0, seed=5, workers=2
        )
        # Partitioned workload != serial replay, but it is the same
        # topology doing comparable work: all pages full-fidelity in
        # this unloaded configuration, zero cross-shard forwards (one
        # item key drives all three services), same broker count.
        assert two.brokers == serial.brokers
        assert two.forwards == 0
        assert sum(two.completions.values()) > 0
        assert two.full_fidelity == two.completions

    def test_parallel_rejects_centralized_mode(self):
        with pytest.raises(ValueError, match="centralized"):
            run_sharded_qos_experiment(
                6, shards=2, mode="centralized", duration=5.0, workers=2
            )

    def test_parallel_rejects_obs_collector(self):
        with pytest.raises(ValueError, match="obs"):
            run_sharded_qos_experiment(
                6, shards=2, duration=5.0, workers=2, obs=object()
            )

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            run_sharded_qos_experiment(6, shards=2, duration=5.0, workers=0)

    def test_leader_only_reporting_is_replica_count_invariant(self):
        """The listener's load tracks shards, not replicas — the knob
        the paper's centralized model lacks."""
        single = run_sharded_qos_experiment(
            4, shards=2, replicas=1, mode="centralized", duration=10.0, seed=5
        )
        double = run_sharded_qos_experiment(
            4, shards=2, replicas=2, mode="centralized", duration=10.0, seed=5
        )
        assert single.listener_updates > 0
        assert double.listener_updates == single.listener_updates

    def test_shard_chaos_invariants_hold(self):
        result = run_shard_chaos_experiment(
            duration=40.0, shards=2, replicas=2,
            leader_kill_every=15.0, seed=3,
        )
        assert result.all_invariants_hold, [
            check.detail for check in result.invariants if not check.passed
        ]
        assert result.leader_kills >= 2
        assert result.elections >= result.leader_kills
        assert result.availability >= 0.99
