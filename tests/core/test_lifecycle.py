"""Broker lifecycle: crash/restart, the recovery journal, supervision."""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerClient,
    BrokerSupervisor,
    HttpAdapter,
    QoSPolicy,
    RecoveryJournal,
    ReplyStatus,
    ServiceBroker,
)
from repro.errors import BrokerTimeout
from repro.http import BackendWebServer


@pytest.fixture
def backend(sim, net):
    server = BackendWebServer(sim, net.node("origin"), max_clients=2)

    def cgi(server, request):
        yield server.sim.timeout(0.1)
        return "ok"

    server.add_cgi("/work", cgi)
    return server


def make_broker(sim, net, backend, **kwargs):
    node = net.node("webhost")
    defaults = dict(
        service="web",
        adapters=[HttpAdapter(sim, node, backend.address, name="origin")],
        qos=QoSPolicy(levels=3, threshold=10_000),
        dispatchers=1,
        pool_size=1,
    )
    defaults.update(kwargs)
    broker = ServiceBroker(sim, node, **defaults)
    client = BrokerClient(sim, node, {"web": broker.address})
    return broker, client


class TestCrashRestart:
    def test_requests_sent_to_dead_broker_vanish(self, sim, net, backend):
        broker, client = make_broker(sim, net, backend)
        outcome = {}

        def run():
            broker.crash()
            assert not broker.alive
            try:
                yield from client.call(
                    "web", "get", ("/work", {}), cacheable=False, timeout=1.0
                )
            except BrokerTimeout:
                outcome["timed_out"] = True

        sim.run(sim.process(run()))
        assert outcome["timed_out"]
        assert broker.metrics.counter("broker.crashes") == 1

    def test_crash_discards_backlog_and_ledger(self, sim, net, backend):
        broker, client = make_broker(sim, net, backend)

        def driver():
            for i in range(3):
                sim.process(
                    client.call(
                        "web", "get", ("/work", {"i": i}),
                        cacheable=False, timeout=5.0,
                    )
                )
            yield sim.timeout(0.05)
            assert broker.outstanding > 0
            broker.crash()
            assert len(broker.queue) == 0
            assert broker.outstanding == 0

        sim.run(sim.process(driver()))

    def test_restart_serves_again(self, sim, net, backend):
        broker, client = make_broker(sim, net, backend)
        replies = []

        def run():
            broker.crash()
            yield sim.timeout(1.0)
            broker.restart()
            assert broker.alive
            reply = yield from client.call(
                "web", "get", ("/work", {}), cacheable=False, timeout=5.0
            )
            replies.append(reply)

        sim.run(sim.process(run()))
        assert replies[0].status is ReplyStatus.OK
        assert broker.metrics.counter("broker.restarts") == 1

    def test_crash_and_restart_are_idempotent(self, sim, net, backend):
        broker, _ = make_broker(sim, net, backend)
        broker.restart()  # already alive: no-op
        assert broker.metrics.counter("broker.restarts") == 0
        broker.crash()
        broker.crash()  # already dead: no-op
        assert broker.metrics.counter("broker.crashes") == 1


class TestRecoveryJournal:
    def test_rejects_unknown_policy(self, sim):
        with pytest.raises(ValueError):
            RecoveryJournal(sim, policy="pray")

    def test_journal_shadows_unanswered_requests(self, sim, net, backend):
        broker, client = make_broker(sim, net, backend)
        journal = RecoveryJournal(sim, metrics=broker.metrics)
        broker.journal = journal

        def run():
            yield from client.call(
                "web", "get", ("/work", {}), cacheable=False, timeout=5.0
            )

        def probe():
            yield sim.timeout(0.05)
            # Mid-flight: admitted, not yet answered.
            assert journal.pending_count == 1

        sim.process(probe())
        sim.run(sim.process(run()))
        # Answered: the write-ahead entry was cleared by send_reply.
        assert journal.pending_count == 0

    def test_replay_recovers_in_flight_work(self, sim, net, backend):
        broker, client = make_broker(sim, net, backend)
        journal = RecoveryJournal(sim, policy="replay", metrics=broker.metrics)
        broker.journal = journal
        replies = []

        def one(i):
            reply = yield from client.call(
                "web", "get", ("/work", {"i": i}), cacheable=False
            )
            replies.append(reply.status)

        def driver():
            for i in range(3):
                sim.process(one(i))
            yield sim.timeout(0.05)
            broker.crash()
            assert journal.pending_count == 3
            yield sim.timeout(1.0)
            broker.restart()
            yield sim.timeout(2.0)  # let the replayed work complete

        sim.run(sim.process(driver()))
        # Every journaled request was re-run and answered exactly once.
        assert journal.replayed == 3
        assert journal.pending_count == 0
        assert replies == [ReplyStatus.OK] * 3
        assert broker.metrics.counter("lifecycle.replayed") == 3

    def test_shed_policy_answers_degraded_on_restart(self, sim, net, backend):
        broker, client = make_broker(sim, net, backend)
        journal = RecoveryJournal(sim, policy="shed", metrics=broker.metrics)
        broker.journal = journal
        replies = []

        def one(i):
            reply = yield from client.call(
                "web", "get", ("/work", {"i": i}), cacheable=False
            )
            replies.append(reply.status)

        def driver():
            for i in range(3):
                sim.process(one(i))
            yield sim.timeout(0.05)
            broker.crash()
            yield sim.timeout(1.0)
            broker.restart()
            yield sim.timeout(1.0)  # let the shed replies arrive

        sim.run(sim.process(driver()))
        assert journal.shed == 3
        assert len(replies) == 3
        # No backend work was redone: every reply is a busy/degraded one.
        assert all(
            s in (ReplyStatus.DEGRADED, ReplyStatus.DROPPED) for s in replies
        )
        assert broker.metrics.counter("broker.shed.restart") == 3


class TestSupervisor:
    def setup_supervised(self, sim, net, backend, **watch_kwargs):
        broker, client = make_broker(sim, net, backend)
        supervisor = BrokerSupervisor(
            sim, net.node("mon"), metrics=broker.metrics
        )
        journal = RecoveryJournal(sim, metrics=broker.metrics)
        watch = supervisor.watch(broker, journal=journal, **watch_kwargs)
        return broker, client, supervisor, journal, watch

    def test_detects_death_and_fails_fast(self, sim, net, backend):
        broker, client, supervisor, journal, watch = self.setup_supervised(
            sim, net, backend
        )
        replies = []

        def one(i):
            reply = yield from client.call(
                "web", "get", ("/work", {"i": i}), cacheable=False
            )
            replies.append(reply)

        def driver():
            yield sim.timeout(0.5)
            assert supervisor.is_up(broker.name)
            for i in range(3):
                sim.process(one(i))
            yield sim.timeout(0.05)
            broker.crash()

        sim.process(driver())
        sim.run(until=2.0)
        # Detection within interval * miss_factor of the last heartbeat.
        assert not supervisor.is_up(broker.name)
        assert watch.detected == 1
        assert broker.metrics.counter("lifecycle.broker_down") == 1
        # Every in-flight request was answered DROPPED immediately — the
        # clients did not have to wait out a timeout.
        assert journal.failed_fast == 3
        assert len(replies) == 3
        assert all(r.status is ReplyStatus.DROPPED for r in replies)
        assert all(r.error == "broker-crash" for r in replies)

    def test_heartbeats_mark_restart_as_recovery(self, sim, net, backend):
        broker, client, supervisor, journal, watch = self.setup_supervised(
            sim, net, backend
        )

        def driver():
            yield sim.timeout(0.5)
            broker.crash()
            yield sim.timeout(1.0)
            assert not supervisor.is_up(broker.name)
            broker.restart()
            yield sim.timeout(0.5)

        sim.process(driver())
        sim.run(until=3.0)
        assert supervisor.is_up(broker.name)
        assert watch.recoveries == 1
        assert broker.metrics.counter("lifecycle.broker_up") == 1

    def test_fail_fast_consumes_journal_before_replay(self, sim, net, backend):
        broker, client, supervisor, journal, watch = self.setup_supervised(
            sim, net, backend
        )
        replies = []

        def one(i):
            reply = yield from client.call(
                "web", "get", ("/work", {"i": i}), cacheable=False
            )
            replies.append(reply)

        def driver():
            yield sim.timeout(0.5)
            for i in range(2):
                sim.process(one(i))
            yield sim.timeout(0.05)
            broker.crash()
            yield sim.timeout(1.0)  # well past detection
            broker.restart()
            yield sim.timeout(0.5)

        sim.process(driver())
        sim.run(until=3.0)
        # The supervisor already answered everything; the restart must
        # not answer the same requests a second time.
        assert journal.failed_fast == 2
        assert journal.replayed == 0
        assert len(replies) == 2

    def test_blip_restart_replays_before_detection(self, sim, net, backend):
        broker, client, supervisor, journal, watch = self.setup_supervised(
            sim, net, backend, interval=0.05, miss_factor=3.0
        )
        replies = []

        def one(i):
            reply = yield from client.call(
                "web", "get", ("/work", {"i": i}), cacheable=False
            )
            replies.append(reply)

        def driver():
            yield sim.timeout(0.5)
            for i in range(2):
                sim.process(one(i))
            yield sim.timeout(0.05)
            broker.crash()
            # Heal faster than interval * miss_factor = 0.15 s: the
            # supervisor never notices, restart() replays the journal.
            yield sim.timeout(0.05)
            broker.restart()

        sim.process(driver())
        sim.run(until=3.0)
        assert watch.detected == 0
        assert journal.failed_fast == 0
        assert journal.replayed == 2
        assert len(replies) == 2
        assert all(r.status is ReplyStatus.OK for r in replies)
