"""Tests for BrokerClient (timeouts, parallel calls) and the Prefetcher."""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerClient,
    HttpAdapter,
    Prefetcher,
    PrefetchRule,
    QoSPolicy,
    ReplyStatus,
    ResultCache,
    ServiceBroker,
)
from repro.errors import BrokerError, BrokerTimeout, UnknownServiceError
from repro.http import BackendWebServer
from repro.net import Address, Link, Network
from repro.sim import Simulation


@pytest.fixture
def web_stack(sim, net):
    """A slow-CGI backend behind a broker, plus a client."""
    node = net.node("webhost")
    server = BackendWebServer(sim, net.node("origin"), max_clients=4)
    state = {"hits": 0}

    def cgi(server, request):
        state["hits"] += 1
        yield server.sim.timeout(0.2)
        return f"result-{state['hits']}"

    server.add_cgi("/data", cgi)
    cache = ResultCache(capacity=16, ttl=0.5, clock=lambda: sim.now)
    broker = ServiceBroker(
        sim,
        node,
        service="web",
        adapters=[HttpAdapter(sim, node, server.address, name="origin")],
        qos=QoSPolicy(levels=1, threshold=1000),
        cache=cache,
    )
    client = BrokerClient(sim, node, {"web": broker.address})
    return broker, client, server, state


class TestBrokerClient:
    def test_unknown_service_raises(self, sim, web_stack):
        _broker, client, _server, _ = web_stack

        def run():
            yield from client.call("nowhere", "get", ("/x", {}))

        with pytest.raises(UnknownServiceError):
            sim.run(sim.process(run()))

    def test_timeout_raises_after_retries(self, sim, net):
        node = net.node("lonely")
        client = BrokerClient(
            sim, node, {"void": Address("lonely", 9999)}, retries=1
        )

        def run():
            yield from client.call("void", "get", ("/x", {}), timeout=0.5)

        with pytest.raises(BrokerTimeout):
            sim.run(sim.process(run()))
        assert client.metrics.counter("client.timeouts") == 2
        assert sim.now == pytest.approx(1.0)

    def test_retry_succeeds_over_lossy_link(self):
        sim = Simulation(seed=9)
        net = Network(sim, default_link=Link(latency=0.001, loss=0.45))
        node = net.node("webhost")
        origin_node = net.node("origin")
        net.connect(node, origin_node, Link.lan())  # broker->backend reliable
        server = BackendWebServer(sim, origin_node, max_clients=4)
        server.add_static("/x", "payload")
        broker = ServiceBroker(
            sim,
            node,
            service="web",
            adapters=[HttpAdapter(sim, node, server.address, name="origin")],
            qos=QoSPolicy(levels=1, threshold=1000),
        )
        # Client on a lossy host: UDP requests/replies can vanish.
        lossy_client_node = net.node("faraway")
        client = BrokerClient(
            sim,
            lossy_client_node,
            {"web": broker.address},
            default_timeout=0.5,
            retries=20,
        )
        replies = []

        def run():
            for _ in range(5):
                reply = yield from client.call("web", "get", ("/x", {}))
                replies.append(reply.status)

        sim.run(sim.process(run()))
        assert replies == [ReplyStatus.OK] * 5

    def test_call_parallel_overlaps_requests(self, sim, web_stack):
        _broker, client, _server, _ = web_stack

        def run():
            started = sim.now
            replies = yield from client.call_parallel(
                [
                    ("web", "get", ("/data", {"i": 1}), 1),
                    ("web", "get", ("/data", {"i": 2}), 1),
                    ("web", "get", ("/data", {"i": 3}), 1),
                ]
            )
            return replies, sim.now - started

        replies, elapsed = sim.run(sim.process(run()))
        assert len(replies) == 3
        assert all(r.status is ReplyStatus.OK for r in replies)
        # Three 0.2s CGI calls overlapped (the default pool holds 2
        # connections, so at most one waits): under the 0.6s serial time.
        assert elapsed < 0.5

    def test_reply_routing_by_request_id(self, sim, web_stack):
        _broker, client, _server, _ = web_stack
        results = {}

        def one(i):
            reply = yield from client.call(
                "web", "get", ("/data", {"i": i}), cacheable=False
            )
            results[i] = reply.request_id

        for i in range(5):
            sim.process(one(i))
        sim.run()
        assert len(set(results.values())) == 5


class TestPrefetcher:
    def test_prefetch_fills_cache_during_idle(self, sim, web_stack):
        broker, client, _server, state = web_stack
        Prefetcher(
            broker,
            [
                PrefetchRule(
                    operation="get",
                    payload=("/data", {}),
                    cache_key="web:get:('/data', {})",
                    period=0.3,
                )
            ],
        )
        replies = []

        def reader():
            # Let the prefetcher run a few cycles, then read.
            yield sim.timeout(1.0)
            reply = yield from client.call("web", "get", ("/data", {}))
            replies.append(reply)

        sim.process(reader())
        sim.run(until=1.5)
        assert replies[0].from_cache  # served without a backend trip
        assert broker.metrics.counter("prefetch.refreshes") >= 2

    def test_prefetch_defers_under_load(self, sim, web_stack):
        broker, client, _server, state = web_stack
        Prefetcher(
            broker,
            [
                PrefetchRule(
                    operation="get",
                    payload=("/data", {}),
                    cache_key="hot",
                    period=0.1,
                )
            ],
            idle_threshold=0,
        )

        def flood():
            # Keep the broker busy so prefetches are postponed or skipped.
            for i in range(40):
                sim.process(
                    client.call("web", "get", ("/data", {"i": i}), cacheable=False)
                )
                yield sim.timeout(0.05)

        sim.process(flood())
        sim.run(until=2.0)
        refreshes = broker.metrics.counter("prefetch.refreshes")
        skipped = broker.metrics.counter("prefetch.skipped_busy")
        assert skipped >= 1
        assert refreshes <= 6  # far fewer than the 20 periods elapsed

    def test_prefetcher_requires_cache(self, sim, net):
        node = net.node("webhost2")
        server = BackendWebServer(sim, net.node("origin2"), max_clients=1)
        broker = ServiceBroker(
            sim,
            node,
            service="web",
            adapters=[HttpAdapter(sim, node, server.address)],
            port=7105,
        )
        with pytest.raises(BrokerError):
            Prefetcher(broker, [])

    def test_rule_validation(self):
        with pytest.raises(BrokerError):
            PrefetchRule(operation="get", payload=(), cache_key="k", period=0)
