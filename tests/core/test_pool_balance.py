"""Tests for the connection pool and load balancers."""

from __future__ import annotations

from typing import List

import pytest

from repro.core import (
    BackendState,
    ConnectionPool,
    LatencyAwareBalancer,
    LeastOutstandingBalancer,
    RoundRobinBalancer,
)
from repro.core.adapters import ServiceAdapter
from repro.errors import BrokerError


class FakeConnection:
    def __init__(self, ident: int) -> None:
        self.ident = ident
        self.closed = False


class FakeAdapter(ServiceAdapter):
    """Adapter whose connect takes simulated time and counts calls."""

    def __init__(self, sim, connect_delay: float = 0.1) -> None:
        self.sim = sim
        self.name = "fake"
        self.connect_delay = connect_delay
        self.connects = 0

    def connect(self):
        yield self.sim.timeout(self.connect_delay)
        self.connects += 1
        return FakeConnection(self.connects)

    def execute(self, connection, operation, payload):
        yield self.sim.timeout(0.01)
        return payload

    def close(self, connection):
        connection.closed = True
        return
        yield  # pragma: no cover


class TestConnectionPool:
    def test_reuse_avoids_reconnect(self, sim):
        adapter = FakeAdapter(sim)
        pool = ConnectionPool(sim, adapter, max_size=2)

        def run():
            conn1 = yield from pool.acquire()
            pool.release(conn1)
            conn2 = yield from pool.acquire()
            pool.release(conn2)
            return conn1 is conn2

        assert sim.run(sim.process(run()))
        assert adapter.connects == 1
        assert pool.metrics.counter("pool.reused") == 1

    def test_max_size_enforced(self, sim):
        adapter = FakeAdapter(sim)
        pool = ConnectionPool(sim, adapter, max_size=2)
        held: List[FakeConnection] = []

        def holder():
            conn = yield from pool.acquire()
            held.append(conn)
            yield sim.timeout(1.0)
            pool.release(conn)

        def late():
            yield sim.timeout(0.5)
            started = sim.now
            conn = yield from pool.acquire()
            pool.release(conn)
            return sim.now - started

        for _ in range(2):
            sim.process(holder())
        waited = sim.run(sim.process(late()))
        assert adapter.connects == 2
        assert pool.size == 2
        assert waited > 0.4  # had to wait for a release

    def test_broken_idle_connection_replaced(self, sim):
        adapter = FakeAdapter(sim)
        pool = ConnectionPool(sim, adapter, max_size=1)

        def run():
            conn = yield from pool.acquire()
            pool.release(conn)
            conn.closed = True  # breaks while idle
            fresh = yield from pool.acquire()
            return fresh is not conn

        assert sim.run(sim.process(run()))
        assert adapter.connects == 2

    def test_discard_frees_capacity_for_waiter(self, sim):
        adapter = FakeAdapter(sim)
        pool = ConnectionPool(sim, adapter, max_size=1)
        outcomes = []

        def breaker():
            conn = yield from pool.acquire()
            yield sim.timeout(0.5)
            pool.release(conn, discard=True)

        def waiter():
            yield sim.timeout(0.1)
            conn = yield from pool.acquire()
            outcomes.append(conn.ident)
            pool.release(conn)

        sim.process(breaker())
        sim.process(waiter())
        sim.run()
        assert outcomes == [2]  # a fresh connection was created
        assert pool.size == 1

    def test_validation(self, sim):
        with pytest.raises(BrokerError):
            ConnectionPool(sim, FakeAdapter(sim), max_size=0)

    def test_drain_closes_idle(self, sim):
        adapter = FakeAdapter(sim)
        pool = ConnectionPool(sim, adapter, max_size=2)

        def run():
            a = yield from pool.acquire()
            b = yield from pool.acquire()
            pool.release(a)
            pool.release(b)
            yield from pool.drain()
            return a.closed and b.closed

        assert sim.run(sim.process(run()))
        assert pool.size == 0


def make_backends(sim, count: int) -> List[BackendState]:
    backends = []
    for i in range(count):
        adapter = FakeAdapter(sim)
        adapter.name = f"b{i}"
        backends.append(BackendState(adapter, ConnectionPool(sim, adapter)))
    return backends


class TestBalancers:
    def test_round_robin_cycles(self, sim):
        backends = make_backends(sim, 3)
        balancer = RoundRobinBalancer()
        picks = [balancer.pick(backends).name for _ in range(6)]
        assert picks == ["b0", "b1", "b2", "b0", "b1", "b2"]

    def test_least_outstanding_picks_idle(self, sim):
        backends = make_backends(sim, 3)
        backends[0].note_dispatch()
        backends[0].note_dispatch()
        backends[1].note_dispatch()
        assert LeastOutstandingBalancer().pick(backends).name == "b2"

    def test_latency_aware_probes_then_prefers_fast(self, sim):
        backends = make_backends(sim, 2)
        balancer = LatencyAwareBalancer()
        # Unprobed backends are tried first.
        assert balancer.pick(backends).name == "b0"
        backends[0].note_completion(1.0)
        assert balancer.pick(backends).name == "b1"
        backends[1].note_completion(0.1)
        # Now both probed: the faster one wins.
        assert balancer.pick(backends).name == "b1"

    def test_latency_aware_accounts_outstanding(self, sim):
        backends = make_backends(sim, 2)
        backends[0].note_completion(0.1)
        backends[1].note_completion(0.1)
        for _ in range(5):
            backends[1].note_dispatch()
        assert LatencyAwareBalancer().pick(backends).name == "b0"

    def test_empty_backends_raise(self, sim):
        with pytest.raises(BrokerError):
            RoundRobinBalancer().pick([])

    def test_ewma_updates(self, sim):
        backend = make_backends(sim, 1)[0]
        backend.note_completion(1.0)
        assert backend.ewma_latency == pytest.approx(1.0)
        backend.note_completion(0.0)
        assert backend.ewma_latency == pytest.approx(0.8)

    def test_error_completion_does_not_update_latency(self, sim):
        backend = make_backends(sim, 1)[0]
        backend.note_completion(1.0)
        backend.note_dispatch()
        backend.note_completion(99.0, error=True)
        assert backend.ewma_latency == pytest.approx(1.0)
        assert backend.errors == 1


class TestCircuitBreaking:
    def test_unhealthy_replica_skipped(self, sim):
        backends = make_backends(sim, 2)
        for _ in range(3):
            backends[0].note_dispatch()
            backends[0].note_completion(0.0, error=True)
        assert not backends[0].healthy
        balancer = RoundRobinBalancer()
        picks = {balancer.pick(backends).name for _ in range(4)}
        assert picks == {"b1"}

    def test_success_resets_streak(self, sim):
        backend = make_backends(sim, 1)[0]
        for _ in range(2):
            backend.note_dispatch()
            backend.note_completion(0.0, error=True)
        backend.note_dispatch()
        backend.note_completion(0.1)
        assert backend.healthy
        assert backend.consecutive_errors == 0

    def test_all_unhealthy_falls_back_to_probing(self, sim):
        backends = make_backends(sim, 2)
        for backend in backends:
            for _ in range(3):
                backend.note_dispatch()
                backend.note_completion(0.0, error=True)
        # No healthy replica: the balancer still picks one (a probe).
        picked = LeastOutstandingBalancer().pick(backends)
        assert picked in backends

    def test_latency_aware_skips_unhealthy(self, sim):
        backends = make_backends(sim, 2)
        backends[0].note_completion(0.01)  # fast but...
        for _ in range(3):
            backends[0].note_dispatch()
            backends[0].note_completion(0.0, error=True)  # ...now broken
        backends[1].note_completion(1.0)  # slow but healthy
        assert LatencyAwareBalancer().pick(backends).name == "b1"
