"""Unit and property tests for the broker queue."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BrokerQueue, BrokerRequest
from repro.net import Address
from repro.sim import Simulation

REPLY_TO = Address("web", 50000)


def make_request(request_id: int, qos: int, txn_step: int = 0) -> BrokerRequest:
    return BrokerRequest(
        request_id=request_id,
        service="svc",
        operation="get",
        payload=request_id,
        reply_to=REPLY_TO,
        qos_level=qos,
        txn_step=txn_step,
    )


class TestBrokerQueue:
    def test_priority_order_then_fcfs(self, sim):
        queue = BrokerQueue(sim)
        queue.put(make_request(1, qos=3))
        queue.put(make_request(2, qos=1))
        queue.put(make_request(3, qos=1))
        queue.put(make_request(4, qos=2))
        order = [item.request.request_id for item in queue.snapshot()]
        assert order == [2, 3, 4, 1]

    def test_get_blocks_until_put(self, sim):
        queue = BrokerQueue(sim)
        got = []

        def consumer():
            item = yield queue.get()
            got.append((sim.now, item.request.request_id))

        def producer():
            yield sim.timeout(3)
            queue.put(make_request(7, qos=1))

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(3.0, 7)]

    def test_len_excludes_claimed(self, sim):
        queue = BrokerQueue(sim)
        queue.put(make_request(1, qos=1))
        queue.put(make_request(2, qos=1))
        assert len(queue) == 2
        taken = queue.take_matching(lambda item: True, limit=1)
        assert len(taken) == 1
        assert len(queue) == 1

    def test_take_matching_respects_predicate_and_limit(self, sim):
        queue = BrokerQueue(sim)
        for i in range(6):
            queue.put(make_request(i, qos=1 + i % 2))
        even = queue.take_matching(
            lambda item: item.request.payload % 2 == 0, limit=2
        )
        assert [item.request.payload for item in even] == [0, 2]
        remaining = [item.request.payload for item in queue.snapshot()]
        assert 0 not in remaining and 2 not in remaining

    def test_cancelled_get_skipped(self, sim):
        queue = BrokerQueue(sim)
        first = queue.get()
        second = queue.get()
        queue.cancel(first)
        queue.put(make_request(1, qos=1))
        sim.run()
        assert not first.triggered
        assert second.processed
        assert second.value.request.request_id == 1

    def test_reprioritize_resorts(self, sim):
        boost = {"on": False}

        def priority(request: BrokerRequest) -> int:
            if boost["on"] and request.txn_step >= 2:
                return 1
            return request.qos_level

        queue = BrokerQueue(sim, priority_of=priority)
        queue.put(make_request(1, qos=3, txn_step=2))
        queue.put(make_request(2, qos=2))
        assert [i.request.request_id for i in queue.snapshot()] == [2, 1]
        boost["on"] = True
        queue.reprioritize()
        assert [i.request.request_id for i in queue.snapshot()] == [1, 2]

    def test_dispatch_to_multiple_getters_in_order(self, sim):
        queue = BrokerQueue(sim)
        served = []

        def consumer(tag):
            item = yield queue.get()
            served.append((tag, item.request.request_id))

        sim.process(consumer("c1"))
        sim.process(consumer("c2"))
        queue.put(make_request(1, qos=1))
        queue.put(make_request(2, qos=1))
        sim.run()
        assert served == [("c1", 1), ("c2", 2)]


class TestBoundedQueue:
    def shed_log(self):
        log = []

        def on_shed(item, policy):
            log.append((item.request.request_id, policy))

        return log, on_shed

    def test_configure_rejects_bad_capacity_and_policy(self, sim):
        queue = BrokerQueue(sim)
        with pytest.raises(ValueError):
            queue.configure(0)
        with pytest.raises(ValueError):
            queue.configure(4, shed_policy="drop-random")

    def test_exact_capacity_admits_boundary_arrival(self, sim):
        queue = BrokerQueue(sim, capacity=3)
        for i in range(3):
            assert queue.put(make_request(i, qos=1)) is not None
        assert len(queue) == 3
        assert queue.peak_depth == 3
        assert queue.shed_count == 0

    def test_capacity_one_reject_new(self, sim):
        queue = BrokerQueue(sim, capacity=1, shed_policy="reject-new")
        assert queue.put(make_request(1, qos=3)) is not None
        assert queue.put(make_request(2, qos=1)) is None
        assert [i.request.request_id for i in queue.snapshot()] == [1]
        assert queue.shed_count == 1

    def test_capacity_one_drop_oldest_evicts_sole_occupant(self, sim):
        log, on_shed = self.shed_log()
        queue = BrokerQueue(
            sim, capacity=1, shed_policy="drop-oldest", on_shed=on_shed
        )
        queue.put(make_request(1, qos=1))
        assert queue.put(make_request(2, qos=3)) is not None
        assert log == [(1, "drop-oldest")]
        assert [i.request.request_id for i in queue.snapshot()] == [2]
        assert len(queue) == 1

    def test_drop_oldest_evicts_by_arrival_not_priority(self, sim):
        log, on_shed = self.shed_log()
        queue = BrokerQueue(
            sim, capacity=2, shed_policy="drop-oldest", on_shed=on_shed
        )
        queue.put(make_request(1, qos=1))
        queue.put(make_request(2, qos=3))
        queue.put(make_request(3, qos=2))
        # The premium request arrived first, so it is the victim.
        assert log == [(1, "drop-oldest")]
        assert [i.request.request_id for i in queue.snapshot()] == [3, 2]

    def test_drop_lowest_evicts_strictly_worse_only(self, sim):
        log, on_shed = self.shed_log()
        queue = BrokerQueue(
            sim, capacity=2, shed_policy="drop-lowest", on_shed=on_shed
        )
        queue.put(make_request(1, qos=2))
        queue.put(make_request(2, qos=3))
        # A premium arrival evicts the worst queued request.
        assert queue.put(make_request(3, qos=1)) is not None
        assert log == [(2, "drop-lowest")]
        # An equal-class arrival is rejected (FCFS within a class).
        assert queue.put(make_request(4, qos=2)) is None
        # A worse-than-everything arrival is rejected too.
        assert queue.put(make_request(5, qos=3)) is None
        assert [i.request.request_id for i in queue.snapshot()] == [3, 1]
        assert queue.shed_count == 3

    def test_drop_lowest_victim_is_youngest_of_worst_class(self, sim):
        log, on_shed = self.shed_log()
        queue = BrokerQueue(
            sim, capacity=3, shed_policy="drop-lowest", on_shed=on_shed
        )
        queue.put(make_request(1, qos=3))
        queue.put(make_request(2, qos=3))
        queue.put(make_request(3, qos=2))
        queue.put(make_request(4, qos=1))
        assert log == [(2, "drop-lowest")]

    def test_claimed_items_do_not_count_toward_capacity(self, sim):
        queue = BrokerQueue(sim, capacity=2, shed_policy="reject-new")
        queue.put(make_request(1, qos=1))
        queue.put(make_request(2, qos=1))
        taken = queue.take_matching(lambda item: True, limit=1)
        assert [i.request.request_id for i in taken] == [1]
        # The claimed tombstone freed a slot.
        assert queue.put(make_request(3, qos=1)) is not None
        assert queue.put(make_request(4, qos=1)) is None

    def test_take_matching_skips_shed_victims(self, sim):
        queue = BrokerQueue(sim, capacity=2, shed_policy="drop-oldest")
        queue.put(make_request(1, qos=1))
        queue.put(make_request(2, qos=1))
        queue.put(make_request(3, qos=1))  # evicts request 1
        taken = queue.take_matching(lambda item: True, limit=10)
        assert [i.request.request_id for i in taken] == [2, 3]

    def test_cancelled_getter_with_full_queue(self, sim):
        queue = BrokerQueue(sim, capacity=1, shed_policy="reject-new")
        pending = queue.get()
        queue.cancel(pending)
        # The cancelled getter must not consume the arrival...
        assert queue.put(make_request(1, qos=1)) is not None
        assert not pending.triggered
        # ...and the queue is genuinely full afterwards.
        assert queue.put(make_request(2, qos=1)) is None

    def test_waiting_getter_bypasses_bound(self, sim):
        queue = BrokerQueue(sim, capacity=1, shed_policy="reject-new")
        queue.put(make_request(1, qos=1))
        served = []

        def consumer():
            item = yield queue.get()
            served.append(item.request.request_id)

        sim.process(consumer())
        sim.run()
        # The consumer drained the queue; a new arrival is admitted.
        assert served == [1]
        assert queue.put(make_request(2, qos=1)) is not None

    def test_reset_preserves_bound_and_statistics(self, sim):
        queue = BrokerQueue(sim, capacity=2, shed_policy="reject-new")
        queue.put(make_request(1, qos=1))
        queue.put(make_request(2, qos=1))
        assert queue.put(make_request(3, qos=1)) is None
        orphans = queue.reset()
        assert [i.request.request_id for i in orphans] == [1, 2]
        assert all(item.claimed for item in orphans)
        assert len(queue) == 0
        assert queue.capacity == 2
        assert queue.shed_count == 1
        assert queue.peak_depth == 2
        # Still bounded after the crash.
        queue.put(make_request(4, qos=1))
        queue.put(make_request(5, qos=1))
        assert queue.put(make_request(6, qos=1)) is None


class TestQueueProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=3), st.integers()),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_no_request_lost_or_duplicated(self, arrivals):
        sim = Simulation()
        queue = BrokerQueue(sim)
        for index, (qos, _) in enumerate(arrivals):
            queue.put(make_request(index, qos=qos))
        drained = []
        while len(queue):
            drained.extend(queue.take_matching(lambda item: True, limit=1))
        ids = [item.request.request_id for item in drained]
        assert sorted(ids) == list(range(len(arrivals)))

    @given(
        st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=60)
    )
    @settings(max_examples=60)
    def test_service_order_is_priority_then_arrival(self, levels):
        sim = Simulation()
        queue = BrokerQueue(sim)
        for index, qos in enumerate(levels):
            queue.put(make_request(index, qos=qos))
        order = [item.request for item in queue.snapshot()]
        keys = [(r.qos_level, r.request_id) for r in order]
        assert keys == sorted(keys)
