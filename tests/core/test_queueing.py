"""Unit and property tests for the broker queue."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BrokerQueue, BrokerRequest
from repro.net import Address
from repro.sim import Simulation

REPLY_TO = Address("web", 50000)


def make_request(request_id: int, qos: int, txn_step: int = 0) -> BrokerRequest:
    return BrokerRequest(
        request_id=request_id,
        service="svc",
        operation="get",
        payload=request_id,
        reply_to=REPLY_TO,
        qos_level=qos,
        txn_step=txn_step,
    )


class TestBrokerQueue:
    def test_priority_order_then_fcfs(self, sim):
        queue = BrokerQueue(sim)
        queue.put(make_request(1, qos=3))
        queue.put(make_request(2, qos=1))
        queue.put(make_request(3, qos=1))
        queue.put(make_request(4, qos=2))
        order = [item.request.request_id for item in queue.snapshot()]
        assert order == [2, 3, 4, 1]

    def test_get_blocks_until_put(self, sim):
        queue = BrokerQueue(sim)
        got = []

        def consumer():
            item = yield queue.get()
            got.append((sim.now, item.request.request_id))

        def producer():
            yield sim.timeout(3)
            queue.put(make_request(7, qos=1))

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(3.0, 7)]

    def test_len_excludes_claimed(self, sim):
        queue = BrokerQueue(sim)
        queue.put(make_request(1, qos=1))
        queue.put(make_request(2, qos=1))
        assert len(queue) == 2
        taken = queue.take_matching(lambda item: True, limit=1)
        assert len(taken) == 1
        assert len(queue) == 1

    def test_take_matching_respects_predicate_and_limit(self, sim):
        queue = BrokerQueue(sim)
        for i in range(6):
            queue.put(make_request(i, qos=1 + i % 2))
        even = queue.take_matching(
            lambda item: item.request.payload % 2 == 0, limit=2
        )
        assert [item.request.payload for item in even] == [0, 2]
        remaining = [item.request.payload for item in queue.snapshot()]
        assert 0 not in remaining and 2 not in remaining

    def test_cancelled_get_skipped(self, sim):
        queue = BrokerQueue(sim)
        first = queue.get()
        second = queue.get()
        queue.cancel(first)
        queue.put(make_request(1, qos=1))
        sim.run()
        assert not first.triggered
        assert second.processed
        assert second.value.request.request_id == 1

    def test_reprioritize_resorts(self, sim):
        boost = {"on": False}

        def priority(request: BrokerRequest) -> int:
            if boost["on"] and request.txn_step >= 2:
                return 1
            return request.qos_level

        queue = BrokerQueue(sim, priority_of=priority)
        queue.put(make_request(1, qos=3, txn_step=2))
        queue.put(make_request(2, qos=2))
        assert [i.request.request_id for i in queue.snapshot()] == [2, 1]
        boost["on"] = True
        queue.reprioritize()
        assert [i.request.request_id for i in queue.snapshot()] == [1, 2]

    def test_dispatch_to_multiple_getters_in_order(self, sim):
        queue = BrokerQueue(sim)
        served = []

        def consumer(tag):
            item = yield queue.get()
            served.append((tag, item.request.request_id))

        sim.process(consumer("c1"))
        sim.process(consumer("c2"))
        queue.put(make_request(1, qos=1))
        queue.put(make_request(2, qos=1))
        sim.run()
        assert served == [("c1", 1), ("c2", 2)]


class TestQueueProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=3), st.integers()),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_no_request_lost_or_duplicated(self, arrivals):
        sim = Simulation()
        queue = BrokerQueue(sim)
        for index, (qos, _) in enumerate(arrivals):
            queue.put(make_request(index, qos=qos))
        drained = []
        while len(queue):
            drained.extend(queue.take_matching(lambda item: True, limit=1))
        ids = [item.request.request_id for item in drained]
        assert sorted(ids) == list(range(len(arrivals)))

    @given(
        st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=60)
    )
    @settings(max_examples=60)
    def test_service_order_is_priority_then_arrival(self, levels):
        sim = Simulation()
        queue = BrokerQueue(sim)
        for index, qos in enumerate(levels):
            queue.put(make_request(index, qos=qos))
        order = [item.request for item in queue.snapshot()]
        keys = [(r.qos_level, r.request_id) for r in order]
        assert keys == sorted(keys)
