"""Tests for broker-to-broker transaction-state gossip."""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerClient,
    BrokerPeerGroup,
    HttpAdapter,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
    TransactionTracker,
)
from repro.errors import BrokerError
from repro.http import BackendWebServer


def make_vendor_broker(sim, net, web_node, index: int, threshold: int = 6):
    server = BackendWebServer(sim, net.node(f"vendor{index}"), max_clients=3)

    def quote_cgi(server, request):
        yield server.sim.timeout(0.1)
        return f"quote-{index}"

    server.add_cgi("/quote", quote_cgi)
    broker = ServiceBroker(
        sim,
        web_node,
        service=f"vendor{index}",
        port=7300 + index,
        adapters=[HttpAdapter(sim, web_node, server.address)],
        qos=QoSPolicy(levels=3, threshold=threshold),
        transactions=TransactionTracker(escalation_per_step=1, protect_from_step=3),
        pool_size=3,
    )
    return broker, server


@pytest.fixture
def two_vendors(sim, net):
    web_node = net.node("agency")
    broker_a, server_a = make_vendor_broker(sim, net, web_node, 1)
    broker_b, server_b = make_vendor_broker(sim, net, web_node, 2)
    group = BrokerPeerGroup()
    group.join(broker_a)
    group.join(broker_b)
    client = BrokerClient(
        sim, web_node, {"vendor1": broker_a.address, "vendor2": broker_b.address}
    )
    return broker_a, broker_b, client


class TestPeerGroup:
    def test_join_requires_transactions(self, sim, net):
        web_node = net.node("agency")
        server = BackendWebServer(sim, net.node("v"), max_clients=1)
        plain = ServiceBroker(
            sim,
            web_node,
            service="plain",
            adapters=[HttpAdapter(sim, web_node, server.address)],
        )
        with pytest.raises(BrokerError):
            BrokerPeerGroup().join(plain)

    def test_double_join_rejected(self, sim, two_vendors):
        broker_a, _broker_b, _client = two_vendors
        with pytest.raises(BrokerError):
            broker_a.peer_group.join(broker_a)

    def test_step_advance_propagates(self, sim, two_vendors):
        broker_a, broker_b, client = two_vendors

        def run():
            yield from client.call(
                "vendor1", "get", ("/quote", {}),
                txn_id="T1", txn_step=2, cacheable=False,
            )
            yield sim.timeout(0.01)  # gossip delivery

        sim.run(sim.process(run()))
        assert broker_b.transactions.step_of("T1") == 2
        assert broker_a.metrics.counter("peering.updates_sent") == 1
        assert broker_b.metrics.counter("peering.updates_received") == 1

    def test_repeat_step_not_regossiped(self, sim, two_vendors):
        broker_a, _broker_b, client = two_vendors

        def run():
            for _ in range(3):
                yield from client.call(
                    "vendor1", "get", ("/quote", {}),
                    txn_id="T1", txn_step=2, cacheable=False,
                )

        sim.run(sim.process(run()))
        assert broker_a.metrics.counter("peering.updates_sent") == 1

    def test_untagged_access_protected_via_peer_knowledge(self, sim, two_vendors):
        """The paper's cross-backend case: a transaction that invested
        step 3 at vendor 1 is protected at vendor 2 even though the
        request to vendor 2 carries no step tag."""
        broker_a, broker_b, client = two_vendors
        results = {}

        def run():
            # Advance T1 to step 3 at vendor1; gossip reaches vendor2.
            yield from client.call(
                "vendor1", "get", ("/quote", {}),
                txn_id="T1", txn_step=3, cacheable=False,
            )
            yield sim.timeout(0.01)
            # Saturate vendor2 so plain level-3 requests are shed.
            for i in range(8):
                sim.process(
                    client.call(
                        "vendor2", "get", ("/quote", {"i": i}),
                        qos_level=2, cacheable=False,
                    )
                )
            yield sim.timeout(0.001)
            # Probe both at the same instant, while vendor2 is saturated.
            known_probe = sim.process(
                client.call(
                    "vendor2", "get", ("/quote", {}),
                    qos_level=3, txn_id="T1", txn_step=0, cacheable=False,
                )
            )
            unknown_probe = sim.process(
                client.call(
                    "vendor2", "get", ("/quote", {}),
                    qos_level=3, txn_id="T-other", txn_step=0, cacheable=False,
                )
            )
            yield sim.all_of([known_probe, unknown_probe])
            results["known"] = known_probe.value.status
            results["unknown"] = unknown_probe.value.status

        sim.run(sim.process(run()))
        assert results["known"] is ReplyStatus.OK
        assert results["unknown"] is ReplyStatus.DROPPED

    def test_gossip_ignored_without_tracker(self, sim, net):
        """A TxnStateUpdate arriving at a tracker-less broker is dropped."""
        web_node = net.node("agency")
        server = BackendWebServer(sim, net.node("v"), max_clients=1)
        plain = ServiceBroker(
            sim,
            web_node,
            service="plain",
            adapters=[HttpAdapter(sim, web_node, server.address)],
        )
        from repro.core import TxnStateUpdate

        sender = net.node("peer").datagram_socket()
        sender.sendto(TxnStateUpdate("T1", 3, "other", 0.0), plain.address)
        sim.run()
        assert plain.metrics.counter("peering.updates_received") == 0
        assert plain.metrics.counter("broker.malformed") == 0
