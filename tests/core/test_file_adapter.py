"""FileAdapter and FileBatchCombiner exercised through a broker."""

from __future__ import annotations

import pytest

from repro.core import (
    BrokerClient,
    ClusteringConfig,
    FileAdapter,
    FileBatchCombiner,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
)
from repro.fileserver import FileServer, FileSystem


@pytest.fixture
def file_stack(sim, net):
    fs = FileSystem(total_blocks=50_000)
    rng = sim.rng("layout")
    for i in range(20):
        fs.create(f"doc{i}", 8, fragmented=True, extent_size=8, rng=rng)
    server = FileServer(sim, net.node("nfs"), filesystem=fs, scheduler="elevator")
    node = net.node("web")
    broker = ServiceBroker(
        sim,
        node,
        service="files",
        adapters=[FileAdapter(sim, node, server.address)],
        qos=QoSPolicy(levels=1, threshold=1000),
        clustering=ClusteringConfig(
            combiner=FileBatchCombiner(), max_batch=10, window=0.005
        ),
        dispatchers=1,
        pool_size=1,
    )
    client = BrokerClient(sim, node, {"files": broker.address})
    return server, broker, client


class TestFileAdapter:
    def test_read_through_broker(self, sim, file_stack):
        server, _broker, client = file_stack

        def run():
            reply = yield from client.call("files", "read", "doc3", cacheable=False)
            return reply

        reply = sim.run(sim.process(run()))
        assert reply.status is ReplyStatus.OK
        assert reply.payload["name"] == "doc3"

    def test_stat_through_broker(self, sim, file_stack):
        _server, _broker, client = file_stack

        def run():
            reply = yield from client.call("files", "stat", "doc0", cacheable=False)
            return reply

        assert sim.run(sim.process(run())).payload == 8

    def test_missing_file_is_error_reply(self, sim, file_stack):
        _server, broker, client = file_stack

        def run():
            reply = yield from client.call("files", "read", "ghost", cacheable=False)
            return reply

        reply = sim.run(sim.process(run()))
        assert reply.status is ReplyStatus.ERROR
        assert broker.outstanding == 0

    def test_concurrent_reads_batched_and_routed(self, sim, file_stack):
        server, broker, client = file_stack
        results = {}

        def one(name):
            reply = yield from client.call("files", "read", name, cacheable=False)
            results[name] = reply

        names = [f"doc{i}" for i in range(8)]
        for name in names:
            sim.process(one(name))
        sim.run()
        assert all(results[n].status is ReplyStatus.OK for n in names)
        assert all(results[n].payload["name"] == n for n in names)
        # The burst collapsed into at least one read_batch exchange.
        assert server.metrics.counter("file.batches") >= 1
        assert broker.metrics.counter("broker.clustered_batches") >= 1


class TestFileBatchCombinerUnit:
    def test_key_only_for_read(self):
        from repro.core import BrokerRequest
        from repro.net import Address

        combiner = FileBatchCombiner()
        read = BrokerRequest(1, "files", "read", "a", Address("w", 1))
        stat = BrokerRequest(2, "files", "stat", "a", Address("w", 1))
        assert combiner.key(read) is not None
        assert combiner.key(stat) is None

    def test_split_validates_shape(self):
        from repro.core import BrokerRequest
        from repro.errors import BrokerError
        from repro.net import Address

        combiner = FileBatchCombiner()
        batch = [
            BrokerRequest(i, "files", "read", f"f{i}", Address("w", 1))
            for i in range(2)
        ]
        with pytest.raises(BrokerError):
            combiner.split(batch, "not-a-list")
        with pytest.raises(BrokerError):
            combiner.split(batch, [{"name": "f0"}])  # wrong length
        ok = combiner.split(batch, [{"name": "f0"}, {"name": "f1"}])
        assert [r["name"] for r in ok] == ["f0", "f1"]
