"""The simulator reproduces closed-form queueing theory.

These tests are the quantitative calibration of the whole substrate:
M/M/1, M/M/c, and closed-loop MVA systems built from the kernel's
primitives must match theory within a few percent.
"""

from __future__ import annotations

import pytest

from repro.analysis import erlang_c, mm1_metrics, mmc_metrics, mva_single_station
from repro.metrics import SummaryStats
from repro.sim import Resource, Simulation


def simulate_open_queue(arrival_rate, service_rate, servers, horizon=4000.0, seed=6):
    """Poisson arrivals into a c-server exponential station."""
    sim = Simulation(seed=seed)
    station = Resource(sim, capacity=servers)
    responses = SummaryStats()
    arrival_rng = sim.rng("arrivals")
    service_rng = sim.rng("services")

    def job():
        started = sim.now
        grant = station.request()
        yield grant
        yield sim.timeout(service_rng.expovariate(service_rate))
        station.release(grant)
        responses.add(sim.now - started)

    def source():
        while sim.now < horizon:
            yield sim.timeout(arrival_rng.expovariate(arrival_rate))
            if sim.now >= horizon:
                return
            sim.process(job())

    sim.process(source())
    sim.run()
    return responses


class TestFormulas:
    def test_mm1_known_values(self):
        metrics = mm1_metrics(arrival_rate=8.0, service_rate=10.0)
        assert metrics.utilization == pytest.approx(0.8)
        assert metrics.mean_response == pytest.approx(0.5)
        assert metrics.mean_jobs == pytest.approx(4.0)

    def test_mm1_rejects_unstable(self):
        with pytest.raises(ValueError):
            mm1_metrics(10.0, 10.0)
        with pytest.raises(ValueError):
            mm1_metrics(-1.0, 10.0)

    def test_mmc_reduces_to_mm1(self):
        a = mm1_metrics(5.0, 10.0)
        b = mmc_metrics(5.0, 10.0, servers=1)
        assert b.mean_response == pytest.approx(a.mean_response)
        assert b.mean_wait == pytest.approx(a.mean_wait)

    def test_erlang_c_known_value(self):
        # Classic check: 2 servers, offered load 1 Erlang -> P(wait)=1/3.
        assert erlang_c(10.0, 10.0, 2) == pytest.approx(1.0 / 3.0)

    def test_more_servers_less_waiting(self):
        waits = [mmc_metrics(9.0, 10.0, c).mean_wait for c in (1, 2, 4)]
        assert waits[0] > waits[1] > waits[2]

    def test_mva_asymptotes(self):
        # Light load: response ~ service demand; heavy load: X -> 1/D.
        light = mva_single_station(1, service_demand=0.1, think_time=10.0)
        assert light.mean_response == pytest.approx(0.1)
        heavy = mva_single_station(200, service_demand=0.1, think_time=1.0)
        assert heavy.throughput == pytest.approx(10.0, rel=0.01)

    def test_mva_validation_errors(self):
        with pytest.raises(ValueError):
            mva_single_station(0, 0.1, 1.0)
        with pytest.raises(ValueError):
            mva_single_station(5, -0.1, 1.0)


class TestSimulatorMatchesTheory:
    @pytest.mark.parametrize("utilization", [0.5, 0.8])
    def test_mm1_response_time(self, utilization):
        service_rate = 10.0
        arrival_rate = utilization * service_rate
        theory = mm1_metrics(arrival_rate, service_rate)
        measured = simulate_open_queue(arrival_rate, service_rate, servers=1)
        assert measured.count > 10_000
        assert measured.mean == pytest.approx(theory.mean_response, rel=0.08)

    def test_mmc_response_time(self):
        theory = mmc_metrics(arrival_rate=25.0, service_rate=10.0, servers=3)
        measured = simulate_open_queue(25.0, 10.0, servers=3)
        assert measured.mean == pytest.approx(theory.mean_response, rel=0.08)

    def test_closed_loop_matches_mva(self):
        sim = Simulation(seed=9)
        station = Resource(sim, capacity=1)
        service_rng = sim.rng("service")
        think_rng = sim.rng("think")
        completed = [0]
        responses = SummaryStats()
        demand, think, n_clients, horizon = 0.05, 0.5, 12, 2000.0

        def client():
            while sim.now < horizon:
                yield sim.timeout(think_rng.expovariate(1.0 / think))
                started = sim.now
                grant = station.request()
                yield grant
                yield sim.timeout(service_rng.expovariate(1.0 / demand))
                station.release(grant)
                responses.add(sim.now - started)
                completed[0] += 1

        for _ in range(n_clients):
            sim.process(client())
        sim.run(until=horizon + 50)
        theory = mva_single_station(n_clients, demand, think)
        measured_throughput = completed[0] / horizon
        assert measured_throughput == pytest.approx(theory.throughput, rel=0.05)
        assert responses.mean == pytest.approx(theory.mean_response, rel=0.10)
