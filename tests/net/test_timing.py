"""Timing semantics of the network model: bandwidth, jitter, sizes."""

from __future__ import annotations

import pytest

from repro.net import Address, Envelope, Link, Network
from repro.net.message import HEADER_BYTES
from repro.sim import Simulation


class TestBandwidthTiming:
    def test_transfer_time_includes_serialization(self):
        sim = Simulation(seed=1)
        # 1000 bytes/s, zero latency: a 1000-byte payload takes ~1s.
        net = Network(sim, default_link=Link(latency=0.0, bandwidth=1000.0))
        a, b = net.node("a"), net.node("b")
        sock_b = b.datagram_socket(9)
        sock_a = a.datagram_socket()
        arrival = {}

        def receiver():
            envelope = yield sock_b.recv()
            arrival["t"] = sim.now
            arrival["size"] = envelope.size

        sim.process(receiver())
        payload = "x" * (1000 - HEADER_BYTES)
        sock_a.sendto(payload, Address("b", 9))
        sim.run()
        assert arrival["size"] == 1000
        assert arrival["t"] == pytest.approx(1.0)

    def test_explicit_size_overrides_estimate(self):
        sim = Simulation(seed=1)
        net = Network(sim, default_link=Link(latency=0.0, bandwidth=1000.0))
        a, b = net.node("a"), net.node("b")
        sock_b = b.datagram_socket(9)
        sock_a = a.datagram_socket()
        arrival = {}

        def receiver():
            yield sock_b.recv()
            arrival["t"] = sim.now

        sim.process(receiver())
        sock_a.sendto("tiny", Address("b", 9), size=5000 - HEADER_BYTES)
        sim.run()
        assert arrival["t"] == pytest.approx(5.0)

    def test_larger_messages_take_longer_on_stream(self):
        sim = Simulation(seed=1)
        net = Network(sim, default_link=Link(latency=0.001, bandwidth=10_000.0))
        a, b = net.node("a"), net.node("b")
        listener = b.listen_stream(80)
        arrivals = []

        def server():
            conn = yield listener.accept()
            for _ in range(2):
                yield conn.recv()
                arrivals.append(sim.now)

        def client():
            conn = yield from a.connect_stream(Address("b", 80))
            base = sim.now
            conn.send("small", size=100)
            conn.send("big", size=10_000)
            arrivals.append(base)

        sim.process(server())
        sim.process(client())
        sim.run()
        base, first, second = arrivals[2], arrivals[0], arrivals[1]
        gap_small = first - base
        gap_big = second - first
        assert gap_big > 5 * gap_small


class TestEnvelope:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Envelope(
                payload="x",
                source=Address("a", 1),
                destination=Address("b", 2),
                size=-1,
                sent_at=0.0,
            )

    def test_envelope_records_source_and_time(self):
        sim = Simulation(seed=2)
        net = Network(sim, default_link=Link.lan())
        a, b = net.node("a"), net.node("b")
        sock_b = b.datagram_socket(9)
        sock_a = a.datagram_socket()
        seen = {}

        def receiver():
            envelope = yield sock_b.recv()
            seen["env"] = envelope

        sim.process(receiver())

        def sender():
            yield sim.timeout(3.0)
            sock_a.sendto("hello", Address("b", 9))

        sim.process(sender())
        sim.run()
        envelope = seen["env"]
        assert envelope.source == sock_a.address
        assert envelope.destination == Address("b", 9)
        assert envelope.sent_at == pytest.approx(3.0)


class TestJitterDeterminism:
    def test_same_seed_same_delays(self):
        def trace(seed):
            sim = Simulation(seed=seed)
            net = Network(sim, default_link=Link(latency=0.01, jitter=0.01))
            a, b = net.node("a"), net.node("b")
            sock_b = b.datagram_socket(9)
            sock_a = a.datagram_socket()
            times = []

            def receiver():
                while True:
                    yield sock_b.recv()
                    times.append(sim.now)

            sim.process(receiver())
            for i in range(10):
                sock_a.sendto(i, Address("b", 9))
            sim.run()
            return times

        assert trace(5) == trace(5)
        assert trace(5) != trace(6)
