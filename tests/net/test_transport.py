"""Unit tests for stream connections, listeners, and datagram sockets."""

from __future__ import annotations

import pytest

from repro.errors import (
    AddressInUse,
    ConnectionClosed,
    ConnectionRefused,
    NetworkError,
    NoRouteError,
)
from repro.net import Address, Link, Network


class TestStreamConnection:
    def test_round_trip(self, sim, net):
        a, b = net.node("a"), net.node("b")
        listener = b.listen_stream(80)
        log = {}

        def server():
            conn = yield listener.accept()
            envelope = yield conn.recv()
            conn.send(envelope.payload.upper())

        def client():
            conn = yield from a.connect_stream(Address("b", 80))
            conn.send("hello")
            envelope = yield conn.recv()
            log["reply"] = envelope.payload
            conn.close()

        sim.process(server())
        sim.process(client())
        sim.run()
        assert log["reply"] == "HELLO"

    def test_handshake_costs_a_round_trip(self, sim):
        net = Network(sim, default_link=Link(latency=0.05, bandwidth=None))
        a, b = net.node("a"), net.node("b")
        b.listen_stream(80)
        connect_time = {}

        def client():
            yield from a.connect_stream(Address("b", 80))
            connect_time["t"] = sim.now

        sim.process(client())
        sim.run()
        assert connect_time["t"] == pytest.approx(0.1)

    def test_fifo_delivery_per_connection(self, sim, net):
        a, b = net.node("a"), net.node("b")
        listener = b.listen_stream(80)
        received = []

        def server():
            conn = yield listener.accept()
            for _ in range(20):
                envelope = yield conn.recv()
                received.append(envelope.payload)

        def client():
            conn = yield from a.connect_stream(Address("b", 80))
            for i in range(20):
                conn.send(i, size=100 * (20 - i))  # big first, small last
            yield sim.timeout(0)

        sim.process(server())
        sim.process(client())
        sim.run()
        assert received == list(range(20))

    def test_connect_refused_without_listener(self, sim, net):
        a, _b = net.node("a"), net.node("b")

        def client():
            yield from a.connect_stream(Address("b", 80))

        with pytest.raises(ConnectionRefused):
            sim.run(sim.process(client()))

    def test_connect_unknown_host(self, sim, net):
        a = net.node("a")

        def client():
            yield from a.connect_stream(Address("ghost", 80))

        with pytest.raises(NoRouteError):
            sim.run(sim.process(client()))

    def test_close_delivers_pending_then_eof(self, sim, net):
        a, b = net.node("a"), net.node("b")
        listener = b.listen_stream(80)
        got = []

        def server():
            conn = yield listener.accept()
            while True:
                try:
                    envelope = yield conn.recv()
                except ConnectionClosed:
                    got.append("eof")
                    return
                got.append(envelope.payload)

        def client():
            conn = yield from a.connect_stream(Address("b", 80))
            conn.send("one")
            conn.send("two")
            conn.close()

        sim.process(server())
        sim.process(client())
        sim.run()
        assert got == ["one", "two", "eof"]

    def test_send_after_close_raises(self, sim, net):
        a, b = net.node("a"), net.node("b")
        b.listen_stream(80)
        outcome = {}

        def client():
            conn = yield from a.connect_stream(Address("b", 80))
            conn.close()
            try:
                conn.send("late")
            except ConnectionClosed:
                outcome["raised"] = True

        sim.process(client())
        sim.run()
        assert outcome.get("raised")

    def test_backlog_limit_refuses_connections(self, sim, net):
        a, b = net.node("a"), net.node("b")
        b.listen_stream(80, backlog=1)  # nobody accepts
        outcomes = []

        def client(i):
            try:
                yield from a.connect_stream(Address("b", 80))
                outcomes.append("ok")
            except ConnectionRefused:
                outcomes.append("refused")

        for i in range(3):
            sim.process(client(i))
        sim.run()
        assert outcomes.count("ok") == 1
        assert outcomes.count("refused") == 2


class TestDatagramSocket:
    def test_round_trip(self, sim, net):
        a, b = net.node("a"), net.node("b")
        sock_b = b.datagram_socket(9000)
        sock_a = a.datagram_socket()
        got = []

        def receiver():
            envelope = yield sock_b.recv()
            got.append((envelope.payload, envelope.source))

        sim.process(receiver())
        sock_a.sendto({"ping": 1}, Address("b", 9000))
        sim.run()
        assert got == [({"ping": 1}, sock_a.address)]

    def test_lossy_link_drops_share(self, sim):
        net = Network(sim, default_link=Link(latency=0.001, loss=0.5))
        a, b = net.node("a"), net.node("b")
        sock_b = b.datagram_socket(9)
        sock_a = a.datagram_socket()
        got = []

        def receiver():
            while True:
                envelope = yield sock_b.recv()
                got.append(envelope.payload)

        sim.process(receiver())
        for i in range(400):
            sock_a.sendto(i, Address("b", 9))
        sim.run(until=1.0)
        assert 120 < len(got) < 280
        assert sock_a.datagrams_dropped == 400 - len(got)

    def test_send_to_unbound_port_is_silent(self, sim, net):
        a, _b = net.node("a"), net.node("b")
        sock = a.datagram_socket()
        sock.sendto("void", Address("b", 1234))
        sim.run()  # nothing raises

    def test_closed_socket_rejects_io(self, sim, net):
        a = net.node("a")
        sock = a.datagram_socket(5)
        sock.close()
        with pytest.raises(NetworkError):
            sock.sendto("x", Address("a", 5))
        with pytest.raises(NetworkError):
            sock.recv()

    def test_port_reuse_after_close(self, sim, net):
        a = net.node("a")
        sock = a.datagram_socket(5)
        sock.close()
        a.datagram_socket(5)  # no AddressInUse


class TestBinding:
    def test_duplicate_bind_raises(self, sim, net):
        a = net.node("a")
        a.listen_stream(80)
        with pytest.raises(AddressInUse):
            a.listen_stream(80)
        with pytest.raises(AddressInUse):
            a.datagram_socket(80)

    def test_ephemeral_ports_unique(self, sim, net):
        a = net.node("a")
        ports = {a.datagram_socket().address.port for _ in range(10)}
        assert len(ports) == 10

    def test_duplicate_node_name_rejected(self, sim, net):
        net.node("dup")
        with pytest.raises(NetworkError):
            net.node("dup")


class TestTopology:
    def test_explicit_link_overrides_default(self, sim):
        net = Network(sim, default_link=Link(latency=0.5))
        a, b = net.node("a"), net.node("b")
        fast = Link(latency=0.001)
        net.connect(a, b, fast)
        assert net.link_between("a", "b") is fast
        assert net.link_between("b", "a") is fast

    def test_no_route_without_default(self, sim):
        net = Network(sim)
        net.node("a")
        net.node("b")
        with pytest.raises(NoRouteError):
            net.link_between("a", "b")

    def test_loopback_for_same_host(self, sim, net):
        link = net.link_between("x-not-registered", "x-not-registered")
        assert link.latency <= Link.lan().latency

    def test_traffic_accounting(self, sim, net):
        a, b = net.node("a"), net.node("b")
        sock_b = b.datagram_socket(9)
        sock_a = a.datagram_socket()
        sock_a.sendto("hello", Address("b", 9))
        sim.run()
        assert net.metrics.counter("net.messages") == 1
        assert net.metrics.counter("net.bytes") > 5
