"""Unit tests for the fault-injection layer (plans, injector, severing)."""

from __future__ import annotations

import pytest

from repro.errors import ConnectionRefused, NoRouteError, SimError
from repro.net import (
    Address,
    BackendCrash,
    FaultInjector,
    FaultPlan,
    LinkDegrade,
    LinkDown,
    SlowBackend,
)


class TestFaultPlan:
    def test_empty_plan_is_falsy_and_injects_nothing(self, sim):
        plan = FaultPlan.empty()
        assert not plan
        assert len(plan) == 0
        injector = FaultInjector(sim, plan)
        assert injector.start() == []

    def test_describe_lists_every_fault_in_order(self):
        plan = (
            FaultPlan()
            .add(BackendCrash(target="b1", at=1.0, duration=2.0))
            .add(LinkDown(a="x", b="y", at=3.0, duration=1.0))
            .add(SlowBackend(target="b1", at=5.0, duration=1.0, factor=2.0))
        )
        lines = plan.describe()
        assert len(lines) == 3
        assert "backend-crash" in lines[0]
        assert "link-down" in lines[1]
        assert "slow-backend" in lines[2]

    def test_crash_restart_cycle_is_deterministic(self, sim):
        rng_a = sim.rng("plan.a")
        rng_b = sim.rng("plan.a.copy")
        plan_a = FaultPlan.crash_restart_cycle("b1", 10.0, 2.0, 100.0, rng_a)
        # Same substream name on a fresh sim gives the same schedule.
        from repro.sim import Simulation

        other = Simulation(seed=42)
        plan_c = FaultPlan.crash_restart_cycle(
            "b1", 10.0, 2.0, 100.0, other.rng("plan.a")
        )
        assert [f.at for f in plan_a] == [f.at for f in plan_c]
        # A different substream gives a different schedule.
        plan_b = FaultPlan.crash_restart_cycle("b1", 10.0, 2.0, 100.0, rng_b)
        assert [f.at for f in plan_a] != [f.at for f in plan_b]
        # Windows never overlap: each crash starts after the last repair.
        ends = 0.0
        for fault in plan_a:
            assert fault.at >= ends
            ends = fault.at + fault.duration

    def test_cycle_rejects_nonpositive_parameters(self, sim):
        rng = sim.rng("plan")
        with pytest.raises(SimError):
            FaultPlan.crash_restart_cycle("b1", 0.0, 1.0, 10.0, rng)
        with pytest.raises(SimError):
            FaultPlan.crash_restart_cycle("b1", 1.0, -1.0, 10.0, rng)

    def test_first_at_pins_the_first_crash(self, sim):
        plan = FaultPlan.crash_restart_cycle(
            "b1", 10.0, 2.0, 100.0, sim.rng("plan"), first_at=7.5
        )
        assert plan.faults[0].at == 7.5


class TestFaultInjector:
    def test_double_start_raises(self, sim):
        injector = FaultInjector(sim, FaultPlan.empty())
        injector.start()
        with pytest.raises(SimError):
            injector.start()

    def test_unknown_target_raises(self, sim):
        plan = FaultPlan().add(BackendCrash(target="ghost", at=0.0, duration=1.0))
        injector = FaultInjector(sim, plan, targets={})
        injector.start()
        with pytest.raises(SimError):
            sim.run()

    def test_link_fault_requires_network(self, sim):
        plan = FaultPlan().add(LinkDown(a="x", b="y", at=0.0, duration=1.0))
        injector = FaultInjector(sim, plan)
        injector.start()
        with pytest.raises(SimError):
            sim.run()

    def test_windows_and_is_down(self, sim, net):
        from repro.http.server import BackendWebServer

        server = BackendWebServer(sim, net.node("b1"), name="b1")
        plan = FaultPlan().add(BackendCrash(target="b1", at=5.0, duration=3.0))
        injector = FaultInjector(sim, plan, targets={"b1": server})
        injector.start()
        sim.run(until=20.0)
        assert injector.windows("b1") == [(5.0, 8.0)]
        assert injector.is_down("b1", 6.0)
        assert not injector.is_down("b1", 8.0)  # [start, end) is half-open
        assert not injector.is_down("b1", 4.9)

    def test_open_window_reported_up_to_now(self, sim, net):
        from repro.http.server import BackendWebServer

        server = BackendWebServer(sim, net.node("b1"), name="b1")
        plan = FaultPlan().add(BackendCrash(target="b1", at=5.0, duration=100.0))
        injector = FaultInjector(sim, plan, targets={"b1": server})
        injector.start()
        sim.run(until=10.0)
        assert injector.windows("b1") == [(5.0, 10.0)]

    def test_crash_refuses_connections_and_restart_recovers(self, sim, net):
        from repro.http.client import HttpClient
        from repro.http.server import BackendWebServer

        client_node = net.node("client")
        server = BackendWebServer(sim, net.node("b1"), name="b1")
        server.add_static("/index.html", "hello")
        plan = FaultPlan().add(BackendCrash(target="b1", at=1.0, duration=2.0))
        injector = FaultInjector(sim, plan, targets={"b1": server})
        injector.start()
        outcomes = {}

        def probe(label):
            try:
                response = yield from HttpClient.get(
                    sim, client_node, server.address, "/index.html"
                )
                outcomes[label] = response.status
            except ConnectionRefused:
                outcomes[label] = "refused"

        def driver():
            yield from probe("before")
            yield sim.timeout(1.5 - sim.now)
            yield from probe("during")
            yield sim.timeout(5.0 - sim.now)
            yield from probe("after")

        sim.process(driver())
        sim.run()
        assert outcomes["before"] == 200
        assert outcomes["during"] == "refused"
        assert outcomes["after"] == 200
        assert server.metrics.counter("http.crashes") == 1
        assert server.metrics.counter("http.restarts") == 1

    def test_crash_aborts_inflight_sessions(self, sim, net):
        from repro.errors import ConnectionClosed
        from repro.http.server import BackendWebServer

        client_node = net.node("client")
        server = BackendWebServer(sim, net.node("b1"), name="b1")

        def forever_cgi(server, request):
            yield server.sim.timeout(1_000.0)
            return "never"

        server.add_cgi("/slow", forever_cgi)
        outcome = {}

        def client():
            from repro.http.messages import HttpRequest

            conn = yield from client_node.connect_stream(server.address)
            conn.send(HttpRequest(method="GET", path="/slow"))
            try:
                yield conn.recv()
                outcome["result"] = "replied"
            except ConnectionClosed:
                outcome["result"] = "aborted"

        plan = FaultPlan().add(BackendCrash(target="b1", at=1.0, duration=1.0))
        FaultInjector(sim, plan, targets={"b1": server}).start()
        sim.process(client())
        sim.run(until=10.0)
        assert outcome["result"] == "aborted"

    def test_link_down_blocks_connects_and_loses_datagrams(self, sim, net):
        a, b = net.node("a"), net.node("b")
        b.listen_stream(80)
        b.datagram_socket(90)
        plan = FaultPlan().add(LinkDown(a="a", b="b", at=0.0, duration=5.0))
        FaultInjector(sim, plan, network=net).start()
        outcomes = {}

        def driver():
            yield sim.timeout(1.0)
            try:
                yield from a.connect_stream(Address("b", 80))
                outcomes["during"] = "connected"
            except NoRouteError:
                outcomes["during"] = "no-route"
            socket = a.datagram_socket(91)
            socket.sendto("lost", Address("b", 90))
            yield sim.timeout(5.0)
            conn = yield from a.connect_stream(Address("b", 80))
            outcomes["after"] = "connected" if conn else "failed"

        sim.process(driver())
        sim.run()
        assert outcomes["during"] == "no-route"
        assert outcomes["after"] == "connected"
        assert net.metrics.counter("net.datagrams.lost") >= 1

    def test_link_degrade_adds_latency_then_clears(self, sim, net):
        plan = FaultPlan().add(
            LinkDegrade(a="a", b="b", at=0.0, duration=5.0, extra_latency=0.1)
        )
        a, b = net.node("a"), net.node("b")
        base = net.link_between("a", "b")
        FaultInjector(sim, plan, network=net).start()
        sim.run(until=1.0)
        assert net.link_between("a", "b").latency == pytest.approx(
            base.latency + 0.1
        )
        sim.run(until=6.0)
        assert net.link_between("a", "b").latency == pytest.approx(base.latency)

    def test_slow_backend_scales_service_time_and_restores(self, sim, net):
        from repro.http.server import BackendWebServer

        server = BackendWebServer(sim, net.node("b1"), name="b1")
        plan = FaultPlan().add(
            SlowBackend(target="b1", at=1.0, duration=2.0, factor=4.0)
        )
        FaultInjector(sim, plan, targets={"b1": server}).start()
        assert server.service_time_scale == 1.0
        sim.run(until=2.0)
        assert server.service_time_scale == 4.0
        sim.run(until=4.0)
        assert server.service_time_scale == 1.0
