"""Unit tests for links and size estimation."""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.net import Link, estimate_size


class TestLink:
    def test_validation(self):
        with pytest.raises(ValueError):
            Link(latency=-1)
        with pytest.raises(ValueError):
            Link(jitter=-0.1)
        with pytest.raises(ValueError):
            Link(bandwidth=0)
        with pytest.raises(ValueError):
            Link(loss=1.0)

    def test_delay_without_jitter_is_deterministic(self):
        link = Link(latency=0.01, bandwidth=1000)
        rng = random.Random(0)
        assert link.delay(500, rng) == pytest.approx(0.01 + 0.5)

    def test_unlimited_bandwidth_ignores_size(self):
        link = Link(latency=0.02, bandwidth=None)
        rng = random.Random(0)
        assert link.delay(10**9, rng) == pytest.approx(0.02)

    def test_jitter_bounded(self):
        link = Link(latency=0.01, jitter=0.005)
        rng = random.Random(1)
        for _ in range(100):
            delay = link.delay(0, rng)
            assert 0.01 <= delay <= 0.015

    def test_loss_sampling_rate(self):
        link = Link(latency=0.01, loss=0.3)
        rng = random.Random(2)
        drops = sum(link.drops(rng) for _ in range(10_000))
        assert 2700 < drops < 3300

    def test_lossless_never_drops(self):
        link = Link.lan()
        rng = random.Random(3)
        assert not any(link.drops(rng) for _ in range(100))

    def test_archetypes_ordering(self):
        lan, wan = Link.lan(), Link.wan()
        assert lan.latency < wan.latency
        assert (lan.bandwidth or 0) > (wan.bandwidth or 0)
        assert Link.loopback().latency < lan.latency


class TestEstimateSize:
    def test_primitives(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(42) == 8
        assert estimate_size(3.14) == 8
        assert estimate_size("hello") == 5
        assert estimate_size(b"abc") == 3

    def test_unicode_counts_encoded_bytes(self):
        assert estimate_size("héllo") == 6

    def test_containers_sum_members(self):
        assert estimate_size([1, 2, 3]) == 8 + 24
        assert estimate_size({"k": "vv"}) == 8 + 1 + 2

    def test_dataclass_sums_fields(self):
        @dataclass
        class Point:
            x: int
            y: int

        assert estimate_size(Point(1, 2)) == 8 + 16

    def test_nested_structures(self):
        payload = {"rows": [("a", 1), ("b", 2)]}
        assert estimate_size(payload) > 20

    def test_opaque_object_uses_repr_floor(self):
        class Opaque:
            pass

        assert estimate_size(Opaque()) >= 8
