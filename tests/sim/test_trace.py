"""Tests for the tracing facility."""

from __future__ import annotations

import pytest

from repro.sim import Simulation, Tracer
from repro.sim.trace import TraceRecord


class TestTracer:
    def test_log_and_records(self):
        tracer = Tracer()
        tracer.log(1.0, "a", "first", x=1)
        tracer.log(2.0, "b", "second")
        assert len(tracer) == 2
        assert tracer.records[0].fields == {"x": 1}

    def test_ring_buffer_limit(self):
        tracer = Tracer(limit=3)
        for i in range(5):
            tracer.log(float(i), "c", f"m{i}")
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [r.message for r in tracer.records] == ["m2", "m3", "m4"]

    def test_select_filters(self):
        tracer = Tracer()
        tracer.log(1.0, "a", "one")
        tracer.log(2.0, "b", "two")
        tracer.log(3.0, "a", "three")
        assert [r.message for r in tracer.select(category="a")] == ["one", "three"]
        assert [r.message for r in tracer.select(since=2.0)] == ["two", "three"]
        assert [r.message for r in tracer.select(until=2.0)] == ["one", "two"]
        assert [r.message for r in tracer.select(category="a", since=2.0)] == ["three"]

    def test_categories_count(self):
        tracer = Tracer()
        tracer.log(0.0, "x", "m")
        tracer.log(0.0, "x", "m")
        tracer.log(0.0, "y", "m")
        assert tracer.categories() == {"x": 2, "y": 1}

    def test_render_and_to_text(self):
        record = TraceRecord(1.5, "broker", "drop", {"qos": 3})
        text = record.render()
        assert "broker" in text and "drop" in text and "qos=3" in text
        tracer = Tracer()
        tracer.log(1.5, "broker", "drop", qos=3)
        assert tracer.to_text() == text

    def test_render_fields_in_sorted_key_order(self):
        # Regression: fields used to render in dict insertion order, so
        # records with equal content produced different log lines
        # depending on the keyword order at the trace call site.
        first = TraceRecord(1.0, "c", "m", {"b": 2, "a": 1})
        second = TraceRecord(1.0, "c", "m", {"a": 1, "b": 2})
        assert first.render() == second.render()
        assert "a=1 b=2" in first.render()

    def test_clear(self):
        tracer = Tracer(limit=1)
        tracer.log(0.0, "a", "m")
        tracer.log(0.0, "a", "m")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(limit=0)


class TestSimulationIntegration:
    def test_trace_noop_without_tracer(self):
        sim = Simulation()
        sim.trace("cat", "message", a=1)  # must not raise

    def test_trace_records_sim_time(self):
        tracer = Tracer()
        sim = Simulation(tracer=tracer)

        def proc():
            yield sim.timeout(5.0)
            sim.trace("test", "after-sleep")

        sim.run(sim.process(proc()))
        assert tracer.records[0].time == 5.0

    def test_broker_emits_trace_records(self, net):
        """An end-to-end scenario produces arrival/dispatch/drop traces."""
        sim = net.sim
        tracer = Tracer()
        sim.tracer = tracer
        from repro.core import BrokerClient, HttpAdapter, QoSPolicy, ServiceBroker
        from repro.http import BackendWebServer

        node = net.node("web")
        server = BackendWebServer(sim, net.node("origin"), max_clients=1)

        def slow_cgi(server, request):
            yield server.sim.timeout(0.5)
            return "ok"

        server.add_cgi("/s", slow_cgi)
        broker = ServiceBroker(
            sim,
            node,
            service="web",
            adapters=[HttpAdapter(sim, node, server.address)],
            qos=QoSPolicy(levels=1, threshold=2),
            pool_size=1,
        )
        client = BrokerClient(sim, node, {"web": broker.address})
        for i in range(5):
            sim.process(client.call("web", "get", ("/s", {"i": i}), cacheable=False))
        sim.run()
        counts = tracer.categories()
        assert counts.get("broker", 0) >= 5
        messages = {r.message for r in tracer.select(category="broker")}
        assert {"arrival", "dispatch", "drop"} <= messages
