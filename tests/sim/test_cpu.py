"""Tests for the HostCpu context-switch model."""

from __future__ import annotations

import pytest

from repro.sim import HostCpu


class TestHostCpu:
    def test_same_task_pays_no_switch(self, sim):
        cpu = HostCpu(sim, context_switch_cost=0.01)

        def run():
            for _ in range(5):
                yield from cpu.run("A", 0.1)

        sim.run(sim.process(run()))
        assert cpu.switches == 0
        assert sim.now == pytest.approx(0.5)

    def test_alternating_tasks_pay_switches(self, sim):
        cpu = HostCpu(sim, context_switch_cost=0.01)

        def run():
            for i in range(6):
                yield from cpu.run("A" if i % 2 == 0 else "B", 0.1)

        sim.run(sim.process(run()))
        assert cpu.switches == 5
        assert sim.now == pytest.approx(0.6 + 0.05)

    def test_core_is_exclusive(self, sim):
        cpu = HostCpu(sim, context_switch_cost=0.0)
        finish = []

        def worker(tag):
            yield from cpu.run(tag, 1.0)
            finish.append((tag, sim.now))

        sim.process(worker("A"))
        sim.process(worker("B"))
        sim.run()
        assert [t for _, t in finish] == [1.0, 2.0]

    def test_busy_time_and_utilization(self, sim):
        cpu = HostCpu(sim, context_switch_cost=0.1)

        def run():
            yield from cpu.run("A", 0.4)
            yield sim.timeout(0.5)  # idle
            yield from cpu.run("B", 0.4)

        sim.run(sim.process(run()))
        assert cpu.busy_time == pytest.approx(0.9)  # 0.8 work + 0.1 switch
        assert cpu.utilization() == pytest.approx(0.9 / sim.now)

    def test_interleaving_processes_switch_every_slice(self, sim):
        cpu = HostCpu(sim, context_switch_cost=0.001)

        def worker(tag, slices):
            for _ in range(slices):
                yield from cpu.run(tag, 0.01)
                yield sim.timeout(0.001)  # simulated I/O wait

        procs = [sim.process(worker(f"p{i}", 10)) for i in range(4)]
        sim.run(sim.all_of(procs))
        # 4 processes interleaving on one core: nearly every slice switches.
        assert cpu.switches > 30

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            HostCpu(sim, context_switch_cost=-1)
        cpu = HostCpu(sim)

        def run():
            yield from cpu.run("A", -0.1)

        with pytest.raises(ValueError):
            sim.run(sim.process(run()))
