"""Tests for the conservative parallel driver (:mod:`repro.sim.parallel`).

The ping-pong model used throughout: partition ``left`` emits a counter
every virtual second, ``right`` echoes each payload back times ten, all
cross-partition delays exactly equal to the lookahead. Its trajectory
is computed by hand, so the windowed protocol is checked against ground
truth — and the forked runs are checked against the inline run, pinning
the determinism contract (results never depend on the worker count).
"""

from __future__ import annotations

import pytest

from repro.errors import SimError
from repro.net.message import decode_batch, encode_batch
from repro.sim import Simulation
from repro.sim.parallel import (
    ParallelSimulation,
    PartitionSpec,
    RemoteEnvelope,
    RemoteGateway,
    available_workers,
)

LOOKAHEAD = 1.0
ROUNDS = 5


def _left_builder(sim, gateway):
    log = []

    def driver():
        yield 0.5
        for i in range(ROUNDS):
            gateway.send("right", i, delay=LOOKAHEAD)
            yield 1.0

    gateway.on_receive(lambda env: log.append((sim.now, env.payload)))
    sim.process(driver())
    return lambda: log


def _right_builder(sim, gateway):
    log = []

    def on_receive(env):
        log.append((sim.now, env.payload))
        gateway.send("left", env.payload * 10, delay=LOOKAHEAD)

    gateway.on_receive(on_receive)
    return lambda: log


def _idle_builder(sim, gateway):
    gateway.on_receive(lambda env: None)
    return lambda: None


def _pingpong():
    return [
        PartitionSpec("left", _left_builder, seed=1),
        PartitionSpec("right", _right_builder, seed=2),
    ]


#: left sends i at t = 0.5 + i; right receives at 1.5 + i and echoes;
#: left receives the echo at 2.5 + i.
EXPECTED_RIGHT = [(1.5 + i, i) for i in range(ROUNDS)]
EXPECTED_LEFT = [(2.5 + i, 10 * i) for i in range(ROUNDS)]


class TestPingPong:
    def test_inline_matches_ground_truth(self):
        results = ParallelSimulation(_pingpong(), lookahead=LOOKAHEAD).run(
            until=10.0
        )
        assert results["left"].value == EXPECTED_LEFT
        assert results["right"].value == EXPECTED_RIGHT
        assert results["left"].sent == ROUNDS
        assert results["left"].received == ROUNDS
        assert results["right"].sent == ROUNDS
        assert results["right"].received == ROUNDS

    def test_forked_matches_inline(self):
        inline = ParallelSimulation(_pingpong(), lookahead=LOOKAHEAD).run(
            until=10.0
        )
        forked = ParallelSimulation(
            _pingpong(), lookahead=LOOKAHEAD, workers=2
        ).run(until=10.0)
        for name in ("left", "right"):
            assert forked[name].value == inline[name].value
            assert forked[name].sent == inline[name].sent
            assert forked[name].received == inline[name].received

    def test_matches_single_simulation_reference(self):
        """The same logical model in ONE Simulation gives the same logs."""
        sim = Simulation(seed=99)
        left_log, right_log = [], []

        def right_receive(event):
            right_log.append((sim.now, event.value))
            echo = sim.event()
            echo.callbacks.append(
                lambda e: left_log.append((sim.now, e.value))
            )
            echo.succeed(event.value * 10, delay=LOOKAHEAD)

        def driver():
            yield 0.5
            for i in range(ROUNDS):
                message = sim.event()
                message.callbacks.append(right_receive)
                message.succeed(i, delay=LOOKAHEAD)
                yield 1.0

        sim.process(driver())
        sim.run(until=10.0)
        assert left_log == EXPECTED_LEFT
        assert right_log == EXPECTED_RIGHT

    def test_undelivered_envelopes_fail_loudly(self):
        with pytest.raises(SimError, match="in flight"):
            ParallelSimulation(_pingpong(), lookahead=LOOKAHEAD).run(
                until=1.0
            )

    def test_fractional_final_window(self):
        """An *until* that is not a window multiple still lands exactly."""
        results = ParallelSimulation(_pingpong(), lookahead=LOOKAHEAD).run(
            until=9.75
        )
        assert results["left"].value == EXPECTED_LEFT


class TestDeterminism:
    def test_worker_count_invariance(self):
        specs_by_run = [_pingpong() + [
            PartitionSpec("idle", lambda sim, gw: (lambda: sim.now), seed=3)
        ] for _ in range(3)]
        runs = [
            ParallelSimulation(specs, lookahead=LOOKAHEAD, workers=w).run(
                until=10.0
            )
            for specs, w in zip(specs_by_run, (1, 2, 3))
        ]
        for run in runs[1:]:
            assert run["left"].value == runs[0]["left"].value
            assert run["right"].value == runs[0]["right"].value

    def test_repeated_forked_runs_are_identical(self):
        first = ParallelSimulation(
            _pingpong(), lookahead=LOOKAHEAD, workers=2
        ).run(until=10.0)
        second = ParallelSimulation(
            _pingpong(), lookahead=LOOKAHEAD, workers=2
        ).run(until=10.0)
        assert first["left"].value == second["left"].value
        assert first["right"].value == second["right"].value


class TestGateway:
    def test_lookahead_rule_enforced_at_send(self):
        sim = Simulation()
        gateway = RemoteGateway("a", sim, lookahead=2.0)
        with pytest.raises(SimError, match="lookahead"):
            gateway.send("b", "x", delay=1.0)

    def test_inject_without_handler_is_an_error(self):
        sim = Simulation()
        gateway = RemoteGateway("a", sim, lookahead=1.0)
        envelope = RemoteEnvelope("b", "a", 0.0, 1.0, "x")
        with pytest.raises(SimError, match="no on_receive handler"):
            gateway._inject([envelope])

    def test_inject_rejects_causality_violation(self):
        sim = Simulation()
        sim.timeout(5.0)
        sim.run()
        gateway = RemoteGateway("a", sim, lookahead=1.0)
        gateway.on_receive(lambda env: None)
        stale = RemoteEnvelope("b", "a", 0.0, 1.0, "x")
        with pytest.raises(SimError, match="causality violation"):
            gateway._inject([stale])

    def test_injection_order_is_worker_assignment_independent(self):
        """Envelopes deliver sorted by (arrives_at, source, sent_at)."""
        sim = Simulation()
        gateway = RemoteGateway("a", sim, lookahead=1.0)
        seen = []
        gateway.on_receive(lambda env: seen.append(env.payload))
        shuffled = [
            RemoteEnvelope("z", "a", 0.5, 2.0, "late-z"),
            RemoteEnvelope("b", "a", 0.0, 1.0, "early-b"),
            RemoteEnvelope("b", "a", 0.5, 2.0, "late-b"),
            RemoteEnvelope("c", "a", 0.0, 1.0, "early-c"),
        ]
        gateway._inject(shuffled)
        sim.run()
        assert seen == ["early-b", "early-c", "late-b", "late-z"]


class TestEnvelopeCodec:
    def test_round_trip(self):
        batch = [
            RemoteEnvelope("a", "b", 0.25, 1.25, {"k": [1, 2]}),
            RemoteEnvelope("b", "a", 0.5, 1.5, "reply"),
        ]
        decoded = decode_batch(encode_batch(batch))
        assert [
            (e.source, e.destination, e.sent_at, e.arrives_at, e.payload)
            for e in decoded
        ] == [
            (e.source, e.destination, e.sent_at, e.arrives_at, e.payload)
            for e in batch
        ]

    def test_empty_batch_is_empty_bytes(self):
        assert encode_batch([]) == b""
        assert decode_batch(b"") == []


class TestValidation:
    def test_needs_partitions(self):
        with pytest.raises(SimError, match="at least one partition"):
            ParallelSimulation([], lookahead=1.0)

    def test_rejects_duplicate_names(self):
        dup = [
            PartitionSpec("p", _left_builder),
            PartitionSpec("p", _right_builder),
        ]
        with pytest.raises(SimError, match="duplicate partition names"):
            ParallelSimulation(dup, lookahead=1.0)

    def test_rejects_nonpositive_lookahead(self):
        with pytest.raises(SimError, match="lookahead must be positive"):
            ParallelSimulation(_pingpong(), lookahead=0.0)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(SimError, match="workers must be"):
            ParallelSimulation(_pingpong(), lookahead=1.0, workers=0)

    def test_workers_clamped_to_partition_count(self):
        driver = ParallelSimulation(_pingpong(), lookahead=1.0, workers=64)
        assert driver.workers == 2

    def test_until_must_be_positive(self):
        driver = ParallelSimulation(_pingpong(), lookahead=1.0)
        with pytest.raises(SimError, match="until must be positive"):
            driver.run(until=0.0)

    def test_envelope_to_unknown_partition_is_an_error(self):
        def chatty(sim, gateway):
            def driver():
                yield 0.5
                gateway.send("nowhere", "x", delay=1.0)

            gateway.on_receive(lambda env: None)
            sim.process(driver())
            return lambda: None

        driver = ParallelSimulation(
            [PartitionSpec("only", chatty)], lookahead=1.0
        )
        with pytest.raises(SimError, match="unknown partition"):
            driver.run(until=5.0)

    def test_available_workers_positive(self):
        assert available_workers() >= 1


class TestErrorPropagation:
    def test_builder_exception_surfaces_inline(self):
        def broken(sim, gateway):
            raise ValueError("boom at build time")

        driver = ParallelSimulation(
            [PartitionSpec("bad", broken)], lookahead=1.0
        )
        with pytest.raises(ValueError, match="boom at build time"):
            driver.run(until=1.0)

    def test_builder_exception_surfaces_from_worker(self):
        def broken(sim, gateway):
            raise ValueError("boom in the worker")

        driver = ParallelSimulation(
            [PartitionSpec("bad", broken), PartitionSpec("ok", _idle_builder)],
            lookahead=1.0,
            workers=2,
        )
        with pytest.raises(SimError, match="boom in the worker"):
            driver.run(until=1.0)

    def test_model_exception_surfaces_from_worker(self):
        def explodes_later(sim, gateway):
            def driver():
                yield 2.5
                raise RuntimeError("mid-flight failure")

            gateway.on_receive(lambda env: None)
            sim.process(driver())
            return lambda: None

        driver = ParallelSimulation(
            [
                PartitionSpec("boomy", explodes_later),
                PartitionSpec("calm", _idle_builder),
            ],
            lookahead=1.0,
            workers=2,
        )
        with pytest.raises(SimError, match="mid-flight failure"):
            driver.run(until=10.0)
