"""Unit tests for the simulation kernel event loop."""

from __future__ import annotations

import pytest

from repro.errors import (
    EventAlreadyTriggered,
    EventNotTriggered,
    Interrupt,
    SimError,
)
from repro.sim import Simulation


class TestEvent:
    def test_fresh_event_is_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(EventNotTriggered):
            _ = event.value
        with pytest.raises(EventNotTriggered):
            _ = event.ok

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed("payload")
        assert event.triggered
        assert event.ok
        assert event.value == "payload"

    def test_double_trigger_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(EventAlreadyTriggered):
            event.succeed()
        with pytest.raises(EventAlreadyTriggered):
            event.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_unhandled_failure_aborts_run(self, sim):
        event = sim.event()
        event.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_defused_failure_does_not_abort(self, sim):
        event = sim.event()
        event.fail(RuntimeError("boom"))
        event.defused = True
        sim.run()  # no raise


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        times = []

        def proc():
            yield sim.timeout(2.5)
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [2.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_timeout_value_passthrough(self, sim):
        result = []

        def proc():
            value = yield sim.timeout(1, value="hello")
            result.append(value)

        sim.process(proc())
        sim.run()
        assert result == ["hello"]

    def test_zero_delay_fires_in_order(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(0)
            order.append(tag)

        sim.process(proc("a"))
        sim.process(proc("b"))
        sim.run()
        assert order == ["a", "b"]


class TestProcess:
    def test_return_value_becomes_event_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return 99

        assert sim.run(sim.process(proc())) == 99

    def test_exception_propagates_to_run(self, sim):
        def proc():
            yield sim.timeout(1)
            raise ValueError("inside")

        with pytest.raises(ValueError, match="inside"):
            sim.run(sim.process(proc()))

    def test_waiting_on_another_process(self, sim):
        def inner():
            yield sim.timeout(3)
            return "inner-done"

        def outer():
            value = yield sim.process(inner())
            return value

        assert sim.run(sim.process(outer())) == "inner-done"
        assert sim.now == 3

    def test_yield_from_composition(self, sim):
        def leaf():
            yield sim.timeout(1)
            return 7

        def mid():
            value = yield from leaf()
            return value * 2

        assert sim.run(sim.process(mid())) == 14

    def test_yielding_non_event_fails_process(self, sim):
        def proc():
            yield "not an event"  # type: ignore[misc]

        with pytest.raises(SimError, match="expected an Event"):
            sim.run(sim.process(proc()))

    def test_is_alive_lifecycle(self, sim):
        def proc():
            yield sim.timeout(5)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_failed_sub_process_raises_in_waiter(self, sim):
        def inner():
            yield sim.timeout(1)
            raise KeyError("gone")

        def outer():
            try:
                yield sim.process(inner())
            except KeyError:
                return "caught"
            return "missed"

        assert sim.run(sim.process(outer())) == "caught"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100)
                return "overslept"
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, sim.now)

        target = sim.process(sleeper())

        def killer():
            yield sim.timeout(4)
            target.interrupt("reason")

        sim.process(killer())
        assert sim.run(target) == ("interrupted", "reason", 4.0)

    def test_interrupted_process_can_continue(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(1)
            return sim.now

        target = sim.process(sleeper())

        def killer():
            yield sim.timeout(2)
            target.interrupt()

        sim.process(killer())
        assert sim.run(target) == 3.0

    def test_interrupting_done_process_raises(self, sim):
        def quick():
            yield sim.timeout(1)

        target = sim.process(quick())
        sim.run()
        with pytest.raises(SimError):
            target.interrupt()


class TestConditions:
    def test_all_of_waits_for_every_event(self, sim):
        def proc():
            t1 = sim.timeout(1, "a")
            t2 = sim.timeout(3, "b")
            values = yield sim.all_of([t1, t2])
            return sorted(values.values()), sim.now

        assert sim.run(sim.process(proc())) == (["a", "b"], 3.0)

    def test_any_of_returns_first_only(self, sim):
        def proc():
            slow = sim.timeout(9, "slow")
            fast = sim.timeout(2, "fast")
            values = yield sim.any_of([slow, fast])
            return list(values.values()), sim.now

        assert sim.run(sim.process(proc())) == (["fast"], 2.0)

    def test_empty_all_of_triggers_immediately(self, sim):
        def proc():
            values = yield sim.all_of([])
            return values

        assert sim.run(sim.process(proc())) == {}

    def test_any_of_failure_propagates(self, sim):
        def failing():
            yield sim.timeout(1)
            raise RuntimeError("sub failed")

        def proc():
            with pytest.raises(RuntimeError, match="sub failed"):
                yield sim.any_of([sim.process(failing()), sim.timeout(50)])
            return "ok"

        assert sim.run(sim.process(proc())) == "ok"

    def test_simultaneous_events_both_collected(self, sim):
        def proc():
            t1 = sim.timeout(2, "x")
            t2 = sim.timeout(2, "y")
            values = yield sim.any_of([t1, t2])
            # t1 processes first (FIFO among same-time events); only it
            # has occurred when the condition triggers.
            return list(values.values())

        assert sim.run(sim.process(proc())) == ["x"]


class TestRun:
    def test_run_until_time_sets_clock(self, sim):
        def proc():
            yield sim.timeout(100)

        sim.process(proc())
        sim.run(until=10)
        assert sim.now == 10

    def test_run_until_past_raises(self, sim):
        def proc():
            yield sim.timeout(5)

        sim.process(proc())
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1)

    def test_run_until_event_returns_its_value(self, sim):
        def proc():
            yield sim.timeout(2)
            return "finished"

        assert sim.run(until=sim.process(proc())) == "finished"

    def test_run_until_unreachable_event_raises(self, sim):
        event = sim.event()  # never triggered

        def proc():
            yield sim.timeout(1)

        sim.process(proc())
        with pytest.raises(SimError, match="exhausted"):
            sim.run(until=event)

    def test_run_bad_until_type(self, sim):
        with pytest.raises(TypeError):
            sim.run(until="tomorrow")  # type: ignore[arg-type]

    def test_peek_reports_next_event_time(self, sim):
        sim.timeout(7)
        assert sim.peek() == 7.0
        sim.run()
        assert sim.peek() == float("inf")


class TestDeterminism:
    def test_same_seed_same_rng_streams(self):
        a = Simulation(seed=7)
        b = Simulation(seed=7)
        assert [a.rng("s").random() for _ in range(5)] == [
            b.rng("s").random() for _ in range(5)
        ]

    def test_named_streams_are_independent(self):
        sim = Simulation(seed=7)
        first = sim.rng("one").random()
        # Drawing from another stream must not perturb the first.
        sim2 = Simulation(seed=7)
        sim2.rng("two").random()
        assert sim2.rng("one").random() == first

    def test_same_stream_object_is_cached(self, sim):
        assert sim.rng("x") is sim.rng("x")
