"""Property-based tests for kernel invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulation, Store
from repro.sim.rng import derive_rng


class TestEventOrderingProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_timeouts_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulation()
        fired = []

        def proc(delay):
            yield sim.timeout(delay)
            fired.append(sim.now)

        for delay in delays:
            sim.process(proc(delay))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30))
    def test_clock_ends_at_max_delay(self, delays):
        sim = Simulation()
        for delay in delays:
            sim.timeout(delay)
        sim.run()
        assert sim.now == max(delays)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10),  # start offset
                st.floats(min_value=0, max_value=5),  # hold duration
            ),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40)
    def test_resource_capacity_never_exceeded(self, jobs, capacity):
        sim = Simulation()
        res = Resource(sim, capacity=capacity)
        max_seen = [0]

        def worker(offset, hold):
            yield sim.timeout(offset)
            req = res.request()
            yield req
            max_seen[0] = max(max_seen[0], res.in_use)
            yield sim.timeout(hold)
            res.release(req)

        for offset, hold in jobs:
            sim.process(worker(offset, hold))
        sim.run()
        assert max_seen[0] <= capacity
        assert res.in_use == 0


class TestStoreProperties:
    @given(st.lists(st.integers(), min_size=0, max_size=60))
    def test_store_preserves_order_and_content(self, items):
        sim = Simulation()
        store = Store(sim)
        received = []

        def producer():
            for item in items:
                yield sim.timeout(0.01)
                store.put(item)

        def consumer():
            for _ in range(len(items)):
                value = yield store.get()
                received.append(value)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == items

    @given(
        st.lists(st.integers(), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=5),
    )
    def test_bounded_store_never_overflows(self, items, capacity):
        sim = Simulation()
        store = Store(sim, capacity=capacity)
        peak = [0]
        received = []

        def producer():
            for item in items:
                yield store.put(item)
                peak[0] = max(peak[0], len(store))

        def consumer():
            for _ in range(len(items)):
                yield sim.timeout(0.5)
                value = yield store.get()
                received.append(value)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert peak[0] <= capacity
        assert received == items


class TestSameTimestampOrdering:
    """Batched dispatch must preserve FIFO order within a timestamp.

    The batched run loop merges pending events against the heap and
    specializes several event types (DESIGN.md §14); none of that may
    reorder events scheduled for the same instant. The kernel's
    contract is a stable sort: dispatch order equals schedule order
    within each ``(when, priority)`` bucket, for every seed.
    """

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.lists(
            st.sampled_from([0.0, 1.0, 2.0, 3.0]),
            min_size=2,
            max_size=40,
        ),
    )
    @settings(max_examples=60)
    def test_dispatch_is_a_stable_sort_of_schedule_order(self, seed, delays):
        sim = Simulation(seed=seed)
        fired = []
        for index, delay in enumerate(delays):
            timeout = sim.timeout(delay)
            timeout.callbacks.append(
                lambda event, _i=index: fired.append(_i)
            )
        sim.run()
        expected = sorted(
            range(len(delays)), key=lambda i: (delays[i], i)
        )
        assert fired == expected

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.lists(st.booleans(), min_size=2, max_size=30),
    )
    @settings(max_examples=60)
    def test_zero_delay_wakes_keep_schedule_order(self, seed, use_wake):
        """Mixing wake() fast-path events with timeout(0) stays FIFO."""
        sim = Simulation(seed=seed)
        fired = []
        for index, wake in enumerate(use_wake):
            if wake:
                event = sim.event()
                event.callbacks.append(
                    lambda e, _i=index: fired.append(_i)
                )
                event.succeed(index)
            else:
                timeout = sim.timeout(0.0)
                timeout.callbacks.append(
                    lambda e, _i=index: fired.append(_i)
                )
        sim.run()
        assert fired == list(range(len(use_wake)))

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=2, max_value=20),
    )
    @settings(max_examples=40)
    def test_processes_resuming_at_one_instant_keep_schedule_order(
        self, seed, count
    ):
        """Float-yield ticks landing on one timestamp dispatch FIFO."""
        sim = Simulation(seed=seed)
        fired = []

        def sleeper(index):
            yield 5.0
            fired.append(index)

        for index in range(count):
            sim.process(sleeper(index))
        sim.run()
        assert fired == list(range(count))


class TestRngProperties:
    @given(st.integers(), st.text(min_size=0, max_size=30))
    def test_derivation_is_deterministic(self, seed, name):
        assert derive_rng(seed, name).random() == derive_rng(seed, name).random()

    @given(st.integers())
    def test_different_names_give_different_streams(self, seed):
        # Not cryptographically guaranteed, but SHA-256-derived streams
        # colliding on the first draw would indicate a bug.
        a = derive_rng(seed, "alpha").random()
        b = derive_rng(seed, "beta").random()
        assert a != b
