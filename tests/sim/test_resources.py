"""Unit tests for Resource, PriorityResource, and Store."""

from __future__ import annotations

import pytest

from repro.errors import SimError
from repro.sim import Resource, Simulation, Store


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grants_up_to_capacity(self, sim):
        res = Resource(sim, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        sim.run()
        assert r1.processed and r2.processed
        assert not r3.triggered
        assert res.in_use == 2
        assert res.queued == 1

    def test_release_grants_next_waiter(self, sim):
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        sim.run()
        assert not r2.triggered
        res.release(r1)
        sim.run()
        assert r2.processed
        assert res.in_use == 1

    def test_release_unowned_raises(self, sim):
        res = Resource(sim, capacity=1)
        req = res.request()
        other = res.request()
        sim.run()
        with pytest.raises(SimError):
            res.release(other)
        res.release(req)

    def test_cancel_waiting_request(self, sim):
        res = Resource(sim, capacity=1)
        holder = res.request()
        waiter = res.request()
        third = res.request()
        sim.run()
        res.cancel(waiter)
        res.release(holder)
        sim.run()
        assert third.processed
        assert not waiter.triggered

    def test_cancel_granted_request_releases(self, sim):
        res = Resource(sim, capacity=1)
        holder = res.request()
        waiter = res.request()
        sim.run()
        res.cancel(holder)  # acts as release
        sim.run()
        assert waiter.processed

    def test_fcfs_ordering(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(tag):
            req = res.request()
            yield req
            order.append(tag)
            yield sim.timeout(1)
            res.release(req)

        for tag in "abcd":
            sim.process(worker(tag))
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_priority_ordering(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(tag, priority):
            yield sim.timeout(0)  # let the holder grab the slot first
            req = res.request(priority=priority)
            yield req
            order.append(tag)
            yield sim.timeout(1)
            res.release(req)

        holder = res.request()
        sim.process(worker("low", 5))
        sim.process(worker("high", 1))
        sim.run(until=0.5)
        res.release(holder)
        sim.run()
        assert order == ["high", "low"]

    def test_never_exceeds_capacity_under_churn(self, sim):
        res = Resource(sim, capacity=3)
        peak = []

        def worker(i):
            req = res.request()
            yield req
            peak.append(res.in_use)
            yield sim.timeout(0.1 * (i % 4 + 1))
            res.release(req)

        for i in range(25):
            sim.process(worker(i))
        sim.run()
        assert max(peak) <= 3
        assert len(peak) == 25


class TestStore:
    def test_put_get_fifo(self, sim):
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)
        results = []

        def getter():
            for _ in range(3):
                value = yield store.get()
                results.append(value)

        sim.process(getter())
        sim.run()
        assert results == [1, 2, 3]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        results = []

        def getter():
            value = yield store.get()
            results.append((sim.now, value))

        def putter():
            yield sim.timeout(5)
            store.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert results == [(5.0, "late")]

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=1)
        log = []

        def putter():
            yield store.put("a")
            log.append(("a", sim.now))
            yield store.put("b")
            log.append(("b", sim.now))

        def getter():
            yield sim.timeout(4)
            item = yield store.get()
            log.append((item, sim.now))

        sim.process(putter())
        sim.process(getter())
        sim.run()
        assert ("a", 0.0) in log
        assert ("b", 4.0) in log

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_cancel_pending_get(self, sim):
        store = Store(sim)
        g1 = store.get()
        g2 = store.get()
        store.cancel(g1)
        store.put("only")
        sim.run()
        assert not g1.triggered
        assert g2.processed and g2.value == "only"

    def test_len_tracks_buffer(self, sim):
        store = Store(sim)
        store.put("x")
        store.put("y")
        sim.run()
        assert len(store) == 2

    def test_multiple_getters_served_in_order(self, sim):
        store = Store(sim)
        results = []

        def getter(tag):
            value = yield store.get()
            results.append((tag, value))

        sim.process(getter("first"))
        sim.process(getter("second"))

        def putter():
            yield sim.timeout(1)
            store.put(100)
            yield sim.timeout(1)
            store.put(200)

        sim.process(putter())
        sim.run()
        assert results == [("first", 100), ("second", 200)]
