"""Tests for the mail store, server, and client."""

from __future__ import annotations

import pytest

from repro.errors import MailboxError
from repro.mail import MailClient, MailServer, MessageStore


class TestMessageStore:
    def test_deliver_and_retrieve(self):
        store = MessageStore()
        store.create_mailbox("bob")
        message = store.deliver("alice", "bob", "hi", "body", now=1.0)
        mailbox = store.mailbox("bob")
        assert mailbox.list_ids() == [message.message_id]
        assert mailbox.get(message.message_id).subject == "hi"

    def test_ids_are_unique_and_increasing(self):
        store = MessageStore()
        store.create_mailbox("bob")
        ids = [
            store.deliver("a", "bob", "s", "b", now=0.0).message_id for _ in range(5)
        ]
        assert ids == sorted(set(ids))

    def test_unknown_mailbox(self):
        store = MessageStore()
        with pytest.raises(MailboxError):
            store.deliver("a", "ghost", "s", "b", now=0.0)
        with pytest.raises(MailboxError):
            store.mailbox("ghost")

    def test_duplicate_mailbox(self):
        store = MessageStore()
        store.create_mailbox("bob")
        with pytest.raises(MailboxError):
            store.create_mailbox("bob")

    def test_delete_message(self):
        store = MessageStore()
        store.create_mailbox("bob")
        message = store.deliver("a", "bob", "s", "b", now=0.0)
        store.mailbox("bob").delete(message.message_id)
        assert store.mailbox("bob").list_ids() == []
        with pytest.raises(MailboxError):
            store.mailbox("bob").delete(message.message_id)

    def test_size_accounting(self):
        store = MessageStore()
        store.create_mailbox("bob")
        store.deliver("a", "bob", "s", "x" * 100, now=0.0)
        assert store.mailbox("bob").total_size > 100


class TestMailServer:
    @pytest.fixture
    def served(self, sim, net):
        store = MessageStore()
        store.create_mailbox("bob")
        server = MailServer(sim, net.node("mail"), store)
        return server, net.node("app")

    def test_send_list_retrieve_delete(self, sim, served):
        server, client_node = served

        def run():
            conn = yield from MailClient.connect(sim, client_node, server.address)
            message_id = yield from conn.send("alice", "bob", "lunch", "noon?")
            ids = yield from conn.list("bob")
            message = yield from conn.retrieve("bob", message_id)
            yield from conn.delete("bob", message_id)
            after = yield from conn.list("bob")
            yield from conn.quit()
            return ids, message, after

        ids, message, after = sim.run(sim.process(run()))
        assert ids == [1]
        assert message["subject"] == "lunch"
        assert message["sender"] == "alice"
        assert after == []

    def test_unknown_recipient_is_error(self, sim, served):
        server, client_node = served

        def run():
            conn = yield from MailClient.connect(sim, client_node, server.address)
            try:
                yield from conn.send("alice", "ghost", "s", "b")
            except MailboxError as exc:
                yield from conn.quit()
                return str(exc)

        assert "ghost" in sim.run(sim.process(run()))

    def test_requires_helo(self, sim, served):
        server, client_node = served

        def run():
            stream = yield from client_node.connect_stream(server.address)
            stream.send(("list", "bob"))
            envelope = yield stream.recv()
            stream.close()
            return envelope.payload

        assert sim.run(sim.process(run()))[0] == "error"

    def test_delivery_timestamp_uses_sim_clock(self, sim, served):
        server, client_node = served

        def run():
            yield sim.timeout(5.0)
            conn = yield from MailClient.connect(sim, client_node, server.address)
            message_id = yield from conn.send("a", "bob", "s", "b")
            message = yield from conn.retrieve("bob", message_id)
            yield from conn.quit()
            return message["delivered_at"]

        assert sim.run(sim.process(run())) >= 5.0
