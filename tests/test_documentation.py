"""Documentation quality gates.

Every public module, class, and function in the library must carry a
docstring (the README promises "doc comments on every public item"),
and the package's ``__all__`` lists must be accurate.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

IGNORED_MODULES = {"repro.__main__"}


def _walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return [n for n in names if n not in IGNORED_MODULES]


ALL_MODULES = _walk_modules()


class TestDocstrings:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_public_items_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        missing = []
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if inspect.isclass(item) or inspect.isfunction(item):
                if item.__module__ != module_name and module_name != "repro":
                    continue  # re-export; checked at its home module
                if not (item.__doc__ and item.__doc__.strip()):
                    missing.append(name)
        assert not missing, f"{module_name}: missing docstrings on {missing}"

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_public_methods_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        missing = []
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if not inspect.isclass(item) or item.__module__ != module_name:
                continue
            for method_name, method in inspect.getmembers(item, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != item.__name__:
                    continue  # inherited
                # An override documented by its base-class method counts
                # as documented: walk the MRO for a docstring.
                doc = None
                for klass in item.__mro__:
                    candidate = klass.__dict__.get(method_name)
                    if candidate is not None and getattr(candidate, "__doc__", None):
                        doc = candidate.__doc__
                        break
                if not (doc and doc.strip()):
                    missing.append(f"{name}.{method_name}")
        assert not missing, f"{module_name}: missing docstrings on {missing}"


class TestExports:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name}"

    def test_top_level_all_is_sorted_sections(self):
        # Not alphabetical by design, but must be duplicate-free.
        assert len(repro.__all__) == len(set(repro.__all__))
