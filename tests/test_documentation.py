"""Documentation quality gates.

Every public module, class, and function in the library must carry a
docstring (the README promises "doc comments on every public item"),
the package's ``__all__`` lists must be accurate, and the prose docs
(README, DESIGN.md, EXPERIMENTS.md) must only reference CLI commands,
pipeline stages, and metric names that actually exist in the code.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

import repro

IGNORED_MODULES = {"repro.__main__"}

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/operations.md")


def _walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return [n for n in names if n not in IGNORED_MODULES]


ALL_MODULES = _walk_modules()


class TestDocstrings:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_public_items_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        missing = []
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if inspect.isclass(item) or inspect.isfunction(item):
                if item.__module__ != module_name and module_name != "repro":
                    continue  # re-export; checked at its home module
                if not (item.__doc__ and item.__doc__.strip()):
                    missing.append(name)
        assert not missing, f"{module_name}: missing docstrings on {missing}"

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_public_methods_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        missing = []
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if not inspect.isclass(item) or item.__module__ != module_name:
                continue
            for method_name, method in inspect.getmembers(item, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != item.__name__:
                    continue  # inherited
                # An override documented by its base-class method counts
                # as documented: walk the MRO for a docstring.
                doc = None
                for klass in item.__mro__:
                    candidate = klass.__dict__.get(method_name)
                    if candidate is not None and getattr(candidate, "__doc__", None):
                        doc = candidate.__doc__
                        break
                if not (doc and doc.strip()):
                    missing.append(f"{name}.{method_name}")
        assert not missing, f"{module_name}: missing docstrings on {missing}"


class TestExports:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name}"

    def test_top_level_all_is_sorted_sections(self):
        # Not alphabetical by design, but must be duplicate-free.
        assert len(repro.__all__) == len(set(repro.__all__))


def _read_doc(name: str) -> str:
    return (REPO_ROOT / name).read_text(encoding="utf-8")


def _source_corpus() -> str:
    return "\n".join(
        path.read_text(encoding="utf-8")
        for path in (REPO_ROOT / "src" / "repro").rglob("*.py")
    )


class TestDocsReferenceCode:
    """Prose docs may only reference things that exist in the code."""

    def test_documented_cli_subcommands_exist(self):
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        action = next(
            a
            for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        known = set(action.choices)
        referenced = set()
        for doc in DOC_FILES:
            text = _read_doc(doc)
            referenced.update(re.findall(r"python -m repro ([a-z0-9]+)", text))
            # Pipe-separated usage summaries: `fig7|fig9|...|faults`.
            for summary in re.findall(r"repro ([a-z0-9]+(?:\|[a-z0-9]+)+)", text):
                referenced.update(summary.split("|"))
        assert referenced, "docs no longer show any CLI invocations"
        missing = referenced - known
        assert not missing, f"docs reference unknown CLI subcommands: {missing}"

    def test_documented_cli_invocations_parse(self):
        """Every full `python -m repro ...` line in the docs must be
        accepted by the real argument parser, flags and all."""
        import shlex

        from repro.cli import build_parser

        parser = build_parser()
        invocations = []
        for doc in DOC_FILES:
            # Capture through end-of-line but stop at backticks and
            # comments; require a subcommand-shaped first token so
            # placeholders like `python -m repro <artifact>` are skipped.
            for argv in re.findall(
                r"python -m repro ([a-z0-9]+(?: [^`\n#]*)?)", _read_doc(doc)
            ):
                if "|" in argv or "..." in argv:
                    continue  # usage summary, not an invocation
                invocations.append((doc, argv.strip()))
        assert invocations, "docs no longer show any CLI invocations"
        rejected = []
        for doc, argv in invocations:
            try:
                parser.parse_args(shlex.split(argv))
            except SystemExit:
                rejected.append(f"{doc}: python -m repro {argv}")
        assert not rejected, f"docs show invocations the CLI rejects: {rejected}"

    def test_every_pipeline_stage_is_documented(self):
        from repro.core.pipeline import stage_plan

        design = _read_doc("DESIGN.md")
        missing = set()
        for model in (
            "distributed",
            "centralized",
            "fault-tolerant",
            "sharded",
            "cache-tier",
        ):
            for stage in stage_plan(model):
                if stage.name not in design:
                    missing.add(stage.name)
        assert not missing, f"DESIGN.md never mentions stages: {missing}"

    def test_readme_architecture_diagram_uses_real_stage_names(self):
        from repro.core.pipeline import stage_plan

        known = {
            stage.name
            for model in (
                "distributed",
                "centralized",
                "fault-tolerant",
                "sharded",
                "cache-tier",
            )
            for stage in stage_plan(model)
        }
        readme = _read_doc("README.md")
        diagram = readme.split("## Architecture")[1].split("```")[1]
        # Every arrow-joined token inside the ServiceBroker box must be a
        # real stage name.
        mentioned = set(re.findall(r"([a-z][a-z-]*[a-z])\s*(?:→|‖)", diagram))
        assert mentioned, "README architecture diagram lost its stage chain"
        unknown = mentioned - known
        assert not unknown, f"README diagram names unknown stages: {unknown}"

    def test_documented_metric_names_exist(self):
        corpus = _source_corpus()
        referenced = set()
        for doc in DOC_FILES:
            referenced.update(
                re.findall(
                    r"broker\.(?:fault|retry|breaker|degraded_replies"
                    r"|cachetier|cache)(?:\.[a-z_]+)*",
                    _read_doc(doc),
                )
            )
        assert referenced, "docs no longer mention any fault metrics"
        missing = set()
        for token in referenced:
            # Counters like broker.breaker.closed are emitted through an
            # f-string; accept the token when its dotted parent prefix
            # appears literally in the source.
            parent = token.rsplit(".", 1)[0] + "."
            if token not in corpus and parent not in corpus:
                missing.add(token)
        assert not missing, f"docs reference unknown metrics: {missing}"


class TestDocLinks:
    """Relative links and anchors in the prose docs must resolve."""

    LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

    @staticmethod
    def _anchors(text: str) -> set:
        anchors = set()
        for heading in re.findall(r"^#+\s+(.+)$", text, flags=re.MULTILINE):
            slug = heading.strip().lower()
            slug = re.sub(r"[^\w\s-]", "", slug)
            anchors.add(re.sub(r"\s+", "-", slug))
        return anchors

    @pytest.mark.parametrize("doc", DOC_FILES)
    def test_relative_links_resolve(self, doc):
        text = _read_doc(doc)
        broken = []
        for target in self.LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            # Relative links resolve against the doc's own directory so
            # that `../DESIGN.md` from docs/operations.md works.
            base = (
                REPO_ROOT / doc
                if not path_part
                else ((REPO_ROOT / doc).parent / path_part).resolve()
            )
            if path_part and not base.exists():
                broken.append(target)
                continue
            if anchor and base.suffix == ".md":
                if anchor not in self._anchors(
                    base.read_text(encoding="utf-8")
                ):
                    broken.append(target)
        assert not broken, f"{doc}: broken links {broken}"

    @pytest.mark.parametrize("doc", DOC_FILES)
    def test_referenced_repo_paths_exist(self, doc):
        text = _read_doc(doc)
        missing = []
        for path in re.findall(
            r"`((?:src|tests|benchmarks|examples|docs)/[\w./-]+\.(?:py|md))`",
            text,
        ):
            if not (REPO_ROOT / path).exists():
                missing.append(path)
        assert not missing, f"{doc}: references missing files {missing}"
