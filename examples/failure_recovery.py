#!/usr/bin/env python3
"""Failure recovery: a broker that keeps answering through faults.

Builds two replica backend web servers behind one broker running the
fault-tolerant stage plan (deadline stamping, retries with backoff,
per-backend circuit breakers, failover, stale-cache fallback), then
replays a hand-written :class:`FaultPlan` against them: a crash of one
replica, a slow window on the other, and a degraded network link. The
paper's §III promise is that clients still get answers — full-fidelity
when a replica survives, degraded (stale cache / busy) otherwise.

Run:  python examples/failure_recovery.py
"""

from __future__ import annotations

from repro import (
    BackendCrash,
    BackendWebServer,
    BrokerClient,
    FaultInjector,
    FaultPlan,
    HttpAdapter,
    Link,
    LinkDegrade,
    Network,
    QoSPolicy,
    ReplyStatus,
    ResultCache,
    RetryPolicy,
    ServiceBroker,
    Simulation,
    SlowBackend,
    SummaryStats,
    fault_tolerant_stage_plan,
)

N_CLIENTS = 6
DURATION = 60.0
SERVICE_TIME = 0.08


def main() -> None:
    sim = Simulation(seed=7)
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")

    # Two replica backends serving the same cacheable lookup.
    backends = []
    for index in (1, 2):
        node = net.node(f"backend{index}")
        server = BackendWebServer(sim, node, max_clients=4, name=f"backend{index}")

        def item_cgi(server, request):
            # CGI handlers honour the slow-backend fault hook themselves.
            yield server.sim.timeout(SERVICE_TIME * server.service_time_scale)
            return f"item={request.param('id', '?')}"

        server.add_cgi("/item", item_cgi)
        backends.append(server)

    broker = ServiceBroker(
        sim,
        web_node,
        service="items",
        adapters=[
            HttpAdapter(sim, web_node, server.address, name=server.name)
            for server in backends
        ],
        qos=QoSPolicy(levels=1, threshold=10_000, deadlines={1: 2.0}),
        cache=ResultCache(capacity=128, ttl=1.0, clock=lambda: sim.now),
        pool_size=4,
        dispatchers=8,
        name="ft-broker",
        stages=fault_tolerant_stage_plan(
            retry=RetryPolicy(max_attempts=3, base_delay=0.05),
            failure_threshold=3,
            reset_timeout=0.5,
        ),
    )
    client = BrokerClient(sim, web_node, {"items": broker.address})

    # A hand-written schedule exercising three of the four fault shapes.
    plan = (
        FaultPlan()
        .add(BackendCrash(target="backend1", at=10.0, duration=8.0))
        .add(SlowBackend(target="backend2", at=25.0, duration=10.0, factor=4.0))
        .add(LinkDegrade(a="web", b="backend1", at=40.0, duration=8.0,
                         extra_latency=0.02, bandwidth_factor=0.5))
    )
    injector = FaultInjector(
        sim,
        plan,
        network=net,
        targets={server.name: server for server in backends},
        metrics=broker.metrics,
    )
    injector.start()

    print("Fault schedule:")
    for line in plan.describe():
        print(f"  {line}")

    # Closed-loop clients over a small key pool (so stale cache entries
    # exist for every key when the fallback needs them).
    from repro import ClosedLoopClient

    counts = {"ok": 0, "degraded": 0, "dropped": 0}
    latency = SummaryStats()
    key_rng = sim.rng("example.keys")
    stagger = sim.rng("example.stagger")
    for index in range(N_CLIENTS):
        workstation = net.node(f"client{index}")

        def one(_client, _iteration, _node=workstation):
            started = sim.now
            reply = yield from client.call(
                "items",
                "get",
                ("/item", {"id": key_rng.randrange(16)}),
                timeout=8.0,
            )
            latency.add(sim.now - started)
            if reply.status is ReplyStatus.OK:
                counts["ok"] += 1
            elif reply.status is ReplyStatus.DEGRADED:
                counts["degraded"] += 1
            else:
                counts["dropped"] += 1

        loop = ClosedLoopClient(
            sim, f"c{index}", one,
            think_time=0.1, start_delay=stagger.uniform(0.0, 1.0),
        )
        loop.start(until=DURATION)

    sim.run(until=DURATION + 30.0)

    answered = counts["ok"] + counts["degraded"]
    total = answered + counts["dropped"]
    counter = broker.metrics.counter
    print(f"\n{total} requests over {DURATION:g}s of faults:")
    print(f"  full fidelity : {counts['ok']}")
    print(f"  degraded      : {counts['degraded']}")
    print(f"  dropped       : {counts['dropped']}")
    print(f"  availability  : {100.0 * answered / total:.2f}%")
    print(f"  mean latency  : {latency.mean * 1000:.1f} ms")
    print("\nWhat the pipeline did about it:")
    print(f"  retry attempts     : {int(counter('broker.retry.attempts'))}")
    print(f"  retries recovered  : {int(counter('broker.retry.recovered'))}")
    print(f"  breaker trips      : {int(counter('broker.breaker.open'))}")
    print(f"  failover re-routes : {int(counter('broker.fault.failover'))}")
    print(f"  fault replies      : {int(counter('broker.fault.replies'))}")
    print("\nOutage windows recorded by the injector:")
    for key in ("backend1", "backend2", "web<->backend1"):
        for start, end in injector.windows(key):
            print(f"  {key}: [{start:.1f}s, {end:.1f}s)")


if __name__ == "__main__":
    main()
