#!/usr/bin/env python3
"""Movie-schedule site: broker caching under Zipf popularity.

The paper's §III example: "consider an online Web site that provides
movie schedules ... In the peak time, there would be a lot of requests
for the same movie schedule. If the results are not cached, the database
has to process the same query repeatedly."

This example builds the movie site — a schedules table queried by a
front-end application under Zipf-skewed popularity — and measures
response time and database load with the broker cache off and on.

Run:  python examples/movie_site.py
"""

from __future__ import annotations

from typing import Optional

from repro import (
    BrokerClient,
    Database,
    DatabaseAdapter,
    DatabaseServer,
    Link,
    Network,
    QoSPolicy,
    ResultCache,
    ServiceBroker,
    Simulation,
    SummaryStats,
    zipf_sampler,
)

N_MOVIES = 500
N_REQUESTS = 1_500


def build_schedule_db() -> Database:
    database = Database("schedules")
    table = database.create_table(
        "schedule",
        [("movie_id", int), ("theater", str), ("showtime", str)],
    )
    for movie in range(N_MOVIES):
        for slot in range(6):  # six showings per movie
            table.insert((movie, f"theater-{movie % 12}", f"{12 + slot * 2}:00"))
    # No index on movie_id: each schedule query scans the table, exactly
    # the repeated-work scenario caching eliminates.
    return database


def run(cache_ttl: Optional[float], seed: int = 11):
    sim = Simulation(seed=seed)
    net = Network(sim, default_link=Link.lan())
    db_node = net.node("dbhost")
    web_node = net.node("webhost")
    db_server = DatabaseServer(sim, db_node, build_schedule_db(), max_workers=4)

    cache = None
    if cache_ttl is not None:
        cache = ResultCache(capacity=128, ttl=cache_ttl, clock=lambda: sim.now)
    broker = ServiceBroker(
        sim,
        web_node,
        service="db",
        adapters=[DatabaseAdapter(sim, web_node, db_server.address, name="db0")],
        qos=QoSPolicy(levels=1, threshold=500),
        cache=cache,
        pool_size=4,
    )
    client = BrokerClient(sim, web_node, {"db": broker.address})

    sample_movie = zipf_sampler(sim.rng("popularity"), N_MOVIES, skew=1.1)
    times = SummaryStats()

    def one_request():
        movie = sample_movie()
        started = sim.now
        reply = yield from client.call(
            "db",
            "query",
            f"SELECT theater, showtime FROM schedule WHERE movie_id = {movie}",
        )
        assert reply.ok
        times.add(sim.now - started)

    def driver():
        rng = sim.rng("arrivals")
        for _ in range(N_REQUESTS):
            yield sim.timeout(rng.expovariate(50.0))  # ~50 req/s peak
            sim.process(one_request())

    sim.process(driver())
    sim.run()
    return times, broker, db_server


def main() -> None:
    print(f"Movie site: {N_REQUESTS} Zipf-popular schedule queries over "
          f"{N_MOVIES} movies\n")
    print(f"{'configuration':<18} {'mean ms':>9} {'p95 ms':>9} "
          f"{'db queries':>11} {'cache hits':>11}")
    results = {}
    for label, ttl in (("no cache", None), ("cache ttl=30s", 30.0)):
        times, broker, db_server = run(ttl)
        hits = int(broker.metrics.counter("broker.cache_replies"))
        queries = int(db_server.metrics.counter("db.queries"))
        results[label] = (times.mean, queries)
        print(f"{label:<18} {times.mean * 1000:>9.2f} {times.p95 * 1000:>9.2f} "
              f"{queries:>11d} {hits:>11d}")
    speedup = results["no cache"][0] / results["cache ttl=30s"][0]
    load_cut = results["no cache"][1] / results["cache ttl=30s"][1]
    print(f"\ncaching cut mean response time {speedup:.1f}x "
          f"and database load {load_cut:.1f}x")


if __name__ == "__main__":
    main()
