#!/usr/bin/env python3
"""Web syndicate: multitasking across independent content providers.

The paper's My.Yahoo-style scenario (§III, *Multitasking*): "a web
syndicate composes contents from different and independent providers.
Thus the page generator can send requests in parallel to service brokers
that are associated with individual providers. The content retrievals
can be overlapped to reduce the overall response time."

This example composes a portal page from three WAN providers (news,
weather, stocks) three ways:

1. API baseline — sequential per-request connections;
2. brokers, sequential calls — persistent connections help;
3. brokers, parallel calls — overlap hides the slowest provider.

Run:  python examples/web_syndicate.py
"""

from __future__ import annotations

from repro import (
    BackendWebServer,
    BrokerClient,
    ApiBackendGateway,
    HttpAdapter,
    Link,
    Network,
    QoSPolicy,
    ServiceBroker,
    Simulation,
    SummaryStats,
)

PROVIDERS = {
    "news": 0.08,
    "weather": 0.05,
    "stocks": 0.12,
}
N_PAGES = 60


def main() -> None:
    sim = Simulation(seed=13)
    net = Network(sim, default_link=Link.wan(latency=0.03, jitter=0.005))
    portal = net.node("portal")

    servers = {}
    brokers = {}
    for name, service_time in PROVIDERS.items():
        node = net.node(name)
        server = BackendWebServer(sim, node, max_clients=8, name=name)

        def content_cgi(server, request, _t=service_time, _n=name):
            yield server.sim.timeout(_t)
            return f"<{_n}>fresh content</{_n}>"

        server.add_cgi("/content", content_cgi)
        servers[name] = server
        brokers[name] = ServiceBroker(
            sim,
            portal,
            service=name,
            port=7100 + len(brokers),
            adapters=[HttpAdapter(sim, portal, server.address, name=name)],
            qos=QoSPolicy(levels=1, threshold=200),
            pool_size=4,
        )

    client = BrokerClient(
        sim, portal, {name: broker.address for name, broker in brokers.items()}
    )
    gateway = ApiBackendGateway(sim, portal)

    timings = {label: SummaryStats() for label in ("api", "broker-seq", "broker-par")}

    def page_api():
        started = sim.now
        for name, server in servers.items():
            yield from gateway.http_get(server.address, "/content")
        timings["api"].add(sim.now - started)

    def page_broker_sequential():
        started = sim.now
        for name in PROVIDERS:
            reply = yield from client.call(name, "get", ("/content", {}), cacheable=False)
            assert reply.ok
        timings["broker-seq"].add(sim.now - started)

    def page_broker_parallel():
        started = sim.now
        replies = yield from client.call_parallel(
            [(name, "get", ("/content", {}), 1) for name in PROVIDERS]
        )
        assert all(reply.ok for reply in replies)
        timings["broker-par"].add(sim.now - started)

    def driver():
        for _ in range(N_PAGES):
            yield from page_api()
        for _ in range(N_PAGES):
            yield from page_broker_sequential()
        for _ in range(N_PAGES):
            yield from page_broker_parallel()

    sim.run(sim.process(driver()))

    print(f"Web syndicate: {N_PAGES} portal pages composed from "
          f"{len(PROVIDERS)} WAN providers\n")
    print(f"{'strategy':<22} {'mean page time (ms)':>20}")
    for label in ("api", "broker-seq", "broker-par"):
        print(f"{label:<22} {timings[label].mean * 1000:>20.1f}")
    assert timings["broker-par"].mean < timings["broker-seq"].mean < timings["api"].mean
    print("\nparallel broker calls overlap provider latencies: page time "
          "approaches the slowest provider instead of the sum.")


if __name__ == "__main__":
    main()
