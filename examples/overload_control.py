#!/usr/bin/env python3
"""Backend overload control: centralized vs distributed broker models.

The paper's §IV proposes two deployments of the broker framework and
predicts their trade-off:

* **Centralized** — the front-end web server rejects requests itself,
  using broker load reports consumed by a listener thread. "Efficient,
  but not very scalable": rejected requests cost almost nothing, but the
  listener saturates as brokers/update rates grow and the load table
  goes stale.
* **Distributed** — requests always travel to the broker, which decides.
  Decisions use perfectly fresh state, at the cost of the extra hop.

This example drives a slow backend into overload under both models and
reports accept/reject behaviour and the listener's staleness.

Run:  python examples/overload_control.py
"""

from __future__ import annotations

from repro import (
    BackendWebServer,
    BrokerClient,
    CentralizedController,
    FrontendWebServer,
    HotSpotGate,
    HotSpotMonitor,
    HttpAdapter,
    HttpClient,
    HttpRequest,
    HttpResponse,
    Link,
    LoadListener,
    Network,
    QoSPolicy,
    ResourceProfileRegistry,
    ReplyStatus,
    ServiceBroker,
    ClosedLoopClient,
    WebApplication,
    qos_of,
)
from repro.frontend.app import QOS_HEADER
from repro.sim import Simulation

N_CLIENTS = 30
DURATION = 60.0
THRESHOLD = 10


def build(mode: str):
    sim = Simulation(seed=17)
    net = Network(sim, default_link=Link.lan())
    web_node = net.node("web")
    backend_node = net.node("backend")

    backend = BackendWebServer(sim, backend_node, max_clients=3, name="backend")

    def slow_cgi(server, request):
        yield server.sim.timeout(1.0)
        return "content"

    backend.add_cgi("/work", slow_cgi)

    policy = QoSPolicy(levels=3, threshold=THRESHOLD)
    broker = ServiceBroker(
        sim,
        web_node,
        service="backend",
        adapters=[HttpAdapter(sim, web_node, backend.address, name="backend")],
        qos=policy,
        pool_size=3,
        priority_queueing=False,
    )
    client = BrokerClient(sim, web_node, {"backend": broker.address})

    listener = None
    admission = None
    if mode == "centralized":
        listener = LoadListener(sim, web_node, process_time=0.002)
        broker.report_load_to(listener.address, interval=0.05)
        profiles = ResourceProfileRegistry()
        profiles.register("/page", ["backend"])
        controller = CentralizedController(listener, profiles, policy)
        admission = controller.admit
    elif mode == "hotspot-gate":
        # Event-driven variant: the broker announces hot-spot onset and
        # clearance instead of streaming continuous load reports.
        monitor = HotSpotMonitor(
            broker, onset_fraction=0.8, clear_fraction=0.4, poll_interval=0.05
        )
        profiles = ResourceProfileRegistry()
        profiles.register("/page", ["backend"])
        gate = HotSpotGate(sim, web_node, profiles)
        monitor.subscribe(gate.address)
        admission = gate.admit

    frontend = FrontendWebServer(sim, web_node, admission=admission, name="frontend")

    def page_app(frontend_server, request):
        level = qos_of(request)
        reply = yield from client.call(
            "backend", "get", ("/work", {}), qos_level=level, cacheable=False
        )
        if reply.status is not ReplyStatus.OK:
            return HttpResponse.text("degraded")
        return HttpResponse.text("full")

    frontend.register_app(WebApplication(path="/page", handler=page_app))

    clients = []
    stagger = sim.rng("stagger")
    for i in range(N_CLIENTS):
        level = 1 + i % 3
        workstation = net.node(f"client{i}")

        def one(client_obj, _iteration, _node=workstation, _level=level):
            yield from HttpClient.fetch(
                sim,
                _node,
                frontend.address,
                HttpRequest(
                    method="GET", path="/page", headers={QOS_HEADER: str(_level)}
                ),
            )

        loop_client = ClosedLoopClient(
            sim, f"c{i}", one, think_time=0.1, start_delay=stagger.uniform(0, 2)
        )
        loop_client.start(until=DURATION)
        clients.append(loop_client)

    sim.run(until=DURATION + 30)
    return sim, frontend, broker, listener


def main() -> None:
    print(f"Overload control: {N_CLIENTS} clients vs a capacity-3 backend "
          f"(broker threshold {THRESHOLD})\n")
    header = (f"{'model':<13} {'front-end 503s':>15} {'broker drops':>13} "
              f"{'served full':>12} {'listener lag (ms)':>18}")
    print(header)
    for mode in ("distributed", "centralized", "hotspot-gate"):
        sim, frontend, broker, listener = build(mode)
        rejected = int(frontend.metrics.counter("frontend.rejected"))
        drops = int(broker.metrics.counter("broker.drops"))
        served = int(broker.metrics.counter("broker.served"))
        lag = (
            listener.metrics.sample("listener.update_lag").mean * 1000
            if listener is not None
            else float("nan")
        )
        lag_text = f"{lag:18.1f}" if lag == lag else f"{'-':>18}"
        print(f"{mode:<13} {rejected:>15d} {drops:>13d} {served:>12d} {lag_text}")
    print(
        "\nThe centralized model sheds load before requests enter the "
        "request-handling path (front-end 503s); the distributed model "
        "sheds at the brokers with perfectly fresh load state."
    )


if __name__ == "__main__":
    main()
