#!/usr/bin/env python3
"""Travel agency: loosely coupled backends and transaction integrity.

Two of the paper's §III scenarios in one system:

* **Loosely coupled services** — a travel agency "contacts multiple
  airlines and selects the best deals": the airline sites are remote web
  servers reached over WAN links, where the broker's persistent
  connections and caching matter most.
* **Transaction integrity** — a multi-step purchase (paper's supply-chain
  example) revisits a vendor at step 3; under load the broker escalates
  late-step accesses and sheds step-1 accesses first, so transactions
  that have already invested work are not aborted at the finish line.

Run:  python examples/travel_agency.py
"""

from __future__ import annotations

from collections import Counter

from repro import (
    BackendWebServer,
    BrokerClient,
    HttpAdapter,
    Link,
    Network,
    QoSPolicy,
    ReplyStatus,
    ServiceBroker,
    Simulation,
    TransactionTracker,
)

N_TRANSACTIONS = 120


def build_airline(sim, net, name: str) -> BackendWebServer:
    """A remote airline site with a fare-quote CGI."""
    node = net.node(name)
    server = BackendWebServer(sim, node, max_clients=3, name=name)

    def quote_cgi(server, request):
        yield server.sim.timeout(0.15)  # fare search
        flight = request.param("flight", "??")
        return f"{name}:fare-for-{flight}"

    server.add_cgi("/quote", quote_cgi)
    return server


def main() -> None:
    sim = Simulation(seed=7)
    # Default link is WAN: the agency is far from the airlines.
    net = Network(sim, default_link=Link.wan(latency=0.05, jitter=0.01))
    agency = net.node("agency")

    airline = build_airline(sim, net, "airline")

    tracker = TransactionTracker(escalation_per_step=1, protect_from_step=3)
    broker = ServiceBroker(
        sim,
        agency,
        service="airline",
        adapters=[HttpAdapter(sim, agency, airline.address, name="airline")],
        qos=QoSPolicy(levels=3, threshold=8),
        transactions=tracker,
        pool_size=3,
    )
    client = BrokerClient(sim, agency, {"airline": broker.address})

    outcomes: Counter = Counter()
    step_drops: Counter = Counter()

    def purchase(txn_id: str, think: float):
        """Steps 1-3 of a booking; any dropped step aborts the transaction."""
        for step in (1, 2, 3):
            reply = yield from client.call(
                "airline",
                "get",
                ("/quote", {"flight": f"{txn_id}-s{step}"}),
                qos_level=3,
                txn_id=txn_id,
                txn_step=step,
                cacheable=False,
            )
            if reply.status is not ReplyStatus.OK:
                outcomes["aborted"] += 1
                step_drops[step] += 1
                return
            yield sim.timeout(think)  # customer compares offers
        tracker.complete(txn_id)
        outcomes["booked"] += 1

    rng = sim.rng("arrivals")

    def driver():
        for i in range(N_TRANSACTIONS):
            yield sim.timeout(rng.expovariate(20.0))  # bursty arrivals
            sim.process(purchase(f"txn-{i}", think=rng.uniform(0.05, 0.2)))

    sim.process(driver())
    sim.run()

    total_aborts = outcomes["aborted"]
    print(f"Travel agency: {N_TRANSACTIONS} three-step bookings over a WAN, "
          f"broker threshold 8")
    print(f"  booked:  {outcomes['booked']}")
    print(f"  aborted: {total_aborts} "
          f"(by step: { {s: step_drops[s] for s in sorted(step_drops)} })")
    print(f"  connections to the airline: "
          f"{int(net.metrics.counter('net.connections'))} "
          f"(persistent pool, vs {3 * N_TRANSACTIONS} in the API model)")
    if total_aborts:
        early = step_drops[1] + step_drops[2]
        print(f"  {early}/{total_aborts} aborts happened at steps 1-2 — "
              "escalation protects nearly-complete transactions.")
        assert step_drops[3] <= step_drops[1], (
            "step-3 accesses should be shed less often than step-1"
        )


if __name__ == "__main__":
    main()
