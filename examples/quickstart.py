#!/usr/bin/env python3
"""Quickstart: a database behind a service broker.

Builds the smallest complete system — one database server, one service
broker with a result cache, and a handful of web-application processes
calling through the broker — and contrasts it with the API-based
baseline the paper argues against.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ApiBackendGateway,
    BrokerClient,
    Database,
    DatabaseAdapter,
    DatabaseServer,
    Link,
    Network,
    QoSPolicy,
    ReplyStatus,
    ResultCache,
    ServiceBroker,
    Simulation,
    SummaryStats,
    TraceCollector,
    render_attribution,
    render_waterfall,
)


def build_database() -> Database:
    """A product catalog with 10,000 rows and a hash index on the key."""
    database = Database("catalog")
    table = database.create_table(
        "products", [("id", int), ("name", str), ("price", float)]
    )
    for i in range(10_000):
        table.insert((i, f"product-{i}", float(5 + i % 95)))
    table.create_index("id", "hash")
    return database


def main() -> None:
    sim = Simulation(seed=42)
    net = Network(sim, default_link=Link.lan())
    db_node = net.node("dbhost")
    web_node = net.node("webhost")

    db_server = DatabaseServer(sim, db_node, build_database(), max_workers=4)

    # --- The paper's model: a per-service broker with a cache ----------
    broker = ServiceBroker(
        sim,
        web_node,
        service="db",
        adapters=[DatabaseAdapter(sim, web_node, db_server.address, name="db0")],
        qos=QoSPolicy(levels=3, threshold=50),
        cache=ResultCache(capacity=256, ttl=30.0, clock=lambda: sim.now),
        pool_size=2,
    )
    client = BrokerClient(sim, web_node, {"db": broker.address})

    # Trace every broker request so we can show one waterfall at the end.
    collector = TraceCollector(sample=1).attach(sim)

    broker_times = SummaryStats()

    def app_via_broker(product_id: int):
        started = sim.now
        reply = yield from client.call(
            "db", "query", f"SELECT name, price FROM products WHERE id = {product_id}"
        )
        assert reply.status is ReplyStatus.OK
        broker_times.add(sim.now - started)

    # --- The baseline: per-request API access --------------------------
    gateway = ApiBackendGateway(sim, web_node)
    api_times = SummaryStats()

    def app_via_api(product_id: int):
        started = sim.now
        yield from gateway.db_query(
            db_server.address,
            f"SELECT name, price FROM products WHERE id = {product_id}",
        )
        api_times.add(sim.now - started)

    # 200 requests over a popular set of 20 products, both ways.
    rng = sim.rng("quickstart")

    def driver():
        for i in range(200):
            product_id = rng.randrange(20)
            yield from app_via_api(product_id)
        for i in range(200):
            product_id = rng.randrange(20)
            yield from app_via_broker(product_id)

    sim.run(sim.process(driver()))

    print("Quickstart: 200 keyed lookups over 20 hot products")
    print(f"  API baseline : mean {api_times.mean * 1000:6.2f} ms/request "
          f"({int(db_server.metrics.counter('db.connections')) - 1} connections)")
    print(f"  Service broker: mean {broker_times.mean * 1000:6.2f} ms/request "
          f"(1 pooled connection, "
          f"{int(broker.metrics.counter('broker.cache_replies'))} cache hits)")
    speedup = api_times.mean / broker_times.mean
    print(f"  Broker speedup: {speedup:.1f}x")
    assert speedup > 1.5, "broker should beat per-request API access"

    # Every request flowed through the broker's stage pipeline; each
    # stage records its latency and decisions in the metrics registry.
    print("\n  Pipeline profile (broker.stage.* metrics):")
    for name in broker.describe_pipeline():
        timing = broker.metrics.sample(f"broker.stage.{name}.time")
        if timing.count == 0:
            continue
        print(f"    {name:<12} n={timing.count:<4.0f} "
              f"mean {timing.mean * 1000:7.3f} ms")
    hits = int(broker.metrics.counter("broker.stage.cache-lookup.hit"))
    misses = int(broker.metrics.counter("broker.stage.cache-lookup.miss"))
    print(f"    cache-lookup decisions: {hits} hit / {misses} miss")

    # The obs layer turned every request into a trace of nested spans;
    # show the slowest one as a waterfall with per-hop attribution.
    slowest = collector.slowest(1)[0]
    print("\n  Slowest broker request:")
    print(render_waterfall(slowest))
    print(f"  {render_attribution(slowest)}")


if __name__ == "__main__":
    main()
