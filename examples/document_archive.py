#!/usr/bin/env python3
"""Document archive: layout-aware file access through a broker.

The paper's §II uses file servers as its example of backend-specific
QoS notions: "the file servers may cluster requests whose accesses are
in adjacent disk layout". This example builds a document archive on a
fragmented filesystem and serves a burst of reads three ways:

1. FCFS disk scheduling (no layout awareness at all);
2. elevator (C-SCAN) scheduling at the file server;
3. elevator scheduling plus broker-side read batching, which hands the
   disk sweep the whole burst at once.

Run:  python examples/document_archive.py
"""

from __future__ import annotations

from repro import (
    BrokerClient,
    ClusteringConfig,
    FileAdapter,
    FileBatchCombiner,
    FileServer,
    FileSystem,
    Link,
    Network,
    QoSPolicy,
    ServiceBroker,
    Simulation,
    SummaryStats,
)

N_DOCS = 80
BURST = 25


def run(scheduler: str, batched: bool, seed: int = 23):
    sim = Simulation(seed=seed)
    net = Network(sim, default_link=Link.lan())
    filesystem = FileSystem(total_blocks=200_000)
    layout_rng = sim.rng("layout")
    for i in range(N_DOCS):
        filesystem.create(
            f"report-{i}.pdf", 16, fragmented=True, extent_size=16, rng=layout_rng
        )
    server = FileServer(
        sim, net.node("archive"), filesystem=filesystem, scheduler=scheduler
    )
    web = net.node("portal")
    clustering = None
    if batched:
        clustering = ClusteringConfig(
            combiner=FileBatchCombiner(), max_batch=BURST, window=0.002
        )
    broker = ServiceBroker(
        sim,
        web,
        service="archive",
        adapters=[FileAdapter(sim, web, server.address)],
        qos=QoSPolicy(levels=1, threshold=1000),
        clustering=clustering,
        dispatchers=10,
        pool_size=10,
    )
    client = BrokerClient(sim, web, {"archive": broker.address})
    times = SummaryStats()
    pick = sim.rng("picks")

    def reader(name):
        started = sim.now
        reply = yield from client.call("archive", "read", name, cacheable=False)
        assert reply.ok
        times.add(sim.now - started)

    for _ in range(BURST):
        sim.process(reader(f"report-{pick.randrange(N_DOCS)}.pdf"))
    sim.run()
    return times, server.disk


def main() -> None:
    print(f"Document archive: burst of {BURST} reads over {N_DOCS} "
          "fragmented files\n")
    print(f"{'configuration':<22} {'mean ms':>9} {'max ms':>9} "
          f"{'head travel (blocks)':>21}")
    for label, scheduler, batched in (
        ("fcfs", "fcfs", False),
        ("elevator", "elevator", False),
        ("elevator + batching", "elevator", True),
    ):
        times, disk = run(scheduler, batched)
        print(f"{label:<22} {times.mean * 1000:>9.1f} "
              f"{times.maximum * 1000:>9.1f} {disk.total_seek_distance:>21,d}")
    print("\nordering the burst by disk layout turns scattered seeks into "
          "one sweep — the backend-specific clustering the paper describes.")


if __name__ == "__main__":
    main()
